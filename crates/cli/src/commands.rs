//! Subcommand implementations.
//!
//! Every subcommand returns its report as a `String` (printed by `main`),
//! which keeps the command layer unit-testable without capturing stdout.

use crate::args::{parse, ArgError, ParsedArgs};
use ftqc_arch::qec::PhysicalAssumptions;
use ftqc_arch::{render_layout, Layout, Ticks};
use ftqc_arch::{TargetRegistry, TargetSpec};
use ftqc_baselines::litinski::{BlockLayout, GameOfSurfaceCodes};
use ftqc_baselines::{dascot_estimate, edpc_estimate, LineSam};
use ftqc_benchmarks::suite::Benchmark;
use ftqc_circuit::Circuit;
use ftqc_compiler::estimate::{estimate_resources, EstimateRequest, Objective};
use ftqc_compiler::svg::to_svg;
use ftqc_compiler::{
    apply_job_target, check_semantics, explore, explore_session, explore_targets, pareto_front,
    stage_outcome, target_digest, target_from_json, target_to_json, to_csv, verify, CompileSession,
    Compiler, CompilerOptions, DesignPoint, Metrics, Stage, StageCache, StageCacheStats,
    StageEvent, StageTrace,
};
use ftqc_editor::{
    delta_to_json, edit_failed_json, edit_result_json, EditSession, EditSet, ExtensionPair,
    SessionExtension, DEFAULT_SESSION_CAPACITY, DEFAULT_SESSION_TTL,
};
use ftqc_fleet::{CoordinatorConfig, CoordinatorExtension, WorkerConfig, WorkerExtension};
use ftqc_server::{
    Client, MultiSweepResponse, RetryPolicy, Server, ServerConfig, ServerExtension, SweepResponse,
    Transport,
};
use ftqc_service::json::ToJson;
use ftqc_service::{
    fingerprint, render_results, BatchConfig, BatchService, CacheProvenance, CompileCache,
    CompileJob, JobResult, JobStatus, SharedCache, TargetRef,
};
use ftqc_telemetry::{render_span_tree, ActiveTrace, StageSpanHook, TraceId};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A CLI failure: argument, I/O, parse, or pipeline error.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// Unknown subcommand or circuit.
    Unknown(String),
    /// Anything the underlying libraries report.
    Pipeline(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Unknown(s) => write!(f, "{s}"),
            CliError::Pipeline(s) => write!(f, "{s}"),
        }
    }
}

impl Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// What a subcommand printed, plus whether the process should exit
/// non-zero even though there was a report to print (e.g. a batch where
/// some jobs failed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// The report for stdout.
    pub text: String,
    /// Whether the run should exit with a failure status.
    pub failed: bool,
}

impl From<String> for CmdOutput {
    fn from(text: String) -> Self {
        CmdOutput {
            text,
            failed: false,
        }
    }
}

/// Dispatches a raw argument list to its subcommand.
///
/// # Errors
///
/// Returns a [`CliError`] describing what went wrong; `main` prints it to
/// stderr and exits non-zero.
pub fn run(raw: &[String]) -> Result<CmdOutput, CliError> {
    if raw.is_empty() {
        return Ok(help().into());
    }
    let parsed = parse(raw)?;
    match parsed.command.as_str() {
        "compile" => cmd_compile(&parsed),
        "explore" => cmd_explore(&parsed).map(CmdOutput::from),
        "sweep" => cmd_sweep(&parsed).map(CmdOutput::from),
        "batch" => cmd_batch(&parsed),
        "serve" => cmd_serve(&parsed).map(CmdOutput::from),
        "edit" => cmd_edit(&parsed),
        "client" => cmd_client(&parsed),
        "estimate" => cmd_estimate(&parsed).map(CmdOutput::from),
        "compare" => cmd_compare(&parsed).map(CmdOutput::from),
        "layout" => cmd_layout(&parsed).map(CmdOutput::from),
        "targets" => cmd_targets(&parsed).map(CmdOutput::from),
        "bench" => Ok(cmd_bench().into()),
        "help" | "--help" | "-h" => Ok(help().into()),
        other => Err(CliError::Unknown(format!(
            "unknown subcommand {other:?} (try `ftqc help`)"
        ))),
    }
}

fn help() -> String {
    "ftqc — space-time optimising compiler for early fault-tolerant quantum computers

USAGE: ftqc <command> [circuit] [options]

COMMANDS
  compile <circuit>    compile and print metrics
                       --target NAME|@spec.json   hardware target (preset name
                                     or a JSON spec file; see `ftqc targets`);
                                     explicit --r/--factories/--t-msf override
                                     the target's own values
                       --r N   routing paths (default 4)
                       --factories N (default 1)
                       --t-msf D     magic-state production time in d (default 11)
                       --verify      run the physical schedule verifier
                       --semantics   run the semantic replay verifier
                       --csv FILE    write the schedule as CSV
                       --svg FILE    render the schedule as an SVG Gantt chart
                       --optimize    peephole-optimise the circuit first
                       --mapping snake|row-major|interaction (default snake)
                       --no-lookahead / --no-redundant-elim / --unbounded-magic
                       --stop-after prepare|lower|map|schedule
                                     run the staged pipeline only that far and
                                     print the per-stage fingerprint report
                       --explain     full compile plus per-stage timing /
                                     fingerprint / cache-provenance table
                       --trace       full compile plus the request span tree
                                     (per-stage durations and self-times)
  explore <circuit>    sweep the design space
                       --r LO..HI (default 2..8), --factories LO..HI (default 1..4)
                       --pareto yes|no  print only the Pareto front (default no)
  sweep <circuit>      explore through the batch-compilation service
                       --parallel       fan the sweep across all cores
                       --workers N      worker threads (implies --parallel)
                       --cache FILE     JSON file-backed compile cache (reused
                                        across runs; created when missing)
                       --r / --factories / --pareto as for explore
                       --target NAME|@spec.json (repeatable) cross-target
                                        sweep: one grid + Pareto front per
                                        target, all sharing one stage cache;
                                        pinned-bus targets (sparse, explicit
                                        masks) sweep factories only
  batch <jobs.jsonl>   run a JSON-lines batch of compile jobs
                       one job per line, e.g.
                       {\"id\":\"a\",\"source\":{\"benchmark\":\"ising\",\"size\":2},
                        \"options\":{\"routing_paths\":4,\"factories\":1}}
                       source: {\"benchmark\":NAME[,\"size\":L]} | {\"qasm_file\":PATH}
                               | {\"qasm\":SOURCE}
                       a job may name a hardware target: \"target\":\"sparse\"
                       or an inline spec object (declare \"v\":2)
                       a malformed line fails that line only; the exit code
                       is non-zero when any job failed
                       --target NAME|@spec.json  default target for jobs
                                        still on the paper machine; a job's
                                        own \"target\" field or non-default
                                        machine options win (pin the paper
                                        machine with \"target\":\"paper\")
                       --workers N      worker threads (default: all cores)
                       --cache FILE     file-backed compile cache
                       --cache-capacity N  memory-tier entries (default 4096)
                       --out FILE       write results as JSON-lines
  serve                run the HTTP compile server (POST /v1/compile,
                       /v1/batch, /v1/sweep; GET /v1/cache/stats, /v1/traces,
                       /v1/trace/<id>, /healthz, /metrics); Ctrl-C drains
                       and persists the cache
                       --addr HOST:PORT (default 127.0.0.1:7070; port 0
                                         picks an ephemeral port)
                       --workers N      worker threads (default: all cores)
                       --cache FILE     file-backed compile cache, persisted
                                        on shutdown
                       --cache-capacity N / --max-connections N (default 64)
                       --timeout-ms N   per-request read timeout (dflt 10000)
                       --reactor        event-driven transport (Linux):
                                        sharded epoll loops, thousands of
                                        connections, bounded admission queue,
                                        429 + Retry-After over capacity
                       --shards N       reactor event-loop shards (dflt auto)
                       --queue-cap N    reactor admission queue (default 256)
                       --queue-timeout-s N  max queue wait before a
                                        retryable 503 (default 30)
                       --worker         fleet worker role: adds POST /v1/work
                                        (result + verification witness) and
                                        the peer-cache endpoints
                       --peers A,B,…    all fleet node addresses (sharded
                                        peer cache); requires --advertise
                       --advertise ADDR this node's entry in --peers
                       --fleet A,B,…    fleet coordinator role: dispatch
                                        compile/batch jobs to these workers,
                                        re-verify every witness, quarantine
                                        cheaters, recompute locally
                       --fleet-cap N    in-flight jobs per worker (default 2)
                       --fleet-timeout-ms N  per-dispatch deadline before a
                                        job is reassigned (default 60000)
                       sessions: POST /v1/session opens an interactive edit
                       session (create body = compile-job shape); POST
                       /v1/session/<id>/edit applies JSONL edit batches
                       differentially; GET/DELETE /v1/session/<id>
                       --session-capacity N  max live sessions (default 64)
                       --session-ttl-s N     idle eviction (default 900)
  edit <circuit>       interactive differential recompile loop: one edit
                       (or {\"edits\":[…]} batch) JSON per stdin line, one
                       delta-annotated result line out; `quit` or EOF ends
                       edits: {\"op\":\"insert|remove|retarget|replace\",
                               \"index\":N[,\"gate\":{\"gate\":\"t\",\"qubits\":[0]}]
                               [,\"qubits\":[…]]}  (rz adds \"angle\", in π)
                       --from FILE.qasm  seed from an OpenQASM 2 file
                       --server HOST:PORT  keep the session on a remote
                                        server via /v1/session endpoints
                       compile options (--target/--r/--factories/…) as above
  client compile <circuit>   compile on a remote server
                       --addr HOST:PORT (default 127.0.0.1:7070)
                       --stop-after STAGE  POST /v1/compile?stage=STAGE (warm
                                           or probe the server's stage cache)
                       --target NAME|@spec.json  resolved by the server
                                           (wire v2)
                       --trace             also print the request's span
                                           tree from the server's recorder
                       compile options as for `compile`; file paths are
                       shipped as inline QASM
  client batch <jobs.jsonl>  run a JSONL batch on a remote server
                       --addr HOST:PORT, --out FILE as for `batch`
  client traces        list the server's retained request traces
                       --min-micros N   only traces at least N µs long
  client trace <id>    print one retained trace's span tree
  estimate <circuit>   physical resource estimate
                       --error-rate P (default 1e-3), --budget B (default 0.01)
                       --objective qubits|volume|time (default qubits)
  compare <circuit>    compare against Litinski, LSQCA, DASCOT and EDPC
                       --factories N (default 1), --r N (default 4)
  layout <n> <r>       render the layout for n data qubits, r routing paths
  targets [list]       list the registered hardware targets
  targets show <NAME|@spec.json>  canonical spec JSON + digest of a target
  bench                list built-in benchmark circuits

CIRCUITS
  built-ins: ising, heisenberg, fermi-hubbard (append :L for an LxL lattice,
  default 10), ghz, adder, multiplier — or a path to an OpenQASM 2 file.

OUTPUT
  compile, sweep, and client compile accept --json: machine-readable
  JobResult / sweep JSON on stdout instead of the human tables."
        .to_string()
}

/// Resolves a circuit argument: benchmark name (with optional `:L` size) or
/// a QASM file path. The shared recipe lives in `ftqc_service::resolve` so
/// the CLI and the HTTP server cannot drift on what a spec means.
fn load_circuit(spec: &str) -> Result<Circuit, CliError> {
    ftqc_service::resolve::load_circuit_spec(spec).map_err(CliError::Unknown)
}

/// The CLI's target registry: the built-in presets. User-defined specs
/// come in as `@file.json` values rather than registrations.
fn target_registry() -> TargetRegistry {
    TargetRegistry::builtin()
}

/// Resolves one `--target` value: a preset name against the registry, or
/// `@path.json` holding a standalone target-spec document. Returns the
/// display label alongside the spec.
fn parse_target_value(
    value: &str,
    registry: &TargetRegistry,
) -> Result<(String, TargetSpec), CliError> {
    if let Some(path) = value.strip_prefix('@') {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Unknown(format!("cannot read target spec {path:?}: {e}")))?;
        let doc = ftqc_service::Value::parse(&text)
            .map_err(|e| CliError::Unknown(format!("target spec {path}: {e}")))?;
        let spec = target_from_json(&doc)
            .map_err(|e| CliError::Unknown(format!("target spec {path}: {e}")))?;
        Ok((value.to_string(), spec))
    } else {
        ftqc_compiler::resolve_target_ref(&TargetRef::Named(value.to_string()), registry)
            .map(|spec| (value.to_string(), spec))
            .map_err(CliError::Unknown)
    }
}

/// Every `--target` value resolved, in command-line order.
fn targets_from(p: &ParsedArgs) -> Result<Vec<(String, TargetSpec)>, CliError> {
    let registry = target_registry();
    p.get_all("target")
        .into_iter()
        .map(|value| parse_target_value(value, &registry))
        .collect()
}

/// Whether any explicit machine flag was given (they override a
/// `--target` preset's own values).
fn machine_flags_present(p: &ParsedArgs) -> bool {
    ["r", "factories", "t-msf"]
        .iter()
        .any(|k| p.contains_key(k))
        || p.flag("unbounded-magic")
}

fn options_from(p: &ParsedArgs) -> Result<CompilerOptions, CliError> {
    let mut o = CompilerOptions::default();
    if let Some(value) = p.get("target") {
        let (_, spec) = parse_target_value(value, &target_registry())?;
        o = o.target(spec);
    }
    // Explicit flags override the target's own values; absent flags keep
    // them (for the default paper target these are r=4, f=1, t_MSF=11d).
    if p.contains_key("r") {
        o = o.routing_paths(p.get_or("r", 4u32)?);
    }
    if p.contains_key("factories") {
        o = o.factories(p.get_or("factories", 1u32)?);
    }
    if p.contains_key("t-msf") {
        o = o.magic_production(Ticks::from_d(p.get_or("t-msf", 11.0f64)?));
    }
    if p.flag("no-lookahead") {
        o = o.lookahead(false);
    }
    if p.flag("no-redundant-elim") {
        o = o.eliminate_redundant_moves(false);
    }
    if p.flag("unbounded-magic") {
        o = o.unbounded_magic(true);
    }
    if p.flag("optimize") {
        o = o.optimize(true);
    }
    o = o.mapping(match p.get_or("mapping", "snake".to_string())?.as_str() {
        "snake" => ftqc_compiler::MappingStrategy::Snake,
        "row-major" => ftqc_compiler::MappingStrategy::RowMajor,
        "interaction" => ftqc_compiler::MappingStrategy::InteractionAware,
        other => {
            return Err(CliError::Unknown(format!(
                "mapping {other:?} (use snake|row-major|interaction)"
            )))
        }
    });
    Ok(o)
}

fn circuit_arg(p: &ParsedArgs) -> Result<Circuit, CliError> {
    let spec = p
        .positionals
        .first()
        .ok_or_else(|| CliError::Unknown("missing circuit argument".into()))?;
    load_circuit(spec)
}

/// Builds the `JobResult` the `--json` flag emits for a locally compiled
/// circuit: the same codec the server speaks, so shell pipelines can mix
/// local and remote output.
fn local_job_result(id: &str, circuit: &Circuit, options: &CompilerOptions) -> JobResult<Metrics> {
    let started = Instant::now();
    let fingerprint = fingerprint::combine(
        fingerprint::fingerprint_circuit(circuit),
        fingerprint::fingerprint_value(&options.to_json()),
    );
    let (status, metrics) = match compile_metrics(circuit, options) {
        Ok(m) => (JobStatus::Ok, Some(m)),
        Err(e) => (JobStatus::Failed(e), None),
    };
    JobResult {
        id: id.to_string(),
        fingerprint,
        status,
        metrics,
        provenance: CacheProvenance::Computed,
        micros: started.elapsed().as_micros() as u64,
        queue_micros: 0,
        stage: None,
        witness: None,
    }
}

fn cmd_compile(p: &ParsedArgs) -> Result<CmdOutput, CliError> {
    let spec = p
        .positionals
        .first()
        .ok_or_else(|| CliError::Unknown("missing circuit argument".into()))?
        .clone();
    let circuit = load_circuit(&spec)?;
    let options = options_from(p)?;
    let timing = options.target.timing;
    let stop_after = match p.get("stop-after") {
        None => None,
        Some(name) => Some(Stage::parse_or_err(name).map_err(CliError::Unknown)?),
    };

    if p.flag("json") {
        if p.flag("explain") {
            return Err(CliError::Unknown(
                "--explain is a human-readable report; drop --json or --explain".into(),
            ));
        }
        if p.flag("trace") {
            return Err(CliError::Unknown(
                "--trace is a human-readable report; drop --json or --trace".into(),
            ));
        }
        // `--json --stop-after <stage>`: the same staged JobResult the
        // server's `?stage=` endpoint returns. A compile failure stays on
        // the JSON contract too — a failed result document, not a
        // plain-text error.
        if let Some(stop) = stop_after {
            let started = Instant::now();
            let result = match CompileSession::new(options).run_until(&circuit, stop) {
                Ok(run) => JobResult::<Metrics> {
                    id: spec,
                    fingerprint: run.fingerprint,
                    status: JobStatus::Ok,
                    metrics: run.program.as_ref().map(|prog| *prog.metrics()),
                    provenance: CacheProvenance::Computed,
                    micros: started.elapsed().as_micros() as u64,
                    queue_micros: 0,
                    stage: Some(run.stage.name().to_string()),
                    witness: None,
                },
                Err(e) => JobResult::<Metrics> {
                    id: spec,
                    fingerprint: 0,
                    status: JobStatus::Failed(e.to_string()),
                    metrics: None,
                    provenance: CacheProvenance::Computed,
                    micros: started.elapsed().as_micros() as u64,
                    queue_micros: 0,
                    stage: None,
                    witness: None,
                },
            };
            let failed = !result.is_ok();
            return Ok(CmdOutput {
                text: result.to_json().render(),
                failed,
            });
        }
        let result = local_job_result(&spec, &circuit, &options);
        return Ok(CmdOutput {
            text: result.to_json().render(),
            failed: !result.is_ok(),
        });
    }

    // `--stop-after <stage>`: run the staged session up to the named
    // stage and report the trail — no schedule, no metrics.
    if let Some(stop) = stop_after {
        if stop != Stage::Schedule {
            let run = CompileSession::new(options)
                .run_until(&circuit, stop)
                .map_err(|e| CliError::Pipeline(e.to_string()))?;
            let mut out = render_stage_trace(&run.events);
            let _ = write!(
                out,
                "stopped after {} (artifact {})",
                run.stage,
                fingerprint::to_hex(run.fingerprint)
            );
            return Ok(out.into());
        }
        // --stop-after schedule is a full compile; fall through (with the
        // stage table, like --explain).
    }

    // `--explain` / `--trace`: compile through the session with a trace
    // hook and prepend the per-stage report (a timing/fingerprint table
    // for --explain, a span tree with self-times for --trace).
    let want_table = p.flag("explain") || stop_after == Some(Stage::Schedule);
    let span_trace = p
        .flag("trace")
        .then(|| ActiveTrace::begin(TraceId::mint(), "compile"));
    let (program, explain) = if want_table || span_trace.is_some() {
        let trace = StageTrace::new();
        let hook: std::sync::Arc<dyn ftqc_compiler::TraceHook> = match &span_trace {
            None => trace.clone(),
            Some(active) => std::sync::Arc::new(FanoutHook(vec![
                trace.clone(),
                std::sync::Arc::new(
                    StageSpanHook::new(std::sync::Arc::clone(active)).with_attr("job", &spec),
                ),
            ])),
        };
        let program = CompileSession::new(options)
            .with_hook(hook)
            .compile(&circuit)
            .map_err(|e| CliError::Pipeline(e.to_string()))?;
        (
            program,
            want_table.then(|| render_stage_trace(&trace.events())),
        )
    } else {
        let program = Compiler::new(options)
            .compile(&circuit)
            .map_err(|e| CliError::Pipeline(e.to_string()))?;
        (program, None)
    };

    let mut out = String::new();
    let m = program.metrics();
    if let Some(active) = span_trace {
        // Status 0 = the process-exit convention for a successful local
        // compile (there is no HTTP status to report).
        out.push_str(&render_span_tree(&active.finish(0, "compile")));
    }
    if let Some(trace) = explain {
        out.push_str(&trace);
        let r = &m.route;
        let _ = writeln!(
            out,
            "router    : {} arena reuses, path table {}/{} hits, {} claim-invalidated, {} flushes",
            r.arena_reuses,
            r.table_hits,
            r.table_hits + r.table_misses,
            r.table_invalidated_by_claim,
            r.table_flushes
        );
    }
    let _ = writeln!(
        out,
        "circuit         : {} ({} qubits, {} gates)",
        circuit.name(),
        circuit.num_qubits(),
        circuit.len()
    );
    let _ = writeln!(
        out,
        "layout          : r={} ({} patches + {} factory tiles)",
        m.routing_paths, m.grid_patches, m.factory_patches
    );
    let _ = writeln!(
        out,
        "execution time  : {} (unit-cost {})",
        m.execution_time, m.unit_cost_time
    );
    let _ = writeln!(
        out,
        "lower bound     : {} (overhead {:.2}x)",
        m.lower_bound,
        m.overhead()
    );
    let _ = writeln!(out, "magic states    : {}", m.n_magic_states);
    let _ = writeln!(
        out,
        "surgery ops     : {} ({} moves, {} eliminated)",
        m.n_surgery_ops, m.n_moves, m.n_moves_eliminated
    );
    let _ = writeln!(
        out,
        "spacetime volume: {:.0} qubit-d (incl. factories)",
        m.spacetime_volume(true)
    );
    let _ = write!(
        out,
        "bottleneck      : {}",
        ftqc_compiler::diagnose(&program)
    );

    if p.flag("verify") {
        verify(&program, &timing).map_err(|e| CliError::Pipeline(format!("VERIFY FAILED: {e}")))?;
        let _ = write!(out, "\nphysical verify : ok");
    }
    if p.flag("semantics") {
        let r = check_semantics(&circuit, &program)
            .map_err(|e| CliError::Pipeline(format!("SEMANTICS FAILED: {e}")))?;
        let _ = write!(out, "\nsemantic verify : ok ({r})");
    }
    if let Some(path) = p.get("csv") {
        std::fs::write(path, to_csv(&program))
            .map_err(|e| CliError::Pipeline(format!("cannot write {path}: {e}")))?;
        let _ = write!(out, "\nschedule csv    : {path}");
    }
    if let Some(path) = p.get("svg") {
        std::fs::write(path, to_svg(&program))
            .map_err(|e| CliError::Pipeline(format!("cannot write {path}: {e}")))?;
        let _ = write!(out, "\nschedule svg    : {path}");
    }
    Ok(out.into())
}

/// Fans one stage-event stream out to several hooks (`--explain --trace`
/// needs both the table collector and the span recorder on one session).
struct FanoutHook(Vec<std::sync::Arc<dyn ftqc_compiler::TraceHook>>);

impl ftqc_compiler::TraceHook for FanoutHook {
    fn on_stage(&self, event: &StageEvent) {
        for hook in &self.0 {
            hook.on_stage(event);
        }
    }
}

/// The per-stage table behind `compile --explain` and `--stop-after`.
fn render_stage_trace(events: &[StageEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<9} {:>17} {:>9} {:>9}",
        "stage", "fingerprint", "cache", "µs"
    );
    for e in events {
        let _ = writeln!(
            out,
            "{:<9} {:>17} {:>9} {:>9}",
            e.stage.name(),
            fingerprint::to_hex(e.fingerprint),
            if e.cached { "hit" } else { "computed" },
            e.micros,
        );
    }
    out
}

/// One-line stage-cache summary shared by `sweep` and `batch` reports.
fn render_stage_stats(stats: &StageCacheStats) -> String {
    Stage::ALL
        .iter()
        .map(|s| {
            let c = stats.for_stage(*s);
            format!("{} {}/{}", s.name(), c.hits, c.lookups())
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_design_points(rows: &[DesignPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>3} {:>9} {:>8} {:>12} {:>10} {:>14}",
        "r", "factories", "qubits", "time (d)", "overhead", "volume (q·d)"
    );
    for pt in rows {
        let _ = writeln!(
            out,
            "{:>3} {:>9} {:>8} {:>12.1} {:>9.2}x {:>14.0}",
            pt.routing_paths,
            pt.factories,
            pt.qubits(),
            pt.time_d(),
            pt.metrics.overhead(),
            pt.volume(),
        );
    }
    let _ = write!(out, "{} design points", rows.len());
    out
}

fn cmd_explore(p: &ParsedArgs) -> Result<String, CliError> {
    let circuit = circuit_arg(p)?;
    let rs = p.range_or("r", (2, 8))?;
    let fs = p.range_or("factories", (1, 4))?;
    let pareto: String = p.get_or("pareto", "no".to_string())?;
    let points = explore(&circuit, &rs, &fs, &CompilerOptions::default())
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let rows = if pareto == "yes" {
        pareto_front(&points)
    } else {
        points
    };
    Ok(render_design_points(&rows))
}

/// The `--workers` option resolved against the service's 0-means-all-cores
/// convention.
fn worker_count(p: &ParsedArgs) -> Result<usize, CliError> {
    let n: usize = p.get_or("workers", 0)?;
    Ok(if n == 0 {
        ftqc_service::WorkerPool::auto().workers()
    } else {
        n
    })
}

/// `explore` routed through the batch-compilation service: a worker pool
/// plus a (optionally file-backed) content-addressed compile cache.
fn cmd_sweep(p: &ParsedArgs) -> Result<String, CliError> {
    let circuit = circuit_arg(p)?;
    let rs = p.range_or("r", (2, 8))?;
    let fs = p.range_or("factories", (1, 4))?;
    let pareto: String = p.get_or("pareto", "no".to_string())?;
    // --parallel defaults to all cores; an explicit --workers N implies
    // parallelism on its own rather than being silently ignored.
    let workers = if p.flag("parallel") || p.contains_key("workers") {
        worker_count(p)?
    } else {
        1
    };

    let cache_file = p.get("cache").map(PathBuf::from);
    let mut cache = CompileCache::new(ftqc_service::DEFAULT_CACHE_CAPACITY);
    if let Some(path) = &cache_file {
        cache = cache
            .with_file_tier(path)
            .map_err(|e| CliError::Pipeline(format!("cache file: {e}")))?;
    }
    let cache = SharedCache::new(cache);

    let stages = StageCache::new(ftqc_compiler::DEFAULT_STAGE_CACHE_CAPACITY);

    // `--target a --target b …`: a cross-target sweep — one grid and one
    // Pareto front per target, in one process, through one worker pool,
    // one metrics cache, and one shared stage cache.
    let targets = targets_from(p)?;
    if !targets.is_empty() {
        let sweeps = explore_targets(
            &circuit,
            &targets,
            &rs,
            &fs,
            &CompilerOptions::default(),
            workers,
            &cache,
            &stages,
        )
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
        if cache_file.is_some() {
            cache
                .persist()
                .map_err(|e| CliError::Pipeline(format!("cannot persist cache: {e}")))?;
        }
        let stats = cache.stats();
        if p.flag("json") {
            // The same document the server's target-aware POST /v1/sweep
            // returns.
            let response = MultiSweepResponse {
                targets: sweeps,
                cache: stats,
                workers: workers as u64,
            };
            return Ok(response.to_json().render());
        }
        let mut out = String::new();
        for sweep in &sweeps {
            let _ = writeln!(
                out,
                "== target {} (digest {})",
                sweep.name,
                fingerprint::to_hex(sweep.digest)
            );
            out.push_str(&render_design_points(&sweep.front));
            let _ = writeln!(
                out,
                " on the Pareto front ({} grid points evaluated)",
                sweep.points.len()
            );
        }
        let _ = write!(
            out,
            "service: {workers} worker(s), cache {}/{} hits ({:.0}%)",
            stats.hits,
            stats.lookups(),
            stats.hit_rate() * 100.0,
        );
        let _ = write!(
            out,
            "\nstage cache: {}",
            render_stage_stats(&stages.stats())
        );
        return Ok(out);
    }

    let points = explore_session(
        &circuit,
        &rs,
        &fs,
        &CompilerOptions::default(),
        workers,
        &cache,
        &stages,
    )
    .map_err(|e| CliError::Pipeline(e.to_string()))?;
    if cache_file.is_some() {
        cache
            .persist()
            .map_err(|e| CliError::Pipeline(format!("cannot persist cache: {e}")))?;
    }

    let rows = if pareto == "yes" {
        pareto_front(&points)
    } else {
        points
    };
    let stats = cache.stats();
    if p.flag("json") {
        // The same document the server's POST /v1/sweep returns.
        let response = SweepResponse {
            points: rows,
            cache: stats,
            workers: workers as u64,
        };
        return Ok(response.to_json().render());
    }
    let mut out = render_design_points(&rows);
    let _ = write!(
        out,
        "\nservice: {workers} worker(s), cache {}/{} hits ({:.0}%){}",
        stats.hits,
        stats.lookups(),
        stats.hit_rate() * 100.0,
        match &cache_file {
            Some(f) => format!(", file tier {}", f.display()),
            None => String::new(),
        },
    );
    let _ = write!(
        out,
        "\nstage cache: {}",
        render_stage_stats(&stages.stats())
    );
    Ok(out)
}

use ftqc_service::resolve::resolve_source;

/// The compile closure `batch` and the compile/sweep paths share.
fn compile_metrics(circuit: &Circuit, options: &CompilerOptions) -> Result<Metrics, String> {
    Compiler::new(options.clone())
        .compile(circuit)
        .map(|program| *program.metrics())
        .map_err(|e| e.to_string())
}

/// The per-job table shared by `batch` and `client batch`.
fn render_batch_table(results: &[JobResult<Metrics>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>8} {:>12} {:>14} {:>9} {:>10}",
        "job", "status", "qubits", "time (d)", "volume (q·d)", "cache", "µs"
    );
    for r in results {
        match (&r.status, &r.metrics) {
            (JobStatus::Ok, Some(m)) => {
                let _ = writeln!(
                    out,
                    "{:<16} {:>7} {:>8} {:>12.1} {:>14.0} {:>9} {:>10}",
                    r.id,
                    "ok",
                    m.total_qubits(),
                    m.execution_time.as_d(),
                    m.spacetime_volume(true),
                    r.provenance.as_str(),
                    r.micros,
                );
            }
            (JobStatus::Failed(e), _) => {
                let _ = writeln!(out, "{:<16} {:>7}  {e}", r.id, "FAILED");
            }
            // A staged job stopped before scheduling: no metrics to show,
            // but the stage and its artifact fingerprint are the payload.
            (JobStatus::Ok, None) => {
                let _ = writeln!(
                    out,
                    "{:<16} {:>7}  stopped after {} (artifact {})",
                    r.id,
                    "ok",
                    r.stage.as_deref().unwrap_or("?"),
                    fingerprint::to_hex(r.fingerprint),
                );
            }
        }
    }
    out
}

/// Writes `--out FILE` results, appending a note to the report.
fn write_results_out(
    p: &ParsedArgs,
    results: &[JobResult<Metrics>],
    out: &mut String,
) -> Result<(), CliError> {
    if let Some(out_path) = p.get("out") {
        std::fs::write(out_path, render_results(results))
            .map_err(|e| CliError::Pipeline(format!("cannot write {out_path}: {e}")))?;
        let _ = write!(out, "\nresults jsonl   : {out_path}");
    }
    Ok(())
}

/// Runs a JSON-lines batch of compile jobs through the service. A
/// malformed line fails that line only; the exit status is non-zero when
/// any job failed.
fn cmd_batch(p: &ParsedArgs) -> Result<CmdOutput, CliError> {
    let path = p
        .positionals
        .first()
        .ok_or_else(|| CliError::Unknown("usage: ftqc batch <jobs.jsonl>".into()))?;
    let jsonl = std::fs::read_to_string(path)
        .map_err(|e| CliError::Unknown(format!("cannot read {path:?}: {e}")))?;

    let cache_capacity: usize = p.get_or("cache-capacity", ftqc_service::DEFAULT_CACHE_CAPACITY)?;
    if cache_capacity == 0 {
        return Err(CliError::Unknown(
            "--cache-capacity must be at least 1".into(),
        ));
    }
    let config = BatchConfig {
        workers: worker_count(p)?,
        cache_capacity,
        cache_file: p.get("cache").map(PathBuf::from),
    };
    let persist = config.cache_file.is_some();
    let workers = config.workers;
    let service: BatchService<Metrics> =
        BatchService::new(config).map_err(|e| CliError::Pipeline(format!("cache file: {e}")))?;

    let started = Instant::now();
    // One stage cache across the whole batch: jobs that share a circuit
    // reuse prepare/lower (and map, when only scheduling knobs differ),
    // and `stop_after`/`resume_from` job fields are honoured.
    let stages = StageCache::new(ftqc_compiler::DEFAULT_STAGE_CACHE_CAPACITY);
    // `--target` sets the default machine for jobs whose decoded machine
    // spec is still the paper default; a job's own "target" field or any
    // machine option that moves off the default wins. (A job that spells
    // out exactly the paper defaults is indistinguishable from one that
    // said nothing — add `"target":"paper"` to pin it explicitly.)
    // Resolution runs before each job is fingerprinted.
    let registry = target_registry();
    let default_target = p
        .get("target")
        .map(|value| parse_target_value(value, &registry))
        .transpose()?
        .map(|(_, spec)| spec);
    let results = service.run_jsonl_with::<CompilerOptions, _, _, _>(
        &jsonl,
        |mut job| {
            if job.target.is_none() && job.options.target == TargetSpec::paper() {
                if let Some(spec) = &default_target {
                    job.options.target = spec.clone();
                }
            }
            apply_job_target(job, &registry)
        },
        resolve_source,
        |c, job| {
            let session = CompileSession::new(job.options.clone()).with_cache(stages.clone());
            stage_outcome(
                &session,
                c,
                job.stop_after.as_deref(),
                job.resume_from.as_deref(),
            )
        },
    );
    let elapsed = started.elapsed();
    if results.is_empty() {
        return Err(CliError::Unknown(format!("{path} contains no jobs")));
    }
    if persist {
        service
            .persist_cache()
            .map_err(|e| CliError::Pipeline(format!("cannot persist cache: {e}")))?;
    }

    let mut out = render_batch_table(&results);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let stats = service.cache_stats();
    let _ = write!(
        out,
        "{ok}/{} jobs ok in {:.1} ms ({workers} workers); cache: {} hits / {} lookups ({:.0}%)",
        results.len(),
        elapsed.as_secs_f64() * 1e3,
        stats.hits,
        stats.lookups(),
        stats.hit_rate() * 100.0,
    );
    let _ = write!(
        out,
        "\nstage cache: {}",
        render_stage_stats(&stages.stats())
    );
    write_results_out(p, &results, &mut out)?;
    Ok(CmdOutput {
        text: out,
        failed: ok < results.len(),
    })
}

/// Splits a comma-separated address list, dropping empty entries.
fn split_addrs(raw: &str) -> Vec<String> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

/// Builds the fleet role requested by `--worker` / `--fleet`, if any.
fn fleet_extension(p: &ParsedArgs) -> Result<(Option<Arc<dyn ServerExtension>>, String), CliError> {
    let fleet = p.get("fleet");
    if p.flag("worker") && fleet.is_some() {
        return Err(CliError::Unknown(
            "--worker and --fleet are mutually exclusive roles".into(),
        ));
    }
    if let Some(raw) = fleet {
        let workers = split_addrs(raw);
        let n = workers.len();
        let coordinator = CoordinatorExtension::new(CoordinatorConfig {
            workers,
            cap: p.get_or("fleet-cap", 2usize)?.max(1),
            deadline: Duration::from_millis(p.get_or("fleet-timeout-ms", 60_000u64)?),
            ..CoordinatorConfig::default()
        })
        .map_err(CliError::Unknown)?;
        let healthy = coordinator.health_check();
        let note = format!(", coordinating {healthy}/{n} workers");
        return Ok((Some(Arc::new(coordinator)), note));
    }
    if p.flag("worker") {
        let peers = p
            .get("peers")
            .map(|raw| split_addrs(raw))
            .unwrap_or_default();
        let n = peers.len();
        let worker = WorkerExtension::new(WorkerConfig {
            peers,
            advertise: p.get("advertise").cloned(),
            ..WorkerConfig::default()
        })
        .map_err(CliError::Unknown)?;
        let note = if n == 0 {
            ", worker role".to_string()
        } else {
            format!(", worker role ({n}-node peer cache)")
        };
        return Ok((Some(Arc::new(worker)), note));
    }
    Ok((None, String::new()))
}

/// Runs the HTTP compile server until SIGINT (or a shutdown poke), then
/// reports what it served.
fn cmd_serve(p: &ParsedArgs) -> Result<String, CliError> {
    let cache_capacity: usize = p.get_or("cache-capacity", ftqc_service::DEFAULT_CACHE_CAPACITY)?;
    if cache_capacity == 0 {
        return Err(CliError::Unknown(
            "--cache-capacity must be at least 1".into(),
        ));
    }
    let config = ServerConfig {
        addr: p.get_or("addr", "127.0.0.1:7070".to_string())?,
        workers: p.get_or("workers", 0usize)?,
        cache_capacity,
        cache_file: p.get("cache").map(PathBuf::from),
        max_connections: p.get_or("max-connections", 64usize)?.max(1),
        read_timeout: Duration::from_millis(p.get_or("timeout-ms", 10_000u64)?),
        transport: if p.flag("reactor") {
            Transport::Reactor
        } else {
            Transport::Threaded
        },
        shards: p.get_or("shards", 0usize)?,
        queue_cap: p.get_or("queue-cap", 256usize)?.max(1),
        queue_timeout: Duration::from_secs(p.get_or("queue-timeout-s", 30u64)?.max(1)),
        ..ServerConfig::default()
    };
    let cache_note = match &config.cache_file {
        Some(f) => format!(", cache file {}", f.display()),
        None => String::new(),
    };
    let (fleet_ext, role_note) = fleet_extension(p)?;
    // Interactive edit sessions ride along on every serve role, stacked
    // over the fleet extension (which keeps job execution) when one is
    // configured.
    let session_capacity = p
        .get_or("session-capacity", DEFAULT_SESSION_CAPACITY)?
        .max(1);
    let session_ttl = Duration::from_secs(
        p.get_or("session-ttl-s", DEFAULT_SESSION_TTL.as_secs())?
            .max(1),
    );
    let sessions: Arc<dyn ServerExtension> =
        Arc::new(SessionExtension::new(session_capacity, session_ttl));
    let extension: Arc<dyn ServerExtension> = match fleet_ext {
        Some(role) => Arc::new(ExtensionPair::new(sessions, role)),
        None => sessions,
    };
    let server = Server::bind_with(config, Some(extension))
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    server.install_sigint_handler();
    // Announce before blocking: main only prints after run() returns.
    let transport_note = if p.flag("reactor") { ", reactor" } else { "" };
    println!(
        "ftqc-server listening on {addr} ({} workers{transport_note}{cache_note}{role_note}); Ctrl-C to stop",
        server.workers()
    );
    let report = server
        .run()
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let mut out = format!(
        "shut down cleanly: {} requests over {} connections; cache: {} hits / {} lookups ({:.0}%)",
        report.requests,
        report.connections,
        report.cache.hits,
        report.cache.lookups(),
        report.cache.hit_rate() * 100.0,
    );
    if let Some(path) = report.persisted {
        let _ = write!(out, "\ncache persisted : {}", path.display());
    }
    Ok(out)
}

/// Seeds the edit session's circuit: `--from file.qasm` parses the file
/// through the OpenQASM reader; otherwise the positional spec resolves
/// like every other command's circuit argument.
fn edit_seed(p: &ParsedArgs) -> Result<(String, Circuit), CliError> {
    if let Some(path) = p.get("from") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Unknown(format!("cannot read {path:?}: {e}")))?;
        let circuit = ftqc_circuit::parse_qasm(&text)
            .map_err(|e| CliError::Unknown(format!("QASM parse error in {path:?}: {e}")))?;
        return Ok((path.clone(), circuit));
    }
    let spec = p
        .positionals
        .first()
        .ok_or_else(|| CliError::Unknown("usage: ftqc edit <circuit> | --from file.qasm".into()))?;
    Ok((spec.clone(), load_circuit(spec)?))
}

/// `ftqc edit`: an interactive differential-recompile loop. Reads one
/// edit (or edit-set) JSON document per stdin line, applies it to the
/// live session, and prints one delta-annotated result line per batch —
/// the same wire shape `POST /v1/session/<id>/edit` answers. With
/// `--server ADDR` the session lives on a remote server instead and
/// every batch round-trips through `/v1/session/<id>/edit`.
fn cmd_edit(p: &ParsedArgs) -> Result<CmdOutput, CliError> {
    use std::io::BufRead as _;
    if let Some(addr) = p.get("server") {
        return cmd_edit_remote(p, addr);
    }
    let (label, circuit) = edit_seed(p)?;
    let options = options_from(p)?;
    let started = Instant::now();
    let (mut session, delta) = EditSession::open("local", circuit, options)
        .map_err(|e| CliError::Pipeline(format!("seed compile failed: {e}")))?;
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    println!(
        "{}",
        ftqc_service::json::Value::Obj(vec![
            (
                "id".to_string(),
                ftqc_service::json::Value::Str("local".into())
            ),
            ("source".to_string(), ftqc_service::json::Value::Str(label)),
            ("version".to_string(), ftqc_service::json::Value::Num(0.0)),
            (
                "gates".to_string(),
                ftqc_service::json::Value::Num(session.circuit().len() as f64)
            ),
            ("delta".to_string(), delta_to_json(&delta)),
            ("metrics".to_string(), session.program().metrics().to_json()),
            (
                "micros".to_string(),
                ftqc_service::json::Value::Num(micros as f64)
            ),
        ])
        .render()
    );
    let stdin = std::io::stdin();
    let mut batches = 0u64;
    let mut rejected = 0u64;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| CliError::Pipeline(e.to_string()))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        batches += 1;
        let started = Instant::now();
        let doc = match EditSet::parse_line(line) {
            Err(e) => {
                rejected += 1;
                edit_failed_json("local", session.version(), &format!("bad edit line: {e}"))
            }
            Ok(set) => {
                let digest = set.digest();
                match session.apply(&set) {
                    Ok((program, delta)) => {
                        let micros =
                            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                        edit_result_json(
                            "local",
                            session.version(),
                            digest,
                            program.metrics(),
                            &delta,
                            micros,
                        )
                    }
                    Err(e) => {
                        rejected += 1;
                        edit_failed_json("local", session.version(), &e.to_string())
                    }
                }
            }
        };
        println!("{}", doc.render());
    }
    Ok(CmdOutput {
        text: format!(
            "session closed at v{}: {} batches ({} rejected), {} differential / {} full recompiles",
            session.version(),
            batches,
            rejected,
            session.differential_recompiles(),
            session.full_recompiles(),
        ),
        failed: false,
    })
}

/// The remote half of `ftqc edit --server ADDR`.
fn cmd_edit_remote(p: &ParsedArgs, addr: &str) -> Result<CmdOutput, CliError> {
    use std::io::BufRead as _;
    let source = if let Some(path) = p.get("from") {
        let qasm = std::fs::read_to_string(path)
            .map_err(|e| CliError::Unknown(format!("cannot read {path:?}: {e}")))?;
        ftqc_service::CircuitSource::QasmInline { qasm }
    } else {
        let spec = p.positionals.first().ok_or_else(|| {
            CliError::Unknown("usage: ftqc edit <circuit> | --from file.qasm".into())
        })?;
        ftqc_service::resolve::source_from_spec(spec).map_err(CliError::Unknown)?
    };
    let options = options_from(p)?;
    let client = Client::new(addr).retry(RetryPolicy::default());
    let job = CompileJob::new("edit", source, options);
    let descriptor = client
        .session_create(&job)
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let id = descriptor
        .get("id")
        .and_then(|v| v.as_str())
        .ok_or_else(|| CliError::Pipeline("session descriptor has no id".into()))?
        .to_string();
    println!("{}", descriptor.render());
    let stdin = std::io::stdin();
    let mut batches = 0u64;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| CliError::Pipeline(e.to_string()))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        batches += 1;
        match client.session_edit(&id, line) {
            Ok(docs) => {
                for doc in docs {
                    println!("{}", doc.render());
                }
            }
            Err(e) => println!(
                "{}",
                edit_failed_json(&id, 0, &format!("edit request failed: {e}")).render()
            ),
        }
    }
    let closed = client
        .session_close(&id)
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    Ok(CmdOutput {
        text: format!(
            "closed remote session {id} after {batches} batches: {}",
            closed.render()
        ),
        failed: false,
    })
}

/// `ftqc client compile|batch --addr …`: drive a remote compile server.
fn cmd_client(p: &ParsedArgs) -> Result<CmdOutput, CliError> {
    let addr: String = p.get_or("addr", "127.0.0.1:7070".to_string())?;
    // Transient transport blips (server mid-restart, connection reset)
    // retry with bounded jittered backoff rather than failing the command.
    let client = Client::new(addr).retry(RetryPolicy::default());
    let usage =
        || CliError::Unknown("usage: ftqc client compile|batch|trace|traces <arg> [--addr]".into());
    match p.positionals.first().map(String::as_str) {
        Some("compile") => {
            let spec = p.positionals.get(1).ok_or_else(usage)?;
            let source =
                ftqc_service::resolve::source_from_spec(spec).map_err(CliError::Unknown)?;
            let options = options_from(p)?;
            // Ship the target for the server to resolve (wire v2): the
            // preset name when nothing overrides it, otherwise the merged
            // spec inline so explicit --r/--factories flags survive the
            // server-side replacement.
            let job_target = match p.get("target") {
                None => None,
                Some(value) if !value.starts_with('@') && !machine_flags_present(p) => {
                    Some(TargetRef::Named(value.clone()))
                }
                Some(_) => Some(TargetRef::Inline(target_to_json(&options.target))),
            };
            let mut job = CompileJob::new(spec.clone(), source, options);
            job.target = job_target;
            // `--trace`: use the header-aware exchange, then pull the full
            // span tree back off the server's flight recorder.
            let mut trace_tree = None;
            let result = match (p.get("stop-after"), p.flag("trace")) {
                (Some(stage), _) => client.compile_staged(&job, stage),
                (None, false) => client.compile(&job),
                (None, true) => client.compile_traced(&job).map(|(result, id)| {
                    trace_tree = id
                        .and_then(|id| client.trace(id).ok())
                        .map(|t| render_span_tree(&t));
                    result
                }),
            }
            .map_err(|e| CliError::Pipeline(e.to_string()))?;
            let failed = !result.is_ok();
            if p.flag("json") {
                return Ok(CmdOutput {
                    text: result.to_json().render(),
                    failed,
                });
            }
            let mut text = trace_tree.unwrap_or_default();
            text.push_str(render_batch_table(std::slice::from_ref(&result)).trim_end());
            Ok(CmdOutput { text, failed })
        }
        Some("trace") => {
            let raw = p.positionals.get(1).ok_or_else(usage)?;
            let id = TraceId::parse(raw).ok_or_else(|| {
                CliError::Unknown(format!("malformed trace id {raw:?} (want 1-16 hex digits)"))
            })?;
            let trace = client
                .trace(id)
                .map_err(|e| CliError::Pipeline(e.to_string()))?;
            Ok(render_span_tree(&trace).trim_end().to_string().into())
        }
        Some("traces") => {
            let min_micros: u64 = p.get_or("min-micros", 0)?;
            let summaries = client
                .traces(min_micros)
                .map_err(|e| CliError::Pipeline(e.to_string()))?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:<17} {:<11} {:>6} {:>12} {:>6}",
                "trace", "endpoint", "status", "µs", "spans"
            );
            for s in &summaries {
                let _ = writeln!(
                    out,
                    "{:<17} {:<11} {:>6} {:>12} {:>6}",
                    s.id.to_hex(),
                    s.endpoint,
                    s.status,
                    s.duration_micros,
                    s.spans
                );
            }
            let _ = write!(out, "{} traces retained", summaries.len());
            Ok(out.into())
        }
        Some("batch") => {
            let path = p.positionals.get(1).ok_or_else(usage)?;
            let jsonl = std::fs::read_to_string(path)
                .map_err(|e| CliError::Unknown(format!("cannot read {path:?}: {e}")))?;
            let results = client
                .batch(&jsonl)
                .map_err(|e| CliError::Pipeline(e.to_string()))?;
            let ok = results.iter().filter(|r| r.is_ok()).count();
            if p.flag("json") {
                // Stdout stays pure JSONL (--out still writes its file,
                // but the human-readable note would corrupt the stream).
                let mut text = render_results(&results);
                text.truncate(text.trim_end().len());
                let mut ignored_note = String::new();
                write_results_out(p, &results, &mut ignored_note)?;
                return Ok(CmdOutput {
                    text,
                    failed: ok < results.len(),
                });
            }
            let mut out = render_batch_table(&results);
            let _ = write!(out, "{ok}/{} jobs ok (remote)", results.len());
            write_results_out(p, &results, &mut out)?;
            Ok(CmdOutput {
                text: out,
                failed: ok < results.len(),
            })
        }
        _ => Err(usage()),
    }
}

fn cmd_estimate(p: &ParsedArgs) -> Result<String, CliError> {
    let circuit = circuit_arg(p)?;
    let objective = match p.get_or("objective", "qubits".to_string())?.as_str() {
        "qubits" => Objective::PhysicalQubits,
        "volume" => Objective::SpacetimeVolume,
        "time" => Objective::WallClock,
        other => {
            return Err(CliError::Unknown(format!(
                "objective {other:?} (use qubits|volume|time)"
            )))
        }
    };
    let request = EstimateRequest {
        budget: p.get_or("budget", 0.01f64)?,
        assumptions: PhysicalAssumptions {
            physical_error_rate: p.get_or("error-rate", 1e-3f64)?,
            ..PhysicalAssumptions::superconducting()
        },
        objective,
        ..Default::default()
    };
    let e =
        estimate_resources(&circuit, &request).map_err(|e| CliError::Pipeline(e.to_string()))?;
    Ok(format!("{e}"))
}

fn cmd_compare(p: &ParsedArgs) -> Result<String, CliError> {
    let circuit = circuit_arg(p)?;
    let options = options_from(p)?;
    let timing = options.target.timing;
    let f = options.target.factories;
    let program = Compiler::new(options.clone())
        .compile(&circuit)
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let m = program.metrics();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>12} {:>8} {:>16}",
        "approach", "qubits", "time (d)", "CPI", "volume/op (q·d)"
    );
    let mut row = |name: &str, qubits: u32, time: Ticks, n_ops: usize| {
        let cpi = time.as_d() / n_ops.max(1) as f64;
        let vol = qubits as f64 * time.as_d() / n_ops.max(1) as f64;
        let _ = writeln!(
            out,
            "{name:<28} {qubits:>8} {:>12.1} {cpi:>8.2} {vol:>16.1}",
            time.as_d()
        );
    };
    row(
        "ours (greedy, this work)",
        m.total_qubits(),
        m.execution_time,
        m.n_gates,
    );

    for block in [
        BlockLayout::Compact,
        BlockLayout::Intermediate,
        BlockLayout::Fast,
    ] {
        let g = GameOfSurfaceCodes::new(block)
            .factories(f)
            .estimate(&circuit);
        row(&g.name, g.total_qubits(), g.execution_time, g.n_input_gates);
    }
    let l = LineSam::new().factories(f).estimate(&circuit);
    row(&l.name, l.total_qubits(), l.execution_time, l.n_input_gates);
    let d = dascot_estimate(&circuit, Some(f), &timing);
    row(&d.name, d.total_qubits(), d.execution_time, d.n_input_gates);
    let e = edpc_estimate(&circuit, Some(f), &timing);
    row(&e.name, e.total_qubits(), e.execution_time, e.n_input_gates);

    let _ = write!(out, "({} factories, t_MSF={})", f, timing.magic_production);
    Ok(out)
}

fn cmd_layout(p: &ParsedArgs) -> Result<String, CliError> {
    let n: u32 = p
        .positionals
        .first()
        .ok_or_else(|| CliError::Unknown("usage: ftqc layout <n> <r>".into()))?
        .parse()
        .map_err(|_| CliError::Unknown("n must be a number".into()))?;
    let r: u32 = p
        .positionals
        .get(1)
        .ok_or_else(|| CliError::Unknown("usage: ftqc layout <n> <r>".into()))?
        .parse()
        .map_err(|_| CliError::Unknown("r must be a number".into()))?;
    let layout =
        Layout::try_with_routing_paths(n, r).map_err(|e| CliError::Pipeline(e.to_string()))?;
    Ok(format!(
        "{}\n{} data qubits, r={}: {} patches ({}x{} grid)",
        render_layout(&layout),
        n,
        r,
        layout.total_patches(),
        layout.grid().rows(),
        layout.grid().cols(),
    ))
}

/// `ftqc targets [list]` / `ftqc targets show <NAME|@spec.json>`.
fn cmd_targets(p: &ParsedArgs) -> Result<String, CliError> {
    let registry = target_registry();
    match p.positionals.first().map(String::as_str) {
        None | Some("list") => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:<10} {:>3} {:>9} {:>7} {:>6} {:<18} description",
                "name", "r", "factories", "t_msf", "bus", "digest"
            );
            for entry in registry.entries() {
                let spec = &entry.spec;
                let _ = writeln!(
                    out,
                    "{:<10} {:>3} {:>9} {:>7} {:>6} {:<18} {}",
                    entry.name,
                    spec.routing_paths(),
                    spec.factories,
                    spec.timing.magic_production.to_string(),
                    if spec.bus_is_pinned() {
                        "pinned"
                    } else {
                        "swept"
                    },
                    fingerprint::to_hex(target_digest(spec)),
                    entry.description,
                );
            }
            let _ = write!(
                out,
                "use --target NAME on compile/sweep/batch, or --target @spec.json \
                 for a custom machine (see `ftqc targets show paper` for the schema)"
            );
            Ok(out)
        }
        Some("show") => {
            let value = p.positionals.get(1).ok_or_else(|| {
                CliError::Unknown("usage: ftqc targets show <NAME|@spec.json>".into())
            })?;
            let (label, spec) = parse_target_value(value, &registry)?;
            Ok(format!(
                "target : {label}\ndigest : {}\nspec   : {}",
                fingerprint::to_hex(target_digest(&spec)),
                target_to_json(&spec).render(),
            ))
        }
        Some(other) => Err(CliError::Unknown(format!(
            "unknown targets subcommand {other:?} (use list|show)"
        ))),
    }
}

fn cmd_bench() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>7} {:>7} {:>8}",
        "benchmark", "qubits", "gates", "T-count"
    );
    for b in Benchmark::all() {
        let c = b.circuit();
        let _ = writeln!(
            out,
            "{:<18} {:>7} {:>7} {:>8}",
            b.name(),
            c.num_qubits(),
            c.len(),
            c.t_count()
        );
    }
    let _ = write!(
        out,
        "condensed-matter families accept `:L` (e.g. ising:4 for a 4x4 lattice)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(s: &str) -> Result<String, CliError> {
        run_full(s).map(|out| out.text)
    }

    fn run_full(s: &str) -> Result<CmdOutput, CliError> {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        run(&argv)
    }

    #[test]
    fn help_on_empty_and_help() {
        assert!(run(&[]).unwrap().text.contains("USAGE"));
        assert!(run_line("help").unwrap().contains("USAGE"));
        assert!(run_line("help").unwrap().contains("serve"));
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(run_line("frobnicate").is_err());
    }

    #[test]
    fn bench_lists_table1() {
        let out = run_line("bench").unwrap();
        assert!(out.contains("Ising 2D"));
        assert!(out.contains("Multiplier"));
        assert!(out.contains("255") || out.contains("GHZ"));
    }

    #[test]
    fn compile_small_ising() {
        let out = run_line("compile ising:2 --r 4 --verify --semantics").unwrap();
        assert!(out.contains("execution time"));
        assert!(out.contains("physical verify : ok"));
        assert!(out.contains("semantic verify : ok"));
    }

    #[test]
    fn compile_unknown_circuit() {
        assert!(run_line("compile not-a-circuit").is_err());
    }

    #[test]
    fn compile_stop_after_reports_stages() {
        let out = run_line("compile ising:2 --stop-after map").unwrap();
        assert!(out.contains("stage"), "got: {out}");
        assert!(out.contains("prepare"), "got: {out}");
        assert!(out.contains("stopped after map"), "got: {out}");
        assert!(!out.contains("execution time"), "no schedule ran: {out}");
        assert!(run_line("compile ising:2 --stop-after banana").is_err());

        // --json composes: the staged JobResult document, like ?stage=.
        let out = run_full("compile ising:2 --json --stop-after map").unwrap();
        assert!(!out.failed);
        let doc = ftqc_service::Value::parse(&out.text).expect("valid json");
        assert_eq!(
            doc.get("stage").and_then(ftqc_service::Value::as_str),
            Some("map")
        );
        assert!(doc.get("metrics").is_none(), "got: {}", out.text);
        assert!(run_line("compile ising:2 --json --explain").is_err());
    }

    #[test]
    fn compile_explain_adds_stage_table() {
        let out = run_line("compile ising:2 --explain").unwrap();
        for stage in ["prepare", "lower", "map", "schedule"] {
            assert!(out.contains(stage), "missing {stage} in: {out}");
        }
        assert!(out.contains("computed"), "got: {out}");
        assert!(out.contains("execution time"), "full report follows: {out}");
        assert!(
            out.contains("arena reuses") && out.contains("path table"),
            "router counters follow the stage table: {out}"
        );
    }

    #[test]
    fn compile_trace_renders_span_tree() {
        let out = run_line("compile ising:2 --trace").unwrap();
        assert!(out.starts_with("trace "), "header line first: {out}");
        assert!(out.contains("endpoint=compile"), "got: {out}");
        for stage in ["prepare", "lower", "map", "schedule"] {
            assert!(out.contains(stage), "missing {stage} span in: {out}");
        }
        assert!(out.contains("self"), "self-times shown: {out}");
        assert!(out.contains("cached=false"), "stage attrs shown: {out}");
        assert!(out.contains("execution time"), "full report follows: {out}");
        // --trace and --explain compose: table and tree both print.
        let both = run_line("compile ising:2 --trace --explain").unwrap();
        assert!(both.contains("fingerprint") && both.starts_with("trace "));
        // Like --explain, --trace is a human report.
        assert!(run_line("compile ising:2 --json --trace").is_err());
    }

    #[test]
    fn explore_produces_table() {
        let out = run_line("explore ising:2 --r 2..4 --factories 1..2").unwrap();
        assert!(out.contains("design points"));
        assert!(out.lines().count() >= 4);
    }

    #[test]
    fn explore_pareto_subset() {
        let full = run_line("explore ising:2 --r 2..5 --factories 1..2").unwrap();
        let pareto = run_line("explore ising:2 --r 2..5 --factories 1..2 --pareto yes").unwrap();
        let count = |s: &str| -> usize {
            s.lines()
                .last()
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(count(&pareto) <= count(&full));
    }

    #[test]
    fn sweep_serial_matches_explore() {
        let explore = run_line("explore ising:2 --r 2..4 --factories 1..2").unwrap();
        let sweep = run_line("sweep ising:2 --r 2..4 --factories 1..2").unwrap();
        // Same table; sweep adds service + stage-cache stats lines.
        assert!(sweep.starts_with(explore.as_str()));
        assert!(sweep.contains("service: 1 worker(s)"));
        // 6 grid points over one circuit: the front end is reused.
        assert!(sweep.contains("stage cache: prepare 5/6"), "got: {sweep}");
    }

    #[test]
    fn batch_honours_stop_after_jobs() {
        let dir = std::env::temp_dir().join("ftqc-cli-test-staged");
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("staged.jsonl");
        std::fs::write(
            &jobs,
            concat!(
                "{\"id\":\"warm\",\"source\":{\"benchmark\":\"ising\",\"size\":2},\"stop_after\":\"map\"}\n",
                "{\"id\":\"full\",\"source\":{\"benchmark\":\"ising\",\"size\":2},\"resume_from\":\"map\"}\n",
            ),
        )
        .unwrap();
        let out = run_full(&format!("batch {} --workers 1", jobs.display())).unwrap();
        assert!(!out.failed, "got: {}", out.text);
        assert!(out.text.contains("stopped after map"), "got: {}", out.text);
        // The warm job misses prepare once; the full job's resume_from
        // probe and run both hit it, and the map artifact is reused.
        assert!(
            out.text.contains("stage cache: prepare 2/3"),
            "the full job resumed from the warm stages: {}",
            out.text
        );
        assert!(out.text.contains("map 1/2"), "got: {}", out.text);
    }

    #[test]
    fn sweep_parallel_matches_explore() {
        let explore = run_line("explore ising:2 --r 2..4 --factories 1..2").unwrap();
        let sweep =
            run_line("sweep ising:2 --r 2..4 --factories 1..2 --parallel --workers 3").unwrap();
        assert!(sweep.starts_with(explore.as_str()));
        assert!(sweep.contains("3 worker(s)"));
    }

    #[test]
    fn sweep_file_cache_hits_on_second_run() {
        let dir = std::env::temp_dir().join("ftqc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep-cache.json");
        let _ = std::fs::remove_file(&path);
        let line = format!(
            "sweep ising:2 --r 2..3 --factories 1..2 --parallel --cache {}",
            path.display()
        );
        let first = run_line(&line).unwrap();
        assert!(first.contains("cache 0/4 hits"), "got: {first}");
        let second = run_line(&line).unwrap();
        assert!(second.contains("cache 4/4 hits (100%)"), "got: {second}");
        // Identical tables either way.
        assert_eq!(first.lines().next(), second.lines().next());
    }

    #[test]
    fn batch_runs_jobs_and_reports_cache() {
        let dir = std::env::temp_dir().join("ftqc-cli-test-batch");
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("jobs.jsonl");
        let out = dir.join("results.jsonl");
        let cache = dir.join("batch-cache.json");
        let _ = std::fs::remove_file(&cache);
        std::fs::write(
            &jobs,
            concat!(
                "# sample batch\n",
                "{\"id\":\"r4\",\"source\":{\"benchmark\":\"ising\",\"size\":2},\"options\":{\"routing_paths\":4}}\n",
                "{\"id\":\"r6\",\"source\":{\"benchmark\":\"ising\",\"size\":2},\"options\":{\"routing_paths\":6}}\n",
                "{\"id\":\"broken\",\"source\":{\"benchmark\":\"nope\"}}\n",
            ),
        )
        .unwrap();
        let line = format!(
            "batch {} --workers 2 --cache {} --out {}",
            jobs.display(),
            cache.display(),
            out.display()
        );
        let report = run_line(&line).unwrap();
        assert!(report.contains("2/3 jobs ok"), "got: {report}");
        assert!(report.contains("0 hits / 2 lookups"), "got: {report}");
        assert!(report.contains("FAILED"));
        let results = std::fs::read_to_string(&out).unwrap();
        assert_eq!(results.lines().count(), 3);
        assert!(results.contains("\"cache\":\"computed\""));

        // A second identical invocation is a fresh process-level service;
        // the file tier answers both compilable jobs.
        let report = run_line(&line).unwrap();
        assert!(
            report.contains("2 hits / 2 lookups (100%)"),
            "got: {report}"
        );
        let results = std::fs::read_to_string(&out).unwrap();
        assert!(results.contains("\"cache\":\"file\""), "got: {results}");
    }

    #[test]
    fn batch_rejects_missing_input_and_survives_malformed_lines() {
        assert!(run_line("batch").is_err());
        assert!(run_line("batch /nonexistent/jobs.jsonl").is_err());
        let dir = std::env::temp_dir().join("ftqc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        // A malformed line fails that line, not the batch; the exit status
        // reflects the failure.
        let bad = dir.join("bad.jsonl");
        std::fs::write(
            &bad,
            "{\"source\":{}}\n{\"id\":\"ok\",\"source\":{\"benchmark\":\"ising\",\"size\":2}}\n",
        )
        .unwrap();
        let out = run_full(&format!("batch {}", bad.display())).unwrap();
        assert!(out.failed, "a failed line must fail the exit status");
        assert!(out.text.contains("line-1"), "got: {}", out.text);
        assert!(out.text.contains("line 1"), "got: {}", out.text);
        assert!(out.text.contains("1/2 jobs ok"), "got: {}", out.text);
        // An input with no jobs at all is still a hard error.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "# nothing\n").unwrap();
        assert!(run_line(&format!("batch {}", empty.display())).is_err());
    }

    #[test]
    fn batch_exit_status_clean_when_all_jobs_ok() {
        let dir = std::env::temp_dir().join("ftqc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("clean.jsonl");
        std::fs::write(
            &jobs,
            "{\"id\":\"a\",\"source\":{\"benchmark\":\"ising\",\"size\":2}}\n",
        )
        .unwrap();
        let out = run_full(&format!("batch {}", jobs.display())).unwrap();
        assert!(!out.failed);
        assert!(out.text.contains("1/1 jobs ok"));
    }

    #[test]
    fn compile_json_emits_job_result() {
        let out = run_full("compile ising:2 --r 4 --json").unwrap();
        assert!(!out.failed);
        let doc = ftqc_service::Value::parse(&out.text).expect("valid json");
        assert_eq!(
            doc.get("id").and_then(ftqc_service::Value::as_str),
            Some("ising:2")
        );
        assert_eq!(
            doc.get("status").and_then(ftqc_service::Value::as_str),
            Some("ok")
        );
        let result: JobResult<Metrics> =
            ftqc_service::FromJson::from_json(&doc).expect("decodes as JobResult");
        let m = result.metrics.expect("ok result carries metrics");
        assert_eq!(m.routing_paths, 4);
    }

    #[test]
    fn sweep_json_matches_server_schema() {
        let out = run_full("sweep ising:2 --r 2..3 --factories 1 --json").unwrap();
        assert!(!out.failed);
        let doc = ftqc_service::Value::parse(&out.text).expect("valid json");
        let resp: SweepResponse =
            ftqc_service::FromJson::from_json(&doc).expect("decodes as SweepResponse");
        assert_eq!(resp.points.len(), 2);
        assert_eq!(resp.cache.misses, 2);
    }

    #[test]
    fn serve_and_client_roundtrip_on_loopback() {
        // `serve` itself blocks, so drive the server directly and exercise
        // the `client` subcommands against it.
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let thread = std::thread::spawn(move || server.run().unwrap());

        let out = run_full(&format!("client compile ising:2 --r 4 --addr {addr}")).unwrap();
        assert!(!out.failed, "got: {}", out.text);
        assert!(out.text.contains("ising:2"), "got: {}", out.text);

        let out = run_full(&format!(
            "client compile ising:2 --r 4 --addr {addr} --json"
        ))
        .unwrap();
        let doc = ftqc_service::Value::parse(&out.text).expect("valid json");
        assert_eq!(
            doc.get("cache").and_then(ftqc_service::Value::as_str),
            Some("memory"),
            "second identical request must hit the server's cache"
        );

        // A staged remote compile stops at the named stage.
        let out = run_full(&format!(
            "client compile ising:2 --r 4 --addr {addr} --stop-after map"
        ))
        .unwrap();
        assert!(!out.failed, "got: {}", out.text);
        assert!(out.text.contains("stopped after map"), "got: {}", out.text);

        // `--trace` prints the server-side span tree above the result row.
        let out = run_full(&format!("client compile ising:2 --addr {addr} --trace")).unwrap();
        assert!(!out.failed, "got: {}", out.text);
        assert!(out.text.starts_with("trace "), "got: {}", out.text);
        assert!(out.text.contains("queue-wait"), "got: {}", out.text);
        assert!(out.text.contains("ising:2"), "result row follows");

        // The recorder lists it; `client trace <id>` replays any entry.
        let out = run_full(&format!("client traces --addr {addr}")).unwrap();
        assert!(out.text.contains("traces retained"), "got: {}", out.text);
        let id = out
            .text
            .lines()
            .nth(1)
            .and_then(|row| row.split_whitespace().next())
            .expect("at least one retained trace")
            .to_string();
        let out = run_full(&format!("client trace {id} --addr {addr}")).unwrap();
        assert!(
            out.text.starts_with(&format!("trace {id}")),
            "got: {}",
            out.text
        );
        assert!(run_line(&format!("client trace zz --addr {addr}")).is_err());

        let dir = std::env::temp_dir().join("ftqc-cli-test-client");
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("jobs.jsonl");
        std::fs::write(
            &jobs,
            "{\"id\":\"a\",\"source\":{\"benchmark\":\"ising\",\"size\":2},\"options\":{\"routing_paths\":4}}\n{oops}\n",
        )
        .unwrap();
        let out = run_full(&format!("client batch {} --addr {addr}", jobs.display())).unwrap();
        assert!(out.failed, "the malformed line must fail the exit status");
        assert!(out.text.contains("1/2 jobs ok"), "got: {}", out.text);

        assert!(run_line(&format!("client --addr {addr}")).is_err());
        assert!(run_line("client compile ising:2 --addr 127.0.0.1:1").is_err());

        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn estimate_reports_physical_resources() {
        let out = run_line("estimate ising:2 --error-rate 1e-4").unwrap();
        assert!(out.contains("physical qubits"));
        assert!(out.contains("wall clock"));
    }

    #[test]
    fn estimate_rejects_bad_objective() {
        assert!(run_line("estimate ising:2 --objective banana").is_err());
    }

    #[test]
    fn compare_lists_all_baselines() {
        let out = run_line("compare ising:2").unwrap();
        assert!(out.contains("ours"));
        assert!(out.contains("compact"));
        assert!(out.contains("line-sam") || out.contains("Line-SAM") || out.contains("lsqca"));
        assert!(out.contains("dascot"));
        assert!(out.contains("edpc"));
    }

    #[test]
    fn layout_renders() {
        let out = run_line("layout 16 4").unwrap();
        assert!(out.contains("16 data qubits"));
        assert!(out.lines().count() > 5);
    }

    #[test]
    fn layout_usage_errors() {
        assert!(run_line("layout").is_err());
        assert!(run_line("layout 16").is_err());
        assert!(run_line("layout banana 4").is_err());
    }

    #[test]
    fn qasm_file_roundtrip() {
        let dir = std::env::temp_dir().join("ftqc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bell.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
        )
        .unwrap();
        let out = run_line(&format!("compile {} --semantics", path.display())).unwrap();
        assert!(out.contains("semantic verify : ok"));
    }

    #[test]
    fn csv_export_writes_file() {
        let dir = std::env::temp_dir().join("ftqc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sched.csv");
        let out = run_line(&format!("compile ising:2 --csv {}", path.display())).unwrap();
        assert!(out.contains("schedule csv"));
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.lines().count() > 10);
    }

    #[test]
    fn compile_ablation_flags_accepted() {
        let out = run_line("compile ising:2 --no-lookahead --no-redundant-elim").unwrap();
        assert!(out.contains("execution time"));
    }

    #[test]
    fn targets_list_and_show() {
        let out = run_line("targets").unwrap();
        for name in ["paper", "sparse", "fast-d"] {
            assert!(out.contains(name), "missing {name} in: {out}");
        }
        assert!(out.contains("pinned"), "sparse pins its bus: {out}");
        assert_eq!(
            run_line("targets").unwrap(),
            run_line("targets list").unwrap()
        );

        let out = run_line("targets show sparse").unwrap();
        assert!(out.contains("digest"), "got {out}");
        assert!(out.contains("\"routing_paths\":2"), "got {out}");
        assert!(out.contains("\"fixed_bus\":true"), "got {out}");
        assert!(run_line("targets show warp").is_err());
        assert!(run_line("targets frobnicate").is_err());
        assert!(run_line("targets show").is_err());
    }

    #[test]
    fn compile_with_target_flag() {
        // --target sparse compiles on the r=2 clustered machine.
        let out = run_line("compile ising:2 --target sparse").unwrap();
        assert!(out.contains("layout          : r=2"), "got {out}");
        // Explicit flags override the preset's values.
        let out = run_line("compile ising:2 --target sparse --r 4").unwrap();
        assert!(out.contains("layout          : r=4"), "got {out}");
        assert!(run_line("compile ising:2 --target warp").is_err());

        // A spec file works everywhere a preset name does.
        let dir = std::env::temp_dir().join("ftqc-cli-test-target");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("lab.json");
        std::fs::write(&spec, r#"{"routing_paths":3,"factories":2}"#).unwrap();
        let out = run_line(&format!("compile ising:2 --target @{}", spec.display())).unwrap();
        assert!(out.contains("layout          : r=3"), "got {out}");
        let out = run_line(&format!("targets show @{}", spec.display())).unwrap();
        assert!(out.contains("\"factories\":2"), "got {out}");
    }

    #[test]
    fn sweep_multi_target_produces_per_target_fronts() {
        let out = run_line(
            "sweep ising:2 --target sparse --target paper --r 2..4 --factories 1..2 --parallel",
        )
        .unwrap();
        assert!(out.contains("== target sparse"), "got {out}");
        assert!(out.contains("== target paper"), "got {out}");
        assert!(out.contains("on the Pareto front"), "got {out}");
        // The sparse target pins its bus: 2 factory points; paper sweeps
        // the full 3x2 grid.
        assert!(out.contains("(2 grid points evaluated)"), "got {out}");
        assert!(out.contains("(6 grid points evaluated)"), "got {out}");
        assert!(out.contains("stage cache"), "one shared cache: {out}");

        // --json emits the server's MultiSweepResponse schema.
        let out = run_full("sweep ising:2 --target sparse --target paper --r 2..3 --json").unwrap();
        let doc = ftqc_service::Value::parse(&out.text).expect("valid json");
        let resp: MultiSweepResponse =
            ftqc_service::FromJson::from_json(&doc).expect("decodes as MultiSweepResponse");
        assert_eq!(resp.targets.len(), 2);
        assert_eq!(resp.targets[0].name, "sparse");
        assert!(!resp.targets[1].front.is_empty());
    }

    #[test]
    fn batch_jobs_with_targets() {
        let dir = std::env::temp_dir().join("ftqc-cli-test-batch-target");
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("targets.jsonl");
        std::fs::write(
            &jobs,
            concat!(
                "{\"id\":\"s\",\"source\":{\"benchmark\":\"ising\",\"size\":2},\"target\":\"sparse\"}\n",
                "{\"id\":\"d\",\"source\":{\"benchmark\":\"ising\",\"size\":2}}\n",
                "{\"id\":\"r6\",\"source\":{\"benchmark\":\"ising\",\"size\":2},\"options\":{\"routing_paths\":6}}\n",
                "{\"id\":\"bad\",\"source\":{\"benchmark\":\"ising\",\"size\":2},\"target\":\"warp\"}\n",
            ),
        )
        .unwrap();
        // --target fast-d is the default for the job that names none.
        let out = run_full(&format!(
            "batch {} --workers 2 --target fast-d --out {}",
            jobs.display(),
            dir.join("out.jsonl").display()
        ))
        .unwrap();
        assert!(
            out.failed,
            "the unknown-target line must fail: {}",
            out.text
        );
        assert!(out.text.contains("3/4 jobs ok"), "got {}", out.text);
        assert!(out.text.contains("unknown target"), "got {}", out.text);
        let results = std::fs::read_to_string(dir.join("out.jsonl")).unwrap();
        let r_of = |line: &str| {
            ftqc_service::Value::parse(line)
                .unwrap()
                .get("metrics")
                .and_then(|m| m.get("routing_paths"))
                .and_then(ftqc_service::Value::as_u64)
        };
        let mut lines = results.lines();
        assert_eq!(r_of(lines.next().unwrap()), Some(2), "job target wins");
        // The default-machine job picked up --target fast-d (r=4 family,
        // halved latencies); the r=6 job kept its explicit machine.
        assert_eq!(r_of(lines.next().unwrap()), Some(4));
        assert_eq!(
            r_of(lines.next().unwrap()),
            Some(6),
            "explicit per-job machine options beat the --target default: {results}"
        );
    }

    #[test]
    fn client_compile_with_target() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let thread = std::thread::spawn(move || server.run().unwrap());

        let out = run_full(&format!(
            "client compile ising:2 --addr {addr} --target sparse --json"
        ))
        .unwrap();
        assert!(!out.failed, "got: {}", out.text);
        let doc = ftqc_service::Value::parse(&out.text).expect("valid json");
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("routing_paths"))
                .and_then(ftqc_service::Value::as_u64),
            Some(2),
            "server resolved the named target: {}",
            out.text
        );
        // An unknown preset is rejected by the server with a 400.
        assert!(run_line(&format!(
            "client compile ising:2 --addr {addr} --target warp"
        ))
        .is_err());

        handle.shutdown();
        thread.join().unwrap();
    }
}
