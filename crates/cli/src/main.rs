//! `ftqc` — command-line front end for the surface-code compiler.
//!
//! ```text
//! ftqc compile <circuit>   compile one circuit, print metrics
//! ftqc explore <circuit>   sweep routing paths × factories
//! ftqc sweep <circuit>     the same sweep through the batch service
//!                          (--parallel, --workers, --cache FILE)
//! ftqc batch <jobs.jsonl>  run a JSON-lines batch of compile jobs
//! ftqc estimate <circuit>  physical resources for a hardware model
//! ftqc compare <circuit>   our compiler vs all four baselines
//! ftqc layout <n> <r>      render the layout for n qubits, r paths
//! ftqc bench               list the built-in benchmark circuits
//! ftqc help                this text
//! ```
//!
//! `<circuit>` is a built-in benchmark name (`ising`, `heisenberg`,
//! `fermi-hubbard`, `ghz`, `adder`, `multiplier` — optionally `name:L` for
//! a condensed-matter side length) or a path to an OpenQASM 2 file.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&raw) {
        Ok(output) => {
            println!("{}", output.text);
            // Commands like `batch` print a report but still signal partial
            // failure through the exit status.
            if output.failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
