//! Per-cell busy-until tracking.

use ftqc_arch::{Coord, Ticks};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tracks, for every grid cell, the instant it becomes free.
///
/// Cells never touched are free from time zero. The timeline is the
/// contention model of the scheduler: two operations sharing any cell are
/// serialised, operations on disjoint cells overlap freely.
///
/// # Example
///
/// ```
/// use ftqc_arch::{Coord, Ticks};
/// use ftqc_sim::ResourceTimeline;
///
/// let mut tl = ResourceTimeline::new();
/// let cells = [Coord::new(0, 0), Coord::new(0, 1)];
/// let start = tl.earliest_start(cells.iter().copied(), Ticks::ZERO);
/// tl.reserve(cells.iter().copied(), start, Ticks::from_d(2.0));
/// assert_eq!(tl.busy_until(Coord::new(0, 0)), Ticks::from_d(2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceTimeline {
    busy_until: HashMap<Coord, Ticks>,
}

impl ResourceTimeline {
    /// An empty timeline (everything free at time zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// When `cell` becomes free.
    pub fn busy_until(&self, cell: Coord) -> Ticks {
        self.busy_until.get(&cell).copied().unwrap_or(Ticks::ZERO)
    }

    /// Earliest instant ≥ `not_before` at which every cell in `cells` is
    /// free.
    pub fn earliest_start(
        &self,
        cells: impl IntoIterator<Item = Coord>,
        not_before: Ticks,
    ) -> Ticks {
        cells
            .into_iter()
            .map(|c| self.busy_until(c))
            .fold(not_before, Ticks::max)
    }

    /// Marks every cell in `cells` busy during `[start, start + duration)`.
    ///
    /// Reservations are expected to be issued in non-decreasing start order
    /// per cell (the scheduler's discipline); a reservation never shortens
    /// an existing one.
    pub fn reserve(
        &mut self,
        cells: impl IntoIterator<Item = Coord>,
        start: Ticks,
        duration: Ticks,
    ) {
        let end = start + duration;
        for c in cells {
            let e = self.busy_until.entry(c).or_insert(Ticks::ZERO);
            *e = (*e).max(end);
        }
    }

    /// The latest busy-until across all cells (the resource makespan).
    pub fn horizon(&self) -> Ticks {
        self.busy_until
            .values()
            .copied()
            .fold(Ticks::ZERO, Ticks::max)
    }

    /// Number of cells ever reserved.
    pub fn touched_cells(&self) -> usize {
        self.busy_until.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_cells_are_free() {
        let tl = ResourceTimeline::new();
        assert_eq!(tl.busy_until(Coord::new(5, 5)), Ticks::ZERO);
        assert_eq!(tl.horizon(), Ticks::ZERO);
    }

    #[test]
    fn earliest_start_respects_not_before() {
        let tl = ResourceTimeline::new();
        let t = tl.earliest_start([Coord::new(0, 0)], Ticks::from_d(3.0));
        assert_eq!(t, Ticks::from_d(3.0));
    }

    #[test]
    fn reserve_serialises_overlapping_ops() {
        let mut tl = ResourceTimeline::new();
        let a = [Coord::new(0, 0), Coord::new(0, 1)];
        let b = [Coord::new(0, 1), Coord::new(0, 2)];
        tl.reserve(a.iter().copied(), Ticks::ZERO, Ticks::from_d(2.0));
        let start_b = tl.earliest_start(b.iter().copied(), Ticks::ZERO);
        assert_eq!(start_b, Ticks::from_d(2.0), "shared cell (0,1) serialises");
        // Disjoint cells overlap.
        let c = [Coord::new(5, 5)];
        assert_eq!(
            tl.earliest_start(c.iter().copied(), Ticks::ZERO),
            Ticks::ZERO
        );
    }

    #[test]
    fn reserve_never_shrinks() {
        let mut tl = ResourceTimeline::new();
        let c = Coord::new(1, 1);
        tl.reserve([c], Ticks::ZERO, Ticks::from_d(5.0));
        tl.reserve([c], Ticks::from_d(1.0), Ticks::from_d(1.0));
        assert_eq!(tl.busy_until(c), Ticks::from_d(5.0));
    }

    #[test]
    fn horizon_tracks_max() {
        let mut tl = ResourceTimeline::new();
        tl.reserve([Coord::new(0, 0)], Ticks::ZERO, Ticks::from_d(2.0));
        tl.reserve([Coord::new(9, 9)], Ticks::from_d(4.0), Ticks::from_d(3.0));
        assert_eq!(tl.horizon(), Ticks::from_d(7.0));
        assert_eq!(tl.touched_cells(), 2);
    }
}
