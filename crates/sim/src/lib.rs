//! Scheduling core for lattice-surgery execution simulation.
//!
//! The compiler turns a circuit into a sequence of [`SurgeryOp`]s
//! (`ftqc-arch`); this crate provides the machinery that assigns start
//! times: a [`ResourceTimeline`] tracking when each grid cell becomes free,
//! and a [`Schedule`] recording `(op, start, duration)` triples with their
//! makespan.
//!
//! The model is greedy list scheduling: an operation starts at the earliest
//! instant every cell it touches is free and all its ordering constraints
//! (qubit readiness, magic-state availability) are met. This is exactly the
//! discipline of the paper's compiler — operations are issued in the greedy
//! router's order and parallelism arises whenever resources are disjoint.
//!
//! [`SurgeryOp`]: ftqc_arch::SurgeryOp

pub mod schedule;
pub mod timeline;

pub use schedule::{Schedule, ScheduledOp};
pub use timeline::ResourceTimeline;
