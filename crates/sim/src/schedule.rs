//! Timed operation records.

use ftqc_arch::Ticks;
use serde::{Deserialize, Serialize};

/// One operation with its assigned start time and duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOp<T> {
    /// The operation.
    pub op: T,
    /// Assigned start instant.
    pub start: Ticks,
    /// Duration under the timing model used for scheduling.
    pub duration: Ticks,
}

impl<T> ScheduledOp<T> {
    /// The instant the operation completes.
    pub fn end(&self) -> Ticks {
        self.start + self.duration
    }
}

/// An ordered collection of scheduled operations.
///
/// # Example
///
/// ```
/// use ftqc_arch::Ticks;
/// use ftqc_sim::Schedule;
///
/// let mut s: Schedule<&str> = Schedule::new();
/// s.push("h q0", Ticks::ZERO, Ticks::from_d(3.0));
/// s.push("cnot q0 q1", Ticks::from_d(3.0), Ticks::from_d(2.0));
/// assert_eq!(s.makespan(), Ticks::from_d(5.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule<T> {
    items: Vec<ScheduledOp<T>>,
    makespan: Ticks,
}

impl<T> Default for Schedule<T> {
    fn default() -> Self {
        Self {
            items: Vec::new(),
            makespan: Ticks::ZERO,
        }
    }
}

impl<T> Schedule<T> {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: T, start: Ticks, duration: Ticks) {
        self.makespan = self.makespan.max(start + duration);
        self.items.push(ScheduledOp {
            op,
            start,
            duration,
        });
    }

    /// The scheduled operations, in issue order.
    pub fn items(&self) -> &[ScheduledOp<T>] {
        &self.items
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Completion time of the last-finishing operation.
    pub fn makespan(&self) -> Ticks {
        self.makespan
    }

    /// Total busy time summed over operations (spacetime numerator when
    /// multiplied by cells, or a utilisation diagnostic).
    pub fn total_busy(&self) -> Ticks {
        self.items.iter().map(|s| s.duration).sum()
    }

    /// Iterates over the scheduled operations.
    pub fn iter(&self) -> std::slice::Iter<'_, ScheduledOp<T>> {
        self.items.iter()
    }
}

impl<'a, T> IntoIterator for &'a Schedule<T> {
    type Item = &'a ScheduledOp<T>;
    type IntoIter = std::slice::Iter<'a, ScheduledOp<T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_tracks_latest_end() {
        let mut s: Schedule<u32> = Schedule::new();
        s.push(1, Ticks::ZERO, Ticks::from_d(2.0));
        s.push(2, Ticks::from_d(1.0), Ticks::from_d(0.5));
        assert_eq!(s.makespan(), Ticks::from_d(2.0));
        s.push(3, Ticks::from_d(5.0), Ticks::from_d(1.0));
        assert_eq!(s.makespan(), Ticks::from_d(6.0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_busy(), Ticks::from_d(3.5));
    }

    #[test]
    fn scheduled_op_end() {
        let op = ScheduledOp {
            op: (),
            start: Ticks::from_d(2.0),
            duration: Ticks::from_d(2.5),
        };
        assert_eq!(op.end(), Ticks::from_d(4.5));
    }

    #[test]
    fn iteration() {
        let mut s: Schedule<&str> = Schedule::new();
        s.push("a", Ticks::ZERO, Ticks::from_d(1.0));
        s.push("b", Ticks::from_d(1.0), Ticks::from_d(1.0));
        let names: Vec<_> = s.iter().map(|x| x.op).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(!s.is_empty());
    }
}
