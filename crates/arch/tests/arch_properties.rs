//! Property tests on the layout family and the distillation catalogue.

use ftqc_arch::distillation::{catalogue, choose_protocol, DistillationProtocol};
use ftqc_arch::qec::{physical_qubits_per_patch, PhysicalAssumptions};
use ftqc_arch::{CellKind, Layout};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every valid `(n, r)` layout is internally consistent: the data cells
    /// are distinct, on-grid, marked as data, exactly `n` of them, and the
    /// patch accounting adds up.
    #[test]
    fn layout_family_consistent(n in 1u32..200, r_off in 0u32..12) {
        let max_r = Layout::max_routing_paths(n);
        let r = 2 + r_off.min(max_r.saturating_sub(2));
        let layout = Layout::try_with_routing_paths(n, r).expect("valid r");
        let grid = layout.grid();

        prop_assert_eq!(layout.data_cells().len(), n as usize);
        let unique: std::collections::HashSet<_> = layout.data_cells().iter().collect();
        prop_assert_eq!(unique.len(), n as usize, "duplicate data cells");
        for &c in layout.data_cells() {
            prop_assert!(grid.in_bounds(c));
            prop_assert_eq!(grid.kind(c), CellKind::Data);
        }
        prop_assert_eq!(
            layout.total_patches(),
            grid.rows() * grid.cols()
        );
        prop_assert_eq!(
            layout.bus_patches() + n,
            layout.total_patches()
        );
    }

    /// More routing paths never shrink the layout, and the boundary bus is
    /// non-empty for every r ≥ 2 (factories must be able to dock).
    #[test]
    fn routing_paths_monotone_in_patches(n in 1u32..150) {
        let max_r = Layout::max_routing_paths(n);
        let mut last = 0u32;
        for r in 2..=max_r {
            let l = Layout::try_with_routing_paths(n, r).expect("valid r");
            prop_assert!(l.total_patches() >= last, "r={r} shrank the grid");
            last = l.total_patches();
            prop_assert!(!l.boundary_bus_cells().is_empty());
        }
    }

    /// The physical patch formula is exactly `2d² − 1` and monotone.
    #[test]
    fn patch_formula(d in 3u32..60) {
        prop_assert_eq!(physical_qubits_per_patch(d), 2 * (d as u64).pow(2) - 1);
        prop_assert!(physical_qubits_per_patch(d + 2) > physical_qubits_per_patch(d));
    }

    /// Distillation composition multiplies suppression orders and the
    /// ideal output error is monotone in the input error.
    #[test]
    fn distillation_monotone(p1 in 1e-5f64..1e-2, p2 in 1e-5f64..1e-2) {
        let proto = DistillationProtocol::fifteen_to_one();
        let lo = p1.min(p2);
        let hi = p1.max(p2);
        prop_assert!(proto.ideal_output_error(lo) <= proto.ideal_output_error(hi));
        let squared = DistillationProtocol::fifteen_to_one_squared();
        // Two levels always beat one for the same (sub-threshold) input.
        prop_assert!(squared.ideal_output_error(lo) <= proto.ideal_output_error(lo));
    }

    /// `choose_protocol` always returns a protocol that actually meets the
    /// target, and never a stronger one than the cheapest feasible.
    #[test]
    fn chooser_is_sound_and_minimal(
        exp in 4u32..12,
        d_half in 5u32..25,
    ) {
        let d = 2 * d_half + 1;
        let target = 10f64.powi(-(exp as i32));
        let a = PhysicalAssumptions::superconducting();
        if let Some(p) = choose_protocol(1e-3, target, d, &a) {
            prop_assert!(p.output_error(1e-3, d, &a) < target);
            // Minimality: no cheaper catalogue entry is feasible.
            for other in catalogue() {
                if other.round_volume() < p.round_volume() {
                    prop_assert!(other.output_error(1e-3, d, &a) >= target);
                }
            }
        }
    }

    /// Raw-state consumption grows with level count.
    #[test]
    fn raw_consumption_grows(_x in 0..1) {
        let c = catalogue();
        for w in c.windows(2) {
            prop_assert!(w[1].raw_per_output() > w[0].raw_per_output());
        }
    }
}
