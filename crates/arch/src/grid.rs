//! The 2D grid of logical surface-code patches.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cell coordinate on the logical grid (row-major; `row` grows downward).
///
/// Coordinates are signed so that neighbour arithmetic at the boundary never
/// wraps; [`Grid::in_bounds`] rejects negatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Row index (grows downward).
    pub row: i32,
    /// Column index (grows rightward).
    pub col: i32,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(row: i32, col: i32) -> Self {
        Self { row, col }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// The four edge-adjacent neighbours (N, S, W, E).
    pub fn neighbours(self) -> [Coord; 4] {
        [
            Coord::new(self.row - 1, self.col),
            Coord::new(self.row + 1, self.col),
            Coord::new(self.row, self.col - 1),
            Coord::new(self.row, self.col + 1),
        ]
    }

    /// The four diagonal neighbours.
    pub fn diagonals(self) -> [Coord; 4] {
        [
            Coord::new(self.row - 1, self.col - 1),
            Coord::new(self.row - 1, self.col + 1),
            Coord::new(self.row + 1, self.col - 1),
            Coord::new(self.row + 1, self.col + 1),
        ]
    }

    /// Whether `other` is edge-adjacent.
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }

    /// Whether `other` is vertically adjacent (same column, row ± 1) — the
    /// relation required for `M_ZZ` merges.
    pub fn is_vertical_neighbour(self, other: Coord) -> bool {
        self.col == other.col && self.row.abs_diff(other.row) == 1
    }

    /// Whether `other` is horizontally adjacent (same row, column ± 1) — the
    /// relation required for `M_XX` merges.
    pub fn is_horizontal_neighbour(self, other: Coord) -> bool {
        self.row == other.row && self.col.abs_diff(other.col) == 1
    }

    /// Whether `other` is diagonally adjacent (the CNOT configuration).
    pub fn is_diagonal(self, other: Coord) -> bool {
        self.row.abs_diff(other.row) == 1 && self.col.abs_diff(other.col) == 1
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// Role of a grid cell in the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Holds a program data qubit in the initial mapping.
    Data,
    /// Bus qubit: routing path and operational ancilla (grey in Fig 3).
    Bus,
}

/// A rectangular grid of logical patches with per-cell kinds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    rows: u32,
    cols: u32,
    kinds: Vec<CellKind>,
}

impl Grid {
    /// Creates a grid with every cell set to `fill`.
    pub fn filled(rows: u32, cols: u32, fill: CellKind) -> Self {
        Self {
            rows,
            cols,
            kinds: vec![fill; (rows * cols) as usize],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Total number of cells (logical patches, excluding factories).
    pub fn num_cells(&self) -> u32 {
        self.rows * self.cols
    }

    /// Whether `c` lies on the grid.
    pub fn in_bounds(&self, c: Coord) -> bool {
        c.row >= 0 && c.col >= 0 && (c.row as u32) < self.rows && (c.col as u32) < self.cols
    }

    fn index(&self, c: Coord) -> usize {
        debug_assert!(self.in_bounds(c), "coordinate {c} out of bounds");
        c.row as usize * self.cols as usize + c.col as usize
    }

    /// The kind of cell at `c`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `c` is out of bounds.
    pub fn kind(&self, c: Coord) -> CellKind {
        self.kinds[self.index(c)]
    }

    /// Sets the kind of cell at `c`.
    pub fn set_kind(&mut self, c: Coord, kind: CellKind) {
        let i = self.index(c);
        self.kinds[i] = kind;
    }

    /// Iterates over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let cols = self.cols as i32;
        (0..self.rows as i32).flat_map(move |r| (0..cols).map(move |c| Coord::new(r, c)))
    }

    /// Count of cells with the given kind.
    pub fn count_kind(&self, kind: CellKind) -> u32 {
        self.kinds.iter().filter(|&&k| k == kind).count() as u32
    }

    /// In-bounds edge neighbours of `c`.
    pub fn neighbours_in(&self, c: Coord) -> impl Iterator<Item = Coord> + '_ {
        c.neighbours().into_iter().filter(|&n| self.in_bounds(n))
    }

    /// Coordinates on the outer boundary (row 0, last row, col 0, last col),
    /// clockwise from the top-left.
    pub fn boundary(&self) -> Vec<Coord> {
        let (rows, cols) = (self.rows as i32, self.cols as i32);
        let mut out = Vec::new();
        if rows == 0 || cols == 0 {
            return out;
        }
        for c in 0..cols {
            out.push(Coord::new(0, c));
        }
        for r in 1..rows {
            out.push(Coord::new(r, cols - 1));
        }
        if rows > 1 {
            for c in (0..cols - 1).rev() {
                out.push(Coord::new(rows - 1, c));
            }
        }
        if cols > 1 {
            for r in (1..rows - 1).rev() {
                out.push(Coord::new(r, 0));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_distances() {
        let a = Coord::new(2, 1);
        let b = Coord::new(5, 3);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn adjacency_relations() {
        let c = Coord::new(3, 3);
        assert!(c.is_adjacent(Coord::new(2, 3)));
        assert!(!c.is_adjacent(Coord::new(2, 2)));
        assert!(c.is_vertical_neighbour(Coord::new(4, 3)));
        assert!(!c.is_vertical_neighbour(Coord::new(3, 4)));
        assert!(c.is_horizontal_neighbour(Coord::new(3, 2)));
        assert!(!c.is_horizontal_neighbour(Coord::new(4, 3)));
        assert!(c.is_diagonal(Coord::new(4, 4)));
        assert!(c.is_diagonal(Coord::new(2, 2)));
        assert!(!c.is_diagonal(Coord::new(3, 4)));
    }

    #[test]
    fn neighbours_and_diagonals() {
        let c = Coord::new(0, 0);
        assert_eq!(c.neighbours().len(), 4);
        assert_eq!(c.diagonals().len(), 4);
        assert!(c.neighbours().contains(&Coord::new(-1, 0)));
    }

    #[test]
    fn grid_bounds_and_kinds() {
        let mut g = Grid::filled(3, 4, CellKind::Bus);
        assert!(g.in_bounds(Coord::new(0, 0)));
        assert!(g.in_bounds(Coord::new(2, 3)));
        assert!(!g.in_bounds(Coord::new(3, 0)));
        assert!(!g.in_bounds(Coord::new(0, -1)));
        g.set_kind(Coord::new(1, 1), CellKind::Data);
        assert_eq!(g.kind(Coord::new(1, 1)), CellKind::Data);
        assert_eq!(g.count_kind(CellKind::Data), 1);
        assert_eq!(g.count_kind(CellKind::Bus), 11);
    }

    #[test]
    fn coords_row_major() {
        let g = Grid::filled(2, 2, CellKind::Bus);
        let all: Vec<_> = g.coords().collect();
        assert_eq!(
            all,
            vec![
                Coord::new(0, 0),
                Coord::new(0, 1),
                Coord::new(1, 0),
                Coord::new(1, 1)
            ]
        );
    }

    #[test]
    fn neighbours_in_clips_boundary() {
        let g = Grid::filled(2, 2, CellKind::Bus);
        let n: Vec<_> = g.neighbours_in(Coord::new(0, 0)).collect();
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn boundary_walk_covers_perimeter_once() {
        let g = Grid::filled(3, 4, CellKind::Bus);
        let b = g.boundary();
        // 2*(3+4) - 4 = 10 perimeter cells.
        assert_eq!(b.len(), 10);
        let mut dedup = b.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "no duplicates on the boundary walk");
    }

    #[test]
    fn boundary_of_single_row() {
        let g = Grid::filled(1, 5, CellKind::Bus);
        assert_eq!(g.boundary().len(), 5);
    }
}
