//! The lattice-surgery instruction set and its placement constraints.
//!
//! Paper Fig 7: each logical operation has a fixed latency (a multiple of
//! the code distance) and a geometric precondition. Because patch rotations
//! are not used, `M_ZZ` merges may only occur *vertically* (Z syndromes on
//! top/bottom edges) and `M_XX` merges *horizontally* (X syndromes on
//! left/right edges) — §VI.A "Placement constraints".
//!
//! The CNOT configuration follows Fig 2(d)/Fig 7(b): control and target sit
//! diagonally with the ancilla in the cell that is a vertical neighbour of
//! the control (for the `M_ZZ`) and a horizontal neighbour of the target
//! (for the `M_XX`).

use crate::grid::Coord;
use crate::timing::{Ticks, TimingModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Single-patch gates that borrow one neighbouring ancilla cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SingleQubitKind {
    /// Hadamard — 3d.
    H,
    /// S — 1.5d.
    S,
    /// S† — 1.5d.
    Sdg,
    /// √X — 1.5d.
    Sx,
    /// √X† — 1.5d.
    Sxdg,
}

impl SingleQubitKind {
    /// Latency of this gate under `t`.
    pub fn duration(self, t: &TimingModel) -> Ticks {
        match self {
            SingleQubitKind::H => t.hadamard,
            _ => t.phase,
        }
    }

    /// Mnemonic for reports.
    pub fn name(self) -> &'static str {
        match self {
            SingleQubitKind::H => "h",
            SingleQubitKind::S => "s",
            SingleQubitKind::Sdg => "sdg",
            SingleQubitKind::Sx => "sx",
            SingleQubitKind::Sxdg => "sxdg",
        }
    }
}

/// One scheduled lattice-surgery operation on the grid.
///
/// `cells()` lists every grid cell the operation occupies for its duration;
/// the scheduler serialises operations that share cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SurgeryOp {
    /// Move a patch one cell (1d). `from` and `to` must be edge-adjacent.
    Move {
        /// Source cell.
        from: Coord,
        /// Destination cell (must be free).
        to: Coord,
    },
    /// Route a magic state from a factory port along a corridor of bus
    /// cells to the delivery cell (`path.last()`); implemented as one long
    /// merge, occupying the whole corridor for 1d.
    DeliverMagic {
        /// Corridor from the factory port (first) to the delivery cell (last).
        path: Vec<Coord>,
    },
    /// Joint `M_ZZ` measurement of two vertically adjacent patches (1d).
    MergeZz {
        /// Upper or lower patch.
        a: Coord,
        /// The other patch (vertical neighbour of `a`).
        b: Coord,
    },
    /// Joint `M_XX` measurement of two horizontally adjacent patches (1d).
    MergeXx {
        /// Left or right patch.
        a: Coord,
        /// The other patch (horizontal neighbour of `a`).
        b: Coord,
    },
    /// CNOT via two merges through an ancilla (2d).
    Cnot {
        /// Control patch.
        control: Coord,
        /// Target patch (diagonal neighbour of `control`).
        target: Coord,
        /// Ancilla cell between them.
        ancilla: Coord,
    },
    /// Single-patch Clifford using one neighbouring ancilla.
    Single {
        /// Which gate.
        kind: SingleQubitKind,
        /// The data patch.
        cell: Coord,
        /// The borrowed ancilla (edge neighbour of `cell`).
        ancilla: Coord,
    },
    /// Consume a delivered magic state: `M_ZZ` with the magic patch plus the
    /// S correction (2.5d total).
    ConsumeMagic {
        /// The data patch receiving the T/Rz gate.
        target: Coord,
        /// Cell holding the delivered magic state (vertical neighbour).
        magic: Coord,
    },
    /// Z-basis measurement of a patch (1d).
    MeasureZ {
        /// The measured patch.
        cell: Coord,
    },
    /// Pauli frame update — free, kept in the schedule for accounting.
    PauliFrame {
        /// The patch whose frame is updated.
        cell: Coord,
    },
}

impl SurgeryOp {
    /// Latency under timing model `t`.
    pub fn duration(&self, t: &TimingModel) -> Ticks {
        match self {
            SurgeryOp::Move { .. } => t.move_op,
            SurgeryOp::DeliverMagic { .. } => t.move_op,
            SurgeryOp::MergeZz { .. } | SurgeryOp::MergeXx { .. } => t.merge,
            SurgeryOp::Cnot { .. } => t.cnot,
            SurgeryOp::Single { kind, .. } => kind.duration(t),
            SurgeryOp::ConsumeMagic { .. } => t.t_consume,
            SurgeryOp::MeasureZ { .. } => t.measure,
            SurgeryOp::PauliFrame { .. } => Ticks::ZERO,
        }
    }

    /// Latency under the paper's *unit cost* accounting: 1d per operation
    /// (Pauli frame updates stay free).
    pub fn unit_duration(&self, t: &TimingModel) -> Ticks {
        match self {
            SurgeryOp::PauliFrame { .. } => Ticks::ZERO,
            _ => t.unit,
        }
    }

    /// Every grid cell the operation occupies while it runs.
    pub fn cells(&self) -> Vec<Coord> {
        let mut cells = Vec::with_capacity(3);
        self.for_each_cell(|c| cells.push(c));
        cells
    }

    /// Calls `f` with every cell the operation occupies —
    /// [`cells`](Self::cells) without the allocation, for call sites that
    /// scan whole op sequences (the schedule verifier runs on every
    /// interactive differential recompile).
    pub fn for_each_cell(&self, mut f: impl FnMut(Coord)) {
        match self {
            SurgeryOp::Move { from, to } => {
                f(*from);
                f(*to);
            }
            SurgeryOp::DeliverMagic { path } => {
                for &c in path {
                    f(c);
                }
            }
            SurgeryOp::MergeZz { a, b } | SurgeryOp::MergeXx { a, b } => {
                f(*a);
                f(*b);
            }
            SurgeryOp::Cnot {
                control,
                target,
                ancilla,
            } => {
                f(*control);
                f(*target);
                f(*ancilla);
            }
            SurgeryOp::Single { cell, ancilla, .. } => {
                f(*cell);
                f(*ancilla);
            }
            SurgeryOp::ConsumeMagic { target, magic } => {
                f(*target);
                f(*magic);
            }
            SurgeryOp::MeasureZ { cell } | SurgeryOp::PauliFrame { cell } => f(*cell),
        }
    }

    /// Whether this operation is a patch movement (move or delivery) rather
    /// than a logical gate — used by the redundant-move pass and by the
    /// movement-overhead statistics.
    pub fn is_movement(&self) -> bool {
        matches!(
            self,
            SurgeryOp::Move { .. } | SurgeryOp::DeliverMagic { .. }
        )
    }

    /// Validates the placement constraints of Fig 7 / §VI.A.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SurgeryOp::Move { from, to } => {
                if !from.is_adjacent(*to) {
                    return Err(format!("move {from}->{to} must be edge-adjacent"));
                }
            }
            SurgeryOp::DeliverMagic { path } => {
                if path.len() < 2 {
                    return Err("magic delivery path needs at least two cells".into());
                }
                for w in path.windows(2) {
                    if !w[0].is_adjacent(w[1]) {
                        return Err(format!(
                            "magic delivery path breaks contiguity at {}->{}",
                            w[0], w[1]
                        ));
                    }
                }
            }
            SurgeryOp::MergeZz { a, b } => {
                if !a.is_vertical_neighbour(*b) {
                    return Err(format!(
                        "M_ZZ {a}-{b} must be vertical (Z edges are top/bottom)"
                    ));
                }
            }
            SurgeryOp::MergeXx { a, b } => {
                if !a.is_horizontal_neighbour(*b) {
                    return Err(format!(
                        "M_XX {a}-{b} must be horizontal (X edges are left/right)"
                    ));
                }
            }
            SurgeryOp::Cnot {
                control,
                target,
                ancilla,
            } => {
                if !control.is_diagonal(*target) {
                    return Err(format!(
                        "CNOT control {control} and target {target} must be diagonal"
                    ));
                }
                if !ancilla.is_vertical_neighbour(*control) {
                    return Err(format!(
                        "CNOT ancilla {ancilla} must be a vertical neighbour of control {control}"
                    ));
                }
                if !ancilla.is_horizontal_neighbour(*target) {
                    return Err(format!(
                        "CNOT ancilla {ancilla} must be a horizontal neighbour of target {target}"
                    ));
                }
            }
            SurgeryOp::Single { cell, ancilla, .. } => {
                if !cell.is_adjacent(*ancilla) {
                    return Err(format!("ancilla {ancilla} must neighbour the patch {cell}"));
                }
            }
            SurgeryOp::ConsumeMagic { target, magic } => {
                if !magic.is_vertical_neighbour(*target) {
                    return Err(format!(
                        "magic state {magic} must be a vertical neighbour of target {target} (M_ZZ)"
                    ));
                }
            }
            SurgeryOp::MeasureZ { .. } | SurgeryOp::PauliFrame { .. } => {}
        }
        Ok(())
    }
}

impl fmt::Display for SurgeryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurgeryOp::Move { from, to } => write!(f, "move {from} -> {to}"),
            SurgeryOp::DeliverMagic { path } => write!(
                f,
                "deliver-magic {} -> {} (|path|={})",
                path.first().copied().unwrap_or(Coord::new(-1, -1)),
                path.last().copied().unwrap_or(Coord::new(-1, -1)),
                path.len()
            ),
            SurgeryOp::MergeZz { a, b } => write!(f, "mzz {a} {b}"),
            SurgeryOp::MergeXx { a, b } => write!(f, "mxx {a} {b}"),
            SurgeryOp::Cnot {
                control,
                target,
                ancilla,
            } => write!(f, "cnot c={control} t={target} a={ancilla}"),
            SurgeryOp::Single {
                kind,
                cell,
                ancilla,
            } => {
                write!(f, "{} {} (ancilla {})", kind.name(), cell, ancilla)
            }
            SurgeryOp::ConsumeMagic { target, magic } => {
                write!(f, "consume-magic t={target} m={magic}")
            }
            SurgeryOp::MeasureZ { cell } => write!(f, "measure {cell}"),
            SurgeryOp::PauliFrame { cell } => write!(f, "pauli-frame {cell}"),
        }
    }
}

/// The ancilla cell required for a CNOT between a diagonal control/target
/// pair, or `None` if the pair is not diagonal.
///
/// The cell shares the control's column (vertical `M_ZZ` with the control's
/// Z edge) and the target's row (horizontal `M_XX` with the target's X
/// edge).
///
/// # Example
///
/// ```
/// use ftqc_arch::{cnot_ancilla, Coord};
///
/// let c = Coord::new(1, 1);
/// let t = Coord::new(2, 2);
/// assert_eq!(cnot_ancilla(c, t), Some(Coord::new(2, 1)));
/// assert_eq!(cnot_ancilla(c, Coord::new(1, 2)), None);
/// ```
pub fn cnot_ancilla(control: Coord, target: Coord) -> Option<Coord> {
    if control.is_diagonal(target) {
        Some(Coord::new(target.row, control.col))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingModel {
        TimingModel::paper()
    }

    #[test]
    fn durations_match_fig7() {
        let tm = t();
        let mv = SurgeryOp::Move {
            from: Coord::new(0, 0),
            to: Coord::new(0, 1),
        };
        assert_eq!(mv.duration(&tm).as_d(), 1.0);
        let cnot = SurgeryOp::Cnot {
            control: Coord::new(0, 0),
            target: Coord::new(1, 1),
            ancilla: Coord::new(1, 0),
        };
        assert_eq!(cnot.duration(&tm).as_d(), 2.0);
        let h = SurgeryOp::Single {
            kind: SingleQubitKind::H,
            cell: Coord::new(0, 0),
            ancilla: Coord::new(0, 1),
        };
        assert_eq!(h.duration(&tm).as_d(), 3.0);
        let s = SurgeryOp::Single {
            kind: SingleQubitKind::S,
            cell: Coord::new(0, 0),
            ancilla: Coord::new(0, 1),
        };
        assert_eq!(s.duration(&tm).as_d(), 1.5);
        let consume = SurgeryOp::ConsumeMagic {
            target: Coord::new(1, 0),
            magic: Coord::new(0, 0),
        };
        assert_eq!(consume.duration(&tm).as_d(), 2.5);
        let frame = SurgeryOp::PauliFrame {
            cell: Coord::new(0, 0),
        };
        assert_eq!(frame.duration(&tm), Ticks::ZERO);
    }

    #[test]
    fn unit_durations_are_one_d() {
        let tm = t();
        let h = SurgeryOp::Single {
            kind: SingleQubitKind::H,
            cell: Coord::new(0, 0),
            ancilla: Coord::new(0, 1),
        };
        assert_eq!(h.unit_duration(&tm).as_d(), 1.0);
        let frame = SurgeryOp::PauliFrame {
            cell: Coord::new(0, 0),
        };
        assert_eq!(frame.unit_duration(&tm), Ticks::ZERO);
    }

    #[test]
    fn cnot_ancilla_geometry() {
        // All four diagonal orientations.
        let c = Coord::new(2, 2);
        for (t_cell, expect) in [
            (Coord::new(1, 1), Coord::new(1, 2)),
            (Coord::new(1, 3), Coord::new(1, 2)),
            (Coord::new(3, 1), Coord::new(3, 2)),
            (Coord::new(3, 3), Coord::new(3, 2)),
        ] {
            let a = cnot_ancilla(c, t_cell).expect("diagonal");
            assert_eq!(a, expect);
            let op = SurgeryOp::Cnot {
                control: c,
                target: t_cell,
                ancilla: a,
            };
            op.validate()
                .expect("generated CNOT configuration is valid");
        }
    }

    #[test]
    fn merge_orientation_enforced() {
        let vertical = SurgeryOp::MergeZz {
            a: Coord::new(0, 0),
            b: Coord::new(1, 0),
        };
        vertical.validate().expect("vertical M_ZZ is legal");
        let horizontal = SurgeryOp::MergeZz {
            a: Coord::new(0, 0),
            b: Coord::new(0, 1),
        };
        assert!(
            horizontal.validate().is_err(),
            "horizontal M_ZZ must be rejected"
        );

        let mxx_ok = SurgeryOp::MergeXx {
            a: Coord::new(0, 0),
            b: Coord::new(0, 1),
        };
        mxx_ok.validate().expect("horizontal M_XX is legal");
        let mxx_bad = SurgeryOp::MergeXx {
            a: Coord::new(0, 0),
            b: Coord::new(1, 0),
        };
        assert!(mxx_bad.validate().is_err());
    }

    #[test]
    fn consume_magic_requires_vertical_adjacency() {
        let ok = SurgeryOp::ConsumeMagic {
            target: Coord::new(2, 2),
            magic: Coord::new(1, 2),
        };
        ok.validate().expect("vertical magic delivery is legal");
        let bad = SurgeryOp::ConsumeMagic {
            target: Coord::new(2, 2),
            magic: Coord::new(2, 1),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn move_requires_adjacency() {
        let ok = SurgeryOp::Move {
            from: Coord::new(0, 0),
            to: Coord::new(1, 0),
        };
        ok.validate().expect("adjacent move");
        let bad = SurgeryOp::Move {
            from: Coord::new(0, 0),
            to: Coord::new(2, 0),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn delivery_path_contiguity() {
        let ok = SurgeryOp::DeliverMagic {
            path: vec![Coord::new(0, 0), Coord::new(0, 1), Coord::new(1, 1)],
        };
        ok.validate().expect("contiguous path");
        let bad = SurgeryOp::DeliverMagic {
            path: vec![Coord::new(0, 0), Coord::new(1, 1)],
        };
        assert!(bad.validate().is_err());
        let too_short = SurgeryOp::DeliverMagic {
            path: vec![Coord::new(0, 0)],
        };
        assert!(too_short.validate().is_err());
    }

    #[test]
    fn cells_cover_occupied_area() {
        let cnot = SurgeryOp::Cnot {
            control: Coord::new(0, 0),
            target: Coord::new(1, 1),
            ancilla: Coord::new(1, 0),
        };
        assert_eq!(cnot.cells().len(), 3);
        let path = vec![Coord::new(0, 0), Coord::new(0, 1), Coord::new(0, 2)];
        let deliver = SurgeryOp::DeliverMagic { path: path.clone() };
        assert_eq!(deliver.cells(), path);
        assert!(deliver.is_movement());
        assert!(!cnot.is_movement());
    }
}
