//! ASCII rendering of layouts and occupancy snapshots (debugging aid and
//! example output).

use crate::grid::{CellKind, Coord};
use crate::layout::Layout;

/// Renders a layout: `D` for data home cells, `.` for bus cells.
///
/// # Example
///
/// ```
/// use ftqc_arch::{render_layout, Layout};
///
/// let l = Layout::with_routing_paths(4, 4);
/// let art = render_layout(&l);
/// assert!(art.contains('D'));
/// assert!(art.contains('.'));
/// ```
pub fn render_layout(layout: &Layout) -> String {
    render_with(layout, |c| match layout.grid().kind(c) {
        CellKind::Data => 'D',
        CellKind::Bus => '.',
    })
}

/// Renders the grid with a custom glyph per cell (e.g. occupancy snapshots
/// from the compiler).
pub fn render_with(layout: &Layout, mut glyph: impl FnMut(Coord) -> char) -> String {
    let g = layout.grid();
    let mut out = String::with_capacity((g.num_cells() * 2 + g.rows()) as usize);
    for r in 0..g.rows() as i32 {
        for c in 0..g.cols() as i32 {
            out.push(glyph(Coord::new(r, c)));
            if c + 1 < g.cols() as i32 {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_one_line_per_row() {
        let l = Layout::with_routing_paths(16, 4);
        let art = render_layout(&l);
        assert_eq!(art.lines().count(), l.grid().rows() as usize);
        assert_eq!(art.matches('D').count(), 16);
    }

    #[test]
    fn custom_glyphs() {
        let l = Layout::with_routing_paths(4, 2);
        let art = render_with(&l, |_| '#');
        assert!(art.chars().all(|c| c == '#' || c == ' ' || c == '\n'));
    }
}
