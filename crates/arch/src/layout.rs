//! The routing-path-parameterised layout family of paper Fig 3.
//!
//! A layout hosts an `L×L` block of data qubits (`L = ⌈√n⌉`) and `r` full
//! rows/columns of bus qubits. Bus lines are added in a fixed order: top
//! edge, left edge, bottom edge, right edge, then interior columns and rows
//! alternately (interior positions chosen middle-out so the data block is
//! split evenly). The legal range is `r ∈ [2, 2L+2]`.
//!
//! Reference points from the paper (§VII.C, 10×10 data): `r=2` → 11×11 =
//! 121 cells, `r=4` → 12×12 = 144, `r=6` → 13×13 = 169, `r=22` → 21×21.

use crate::grid::{CellKind, Coord, Grid};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error constructing a [`Layout`].
///
/// Every routing-path message quotes the legal range `2..=2L+2` for the
/// data block at hand, so a caller sweeping `r` can see the bound without
/// recomputing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// The layout needs at least one data qubit.
    NoDataQubits,
    /// Fewer than 2 routing paths cannot host lattice surgery operations.
    TooFewRoutingPaths {
        /// The requested number of routing paths.
        requested: u32,
        /// The maximum for this data block (`2L+2`).
        max: u32,
    },
    /// More than `2L+2` bus lines do not fit the `L×L` data block.
    TooManyRoutingPaths {
        /// The requested number of routing paths.
        requested: u32,
        /// The maximum for this data block (`2L+2`).
        max: u32,
    },
    /// An explicit bus-line gap position lies outside the data block.
    BusLineOutOfRange {
        /// The offending gap position.
        line: i32,
        /// The largest legal gap (`L-1`; the smallest is always `-1`).
        max: i32,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NoDataQubits => write!(f, "layout requires at least one data qubit"),
            LayoutError::TooFewRoutingPaths { requested, max } => {
                write!(
                    f,
                    "routing paths must be in 2..={max} for this data block (got {requested})"
                )
            }
            LayoutError::TooManyRoutingPaths { requested, max } => {
                write!(
                    f,
                    "routing paths must be in 2..={max} for this data block (got {requested})"
                )
            }
            LayoutError::BusLineOutOfRange { line, max } => {
                write!(
                    f,
                    "bus line gap {line} is outside the data block (legal gaps are -1..={max})"
                )
            }
        }
    }
}

impl Error for LayoutError {}

/// A gap position where a bus line can be inserted: `-1` is before data
/// line 0 (top/left edge), `k ∈ [0, L-1)` is between data lines `k` and
/// `k+1`, and `L-1` is after the last data line (bottom/right edge).
type Gap = i32;

/// A concrete qubit layout: grid geometry plus the home cell of every data
/// slot.
///
/// # Example
///
/// ```
/// use ftqc_arch::{CellKind, Layout};
///
/// let layout = Layout::with_routing_paths(16, 4);
/// // 4x4 data block ringed by four bus edges: 6x6 grid.
/// assert_eq!(layout.grid().rows(), 6);
/// assert_eq!(layout.grid().cols(), 6);
/// assert_eq!(layout.grid().count_kind(CellKind::Data), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    grid: Grid,
    data_cells: Vec<Coord>,
    routing_paths: u32,
    data_side: u32,
}

impl Layout {
    /// Builds a layout for `n_data` qubits and `r` routing paths.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are invalid; see
    /// [`Layout::try_with_routing_paths`] for the fallible form.
    pub fn with_routing_paths(n_data: u32, r: u32) -> Self {
        Self::try_with_routing_paths(n_data, r).expect("invalid layout parameters")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] when `n_data == 0`, `r < 2`, or `r > 2L+2`.
    pub fn try_with_routing_paths(n_data: u32, r: u32) -> Result<Self, LayoutError> {
        if n_data == 0 {
            return Err(LayoutError::NoDataQubits);
        }
        let side = (n_data as f64).sqrt().ceil() as u32;
        let max_r = Self::max_routing_paths_for_side(side);
        if r < 2 {
            return Err(LayoutError::TooFewRoutingPaths {
                requested: r,
                max: max_r,
            });
        }
        if r > max_r {
            return Err(LayoutError::TooManyRoutingPaths {
                requested: r,
                max: max_r,
            });
        }

        let (row_gaps, col_gaps) = bus_line_plan(side, r);
        Ok(Self::assemble(side, n_data, &row_gaps, &col_gaps, r))
    }

    /// Builds a layout from an explicit bus mask: the exact gap positions
    /// of every bus row and column (`-1` = before data line 0, `k ∈
    /// [0, L-1]` = after data line `k`). Duplicate gaps collapse; the
    /// resulting line count is the layout's `routing_paths()`.
    ///
    /// This is the constructor behind `BusSpec::Explicit` targets —
    /// irregular machines (one-sided buses, heavy-hex-style provisioning)
    /// that the middle-out family of [`Layout::try_with_routing_paths`]
    /// cannot describe.
    ///
    /// # Errors
    ///
    /// [`LayoutError::NoDataQubits`] for an empty register,
    /// [`LayoutError::BusLineOutOfRange`] for a gap outside `-1..=L-1`,
    /// and [`LayoutError::TooFewRoutingPaths`] when fewer than 2 distinct
    /// lines are given (lattice surgery needs bus on two sides).
    pub fn try_with_bus_lines(
        n_data: u32,
        row_gaps: &[i32],
        col_gaps: &[i32],
    ) -> Result<Self, LayoutError> {
        if n_data == 0 {
            return Err(LayoutError::NoDataQubits);
        }
        let side = (n_data as f64).sqrt().ceil() as u32;
        let max_gap = side as i32 - 1;
        let mut rows: Vec<Gap> = Vec::with_capacity(row_gaps.len());
        let mut cols: Vec<Gap> = Vec::with_capacity(col_gaps.len());
        for (gaps, out) in [(row_gaps, &mut rows), (col_gaps, &mut cols)] {
            for &g in gaps {
                if !(-1..=max_gap).contains(&g) {
                    return Err(LayoutError::BusLineOutOfRange {
                        line: g,
                        max: max_gap,
                    });
                }
                out.push(g);
            }
            out.sort_unstable();
            out.dedup();
        }
        let r = (rows.len() + cols.len()) as u32;
        if r < 2 {
            return Err(LayoutError::TooFewRoutingPaths {
                requested: r,
                max: Self::max_routing_paths_for_side(side),
            });
        }
        Ok(Self::assemble(side, n_data, &rows, &cols, r))
    }

    /// Materialises the grid from sorted, deduplicated gap lists — the
    /// shared back half of both constructors.
    fn assemble(side: u32, n_data: u32, row_gaps: &[Gap], col_gaps: &[Gap], r: u32) -> Self {
        let rows = side + row_gaps.len() as u32;
        let cols = side + col_gaps.len() as u32;
        let mut grid = Grid::filled(rows, cols, CellKind::Bus);

        // grid index of data line `i` = i + number of gaps strictly before it.
        let grid_row = |i: u32| -> i32 {
            i as i32 + row_gaps.iter().filter(|&&g| g < i as Gap).count() as i32
        };
        let grid_col = |j: u32| -> i32 {
            j as i32 + col_gaps.iter().filter(|&&g| g < j as Gap).count() as i32
        };

        let mut data_cells = Vec::with_capacity(n_data as usize);
        for i in 0..n_data {
            let (dr, dc) = (i / side, i % side);
            let c = Coord::new(grid_row(dr), grid_col(dc));
            grid.set_kind(c, CellKind::Data);
            data_cells.push(c);
        }

        Self {
            grid,
            data_cells,
            routing_paths: r,
            data_side: side,
        }
    }

    /// The maximum routing paths (`2L+2`) for `n_data` data qubits.
    pub fn max_routing_paths(n_data: u32) -> u32 {
        let side = (n_data.max(1) as f64).sqrt().ceil() as u32;
        Self::max_routing_paths_for_side(side)
    }

    fn max_routing_paths_for_side(side: u32) -> u32 {
        2 * side + 2
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Home cell of each data slot (slot `i` hosts program qubit `i` under
    /// the identity mapping; `ftqc-compiler` may permute this).
    pub fn data_cells(&self) -> &[Coord] {
        &self.data_cells
    }

    /// Number of routing paths `r`.
    pub fn routing_paths(&self) -> u32 {
        self.routing_paths
    }

    /// Side length `L` of the data block.
    pub fn data_side(&self) -> u32 {
        self.data_side
    }

    /// Total logical patches on the grid (excludes factory tiles).
    pub fn total_patches(&self) -> u32 {
        self.grid.num_cells()
    }

    /// Number of bus (ancilla/routing) cells.
    pub fn bus_patches(&self) -> u32 {
        self.grid.count_kind(CellKind::Bus)
    }

    /// Data-to-ancilla ratio (`data / bus`), the resource-efficiency figure
    /// the paper quotes (≈2:1 at r=3..4 versus 1:2–1:3 in prior work).
    pub fn data_to_ancilla_ratio(&self) -> f64 {
        self.data_cells.len() as f64 / self.bus_patches().max(1) as f64
    }

    /// Bus cells on the grid boundary, in clockwise order — the docking
    /// sites for magic-state factory output ports.
    pub fn boundary_bus_cells(&self) -> Vec<Coord> {
        self.grid
            .boundary()
            .into_iter()
            .filter(|&c| self.grid.kind(c) == CellKind::Bus)
            .collect()
    }
}

/// Chooses which bus lines (`row_gaps`, `col_gaps`) implement `r` routing
/// paths. Insertion order: top, left, bottom, right, then interior columns
/// and rows alternately, middle-out.
fn bus_line_plan(side: u32, r: u32) -> (Vec<Gap>, Vec<Gap>) {
    let mut order: Vec<(bool, Gap)> = vec![
        (true, -1),               // top edge
        (false, -1),              // left edge
        (true, side as Gap - 1),  // bottom edge
        (false, side as Gap - 1), // right edge
    ];
    let interior = middle_out_order(side.saturating_sub(1));
    for &g in &interior {
        order.push((false, g)); // interior column
        order.push((true, g)); // interior row
    }
    let mut row_gaps = Vec::new();
    let mut col_gaps = Vec::new();
    for &(is_row, gap) in order.iter().take(r as usize) {
        if is_row {
            row_gaps.push(gap);
        } else {
            col_gaps.push(gap);
        }
    }
    row_gaps.sort_unstable();
    col_gaps.sort_unstable();
    (row_gaps, col_gaps)
}

/// Breadth-first bisection order of `0..m`: the middle gap first, then the
/// middles of the halves, and so on. Splits the data block evenly at every
/// routing-path count.
fn middle_out_order(m: u32) -> Vec<Gap> {
    let mut out = Vec::with_capacity(m as usize);
    if m == 0 {
        return out;
    }
    let mut queue: VecDeque<(i64, i64)> = VecDeque::new();
    queue.push_back((0, m as i64 - 1));
    while let Some((lo, hi)) = queue.pop_front() {
        if lo > hi {
            continue;
        }
        let mid = (lo + hi) / 2;
        out.push(mid as Gap);
        queue.push_back((lo, mid - 1));
        queue.push_back((mid + 1, hi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_sizes_10x10() {
        // §VII.C quotes 144–169 qubits for r = 4..6 on 10x10.
        assert_eq!(Layout::with_routing_paths(100, 2).total_patches(), 121);
        assert_eq!(Layout::with_routing_paths(100, 3).total_patches(), 132);
        assert_eq!(Layout::with_routing_paths(100, 4).total_patches(), 144);
        assert_eq!(Layout::with_routing_paths(100, 5).total_patches(), 156);
        assert_eq!(Layout::with_routing_paths(100, 6).total_patches(), 169);
        assert_eq!(Layout::with_routing_paths(100, 22).total_patches(), 441);
    }

    #[test]
    fn max_routing_paths_is_2l_plus_2() {
        assert_eq!(Layout::max_routing_paths(100), 22);
        assert_eq!(Layout::max_routing_paths(16), 10);
        assert_eq!(Layout::max_routing_paths(4), 6);
        assert_eq!(Layout::max_routing_paths(1), 4);
    }

    #[test]
    fn data_to_ancilla_ratio_matches_paper_claims() {
        // r=3 on 10x10: ~3:1 data to ancilla; r=4: ~2.3:1.
        let r3 = Layout::with_routing_paths(100, 3);
        assert!((r3.data_to_ancilla_ratio() - 100.0 / 32.0).abs() < 1e-9);
        let r4 = Layout::with_routing_paths(100, 4);
        assert!(r4.data_to_ancilla_ratio() > 2.0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert_eq!(
            Layout::try_with_routing_paths(0, 4).unwrap_err(),
            LayoutError::NoDataQubits
        );
        assert_eq!(
            Layout::try_with_routing_paths(16, 1).unwrap_err(),
            LayoutError::TooFewRoutingPaths {
                requested: 1,
                max: 10
            }
        );
        assert_eq!(
            Layout::try_with_routing_paths(16, 11).unwrap_err(),
            LayoutError::TooManyRoutingPaths {
                requested: 11,
                max: 10
            }
        );
    }

    #[test]
    fn error_messages_quote_the_legal_range() {
        // Every routing-path error names the 2..=2L+2 bound.
        let few = Layout::try_with_routing_paths(16, 1).unwrap_err();
        assert!(few.to_string().contains("2..=10"), "got {few}");
        let many = Layout::try_with_routing_paths(16, 11).unwrap_err();
        assert!(many.to_string().contains("2..=10"), "got {many}");
        let oob = Layout::try_with_bus_lines(16, &[7], &[-1]).unwrap_err();
        assert_eq!(oob, LayoutError::BusLineOutOfRange { line: 7, max: 3 });
        assert!(oob.to_string().contains("-1..=3"), "got {oob}");
    }

    #[test]
    fn explicit_bus_lines_match_the_family() {
        // The r=4 family rings the block: the same gaps given explicitly
        // must reproduce the grid exactly.
        let family = Layout::with_routing_paths(16, 4);
        let explicit = Layout::try_with_bus_lines(16, &[-1, 3], &[-1, 3]).unwrap();
        assert_eq!(explicit, family);
    }

    #[test]
    fn explicit_bus_lines_irregular_masks() {
        // A one-sided machine: buses only above and left of the block.
        let l = Layout::try_with_bus_lines(16, &[-1], &[-1, 1]).unwrap();
        assert_eq!(l.routing_paths(), 3);
        assert_eq!(l.grid().rows(), 5);
        assert_eq!(l.grid().cols(), 6);
        assert_eq!(l.grid().count_kind(CellKind::Data), 16);
        // Duplicates collapse rather than double-counting.
        let d = Layout::try_with_bus_lines(16, &[-1, -1], &[-1, 1, 1]).unwrap();
        assert_eq!(d.routing_paths(), 3);
        assert_eq!(d.grid().rows(), 5);
        // Too few distinct lines is rejected with the range in the error.
        let err = Layout::try_with_bus_lines(16, &[-1, -1], &[]).unwrap_err();
        assert_eq!(
            err,
            LayoutError::TooFewRoutingPaths {
                requested: 1,
                max: 10
            }
        );
        assert_eq!(
            Layout::try_with_bus_lines(0, &[-1], &[-1]).unwrap_err(),
            LayoutError::NoDataQubits
        );
    }

    #[test]
    fn r2_places_top_and_left_edges() {
        let l = Layout::with_routing_paths(16, 2);
        // 5x5 grid: bus row 0 and bus column 0, data at rows/cols 1..5.
        assert_eq!(l.grid().rows(), 5);
        assert_eq!(l.grid().cols(), 5);
        assert_eq!(l.grid().kind(Coord::new(0, 0)), CellKind::Bus);
        assert_eq!(l.grid().kind(Coord::new(1, 1)), CellKind::Data);
        assert_eq!(l.data_cells()[0], Coord::new(1, 1));
    }

    #[test]
    fn r4_rings_the_block() {
        let l = Layout::with_routing_paths(16, 4);
        let g = l.grid();
        for c in g.boundary() {
            assert_eq!(g.kind(c), CellKind::Bus, "boundary cell {c} must be bus");
        }
        assert_eq!(g.count_kind(CellKind::Data), 16);
    }

    #[test]
    fn interior_lines_split_middle_out() {
        // r=6 on 4x4: edges + 1 interior column + 1 interior row through the
        // middle of the block.
        let l = Layout::with_routing_paths(16, 6);
        let g = l.grid();
        assert_eq!(g.rows(), 7);
        assert_eq!(g.cols(), 7);
        // Middle column (grid col 3) and middle row (grid row 3) are all bus.
        for i in 0..7 {
            assert_eq!(g.kind(Coord::new(i, 3)), CellKind::Bus);
            assert_eq!(g.kind(Coord::new(3, i)), CellKind::Bus);
        }
    }

    #[test]
    fn full_routing_paths_isolate_every_data_cell() {
        let l = Layout::with_routing_paths(16, 10);
        let g = l.grid();
        assert_eq!(g.rows(), 9);
        assert_eq!(g.cols(), 9);
        // Every data cell is surrounded by bus on all four sides.
        for &dc in l.data_cells() {
            for n in g.neighbours_in(dc) {
                assert_eq!(g.kind(n), CellKind::Bus);
            }
        }
    }

    #[test]
    fn non_square_counts_keep_all_data() {
        let l = Layout::with_routing_paths(10, 4);
        // L = 4, 10 data cells occupy the first 2.5 rows of the block.
        assert_eq!(l.data_cells().len(), 10);
        assert_eq!(l.grid().count_kind(CellKind::Data), 10);
        assert_eq!(l.data_side(), 4);
    }

    #[test]
    fn boundary_bus_cells_nonempty_even_at_r2() {
        let l = Layout::with_routing_paths(16, 2);
        let b = l.boundary_bus_cells();
        assert!(!b.is_empty());
        for c in b {
            assert_eq!(l.grid().kind(c), CellKind::Bus);
        }
    }

    #[test]
    fn middle_out_order_shape() {
        assert_eq!(middle_out_order(0), Vec::<Gap>::new());
        assert_eq!(middle_out_order(1), vec![0]);
        assert_eq!(middle_out_order(3), vec![1, 0, 2]);
        let o = middle_out_order(9);
        assert_eq!(o.len(), 9);
        assert_eq!(o[0], 4);
        let mut sorted = o.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn every_r_in_range_constructs() {
        for n in [1u32, 4, 9, 10, 16, 36, 100] {
            let max = Layout::max_routing_paths(n);
            for r in 2..=max {
                let l = Layout::with_routing_paths(n, r);
                assert_eq!(l.data_cells().len(), n as usize);
                assert_eq!(l.routing_paths(), r);
                // More routing paths never shrink the grid.
                if r > 2 {
                    let prev = Layout::with_routing_paths(n, r - 1);
                    assert!(l.total_patches() > prev.total_patches());
                }
            }
        }
    }
}
