//! Physical-resource estimation for surface-code machines.
//!
//! The compiler works in *logical* units (patches and code-distance
//! timesteps). This module converts to physical requirements: the code
//! distance needed for a target logical error budget, physical qubits per
//! patch (`2d² − 1`, paper Fig 1), and wall-clock time from the syndrome
//! cycle length — the quantities an early-FTQC hardware roadmap is written
//! in (§I: "systems to have tens to hundreds of logical qubits").
//!
//! The logical error model is the standard surface-code fit
//! `p_L(d) ≈ A · (p/p_th)^((d+1)/2)` per patch per code cycle, with
//! `A = 0.1` and threshold `p_th = 0.01` (Fowler et al. \[16\]).

use crate::timing::Ticks;
use serde::{Deserialize, Serialize};

/// Physical machine assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalAssumptions {
    /// Physical gate error rate `p` (e.g. `1e-3`).
    pub physical_error_rate: f64,
    /// Surface-code threshold `p_th` (default `1e-2`).
    pub threshold: f64,
    /// Fit prefactor `A` (default 0.1).
    pub prefactor: f64,
    /// Syndrome-measurement cycle time in seconds (e.g. `1e-6` for
    /// superconducting qubits).
    pub cycle_seconds: f64,
}

impl PhysicalAssumptions {
    /// Superconducting-era defaults: `p = 10⁻³`, 1µs cycles.
    pub fn superconducting() -> Self {
        Self {
            physical_error_rate: 1e-3,
            threshold: 1e-2,
            prefactor: 0.1,
            cycle_seconds: 1e-6,
        }
    }

    /// Logical error rate per patch per code cycle at distance `d`.
    pub fn logical_error_per_cycle(&self, d: u32) -> f64 {
        let ratio = self.physical_error_rate / self.threshold;
        self.prefactor * ratio.powf((d as f64 + 1.0) / 2.0)
    }

    /// The smallest odd code distance such that the *total* expected
    /// logical error over `patches × code_cycles` patch-cycles stays below
    /// `budget`.
    ///
    /// Returns `None` when `p ≥ p_th` (below threshold operation is
    /// impossible) or no distance up to 99 suffices.
    pub fn required_distance(&self, patch_cycles: f64, budget: f64) -> Option<u32> {
        if self.physical_error_rate >= self.threshold {
            return None;
        }
        (3..=99)
            .step_by(2)
            .find(|&d| self.logical_error_per_cycle(d) * patch_cycles < budget)
    }
}

impl Default for PhysicalAssumptions {
    fn default() -> Self {
        Self::superconducting()
    }
}

/// Physical qubits in one logical patch at distance `d`: `2d² − 1`
/// (d² data + d²−1 syndrome, paper Fig 1(b)).
pub fn physical_qubits_per_patch(d: u32) -> u64 {
    2 * (d as u64) * (d as u64) - 1
}

/// A complete physical resource estimate for a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalEstimate {
    /// Chosen code distance.
    pub code_distance: u32,
    /// Logical patches (grid + factories).
    pub logical_qubits: u32,
    /// Total physical qubits.
    pub physical_qubits: u64,
    /// Wall-clock execution time in seconds.
    pub wall_clock_seconds: f64,
    /// Expected total logical error of the run.
    pub expected_logical_error: f64,
}

/// Estimates the physical resources for a program of `logical_qubits`
/// patches running for `execution_time`, with total failure budget
/// `budget` (e.g. 0.01 for a 1% failure chance).
///
/// Returns `None` when no distance ≤ 99 meets the budget.
///
/// # Example
///
/// ```
/// use ftqc_arch::qec::{estimate, PhysicalAssumptions};
/// use ftqc_arch::Ticks;
///
/// let est = estimate(
///     155,
///     Ticks::from_d(3100.0),
///     0.01,
///     &PhysicalAssumptions::superconducting(),
/// )
/// .expect("feasible");
/// assert!(est.code_distance >= 13);
/// assert!(est.physical_qubits > 50_000);
/// ```
pub fn estimate(
    logical_qubits: u32,
    execution_time: Ticks,
    budget: f64,
    assumptions: &PhysicalAssumptions,
) -> Option<PhysicalEstimate> {
    // `execution_time` is in d units, so code cycles = time_d × d; the
    // distance appears on both sides — iterate to a fixed point (monotone
    // increasing, converges in a couple of rounds).
    let mut d = 3u32;
    for _ in 0..32 {
        let patch_cycles = logical_qubits as f64 * execution_time.as_d() * d as f64;
        let needed = assumptions.required_distance(patch_cycles, budget)?;
        if needed <= d {
            return Some(PhysicalEstimate {
                code_distance: d,
                logical_qubits,
                physical_qubits: logical_qubits as u64 * physical_qubits_per_patch(d),
                wall_clock_seconds: execution_time.physical_seconds(d, assumptions.cycle_seconds),
                expected_logical_error: assumptions.logical_error_per_cycle(d) * patch_cycles,
            });
        }
        d = needed;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_qubit_formula() {
        // d=5: 2*25-1 = 49 (Fig 1(b): "2d²−1 physical qubits").
        assert_eq!(physical_qubits_per_patch(5), 49);
        assert_eq!(physical_qubits_per_patch(3), 17);
        assert_eq!(physical_qubits_per_patch(21), 881);
    }

    #[test]
    fn logical_error_decreases_with_distance() {
        let a = PhysicalAssumptions::superconducting();
        let e3 = a.logical_error_per_cycle(3);
        let e5 = a.logical_error_per_cycle(5);
        let e21 = a.logical_error_per_cycle(21);
        assert!(e5 < e3);
        assert!(e21 < 1e-10);
    }

    #[test]
    fn required_distance_monotone_in_budget() {
        let a = PhysicalAssumptions::superconducting();
        let tight = a.required_distance(1e9, 1e-3).unwrap();
        let loose = a.required_distance(1e9, 1e-1).unwrap();
        assert!(tight >= loose);
        // Distances are odd.
        assert_eq!(tight % 2, 1);
    }

    #[test]
    fn above_threshold_is_infeasible() {
        let a = PhysicalAssumptions {
            physical_error_rate: 2e-2,
            ..PhysicalAssumptions::superconducting()
        };
        assert_eq!(a.required_distance(1e6, 0.01), None);
    }

    #[test]
    fn end_to_end_estimate_ising_scale() {
        // The compiled 10x10 Ising: 155 patches for ~3100d.
        let est = estimate(
            155,
            Ticks::from_d(3100.0),
            0.01,
            &PhysicalAssumptions::superconducting(),
        )
        .expect("feasible");
        assert!(est.code_distance >= 13 && est.code_distance <= 31);
        assert!(est.expected_logical_error < 0.01);
        assert!(est.wall_clock_seconds > 0.01 && est.wall_clock_seconds < 10.0);
        assert_eq!(
            est.physical_qubits,
            155 * physical_qubits_per_patch(est.code_distance)
        );
    }

    #[test]
    fn better_hardware_needs_less_distance() {
        let sc = PhysicalAssumptions::superconducting();
        let better = PhysicalAssumptions {
            physical_error_rate: 1e-4,
            ..sc
        };
        let d_sc = estimate(100, Ticks::from_d(1000.0), 0.01, &sc)
            .unwrap()
            .code_distance;
        let d_better = estimate(100, Ticks::from_d(1000.0), 0.01, &better)
            .unwrap()
            .code_distance;
        assert!(d_better < d_sc);
    }
}
