//! Magic-state distillation protocols beyond the flat 11d/11-tile factory.
//!
//! The paper fixes one factory model: a 15-to-1 unit taking 11 code cycles
//! and 11 tiles (§II.C, following \[28\]). Its own sensitivity study
//! (Fig 14d) varies the processing time, and real early-FT machines will
//! pick a protocol to hit a *target output fidelity* for a given physical
//! error rate. This module provides that selection layer:
//!
//! * [`DistillationProtocol`] — an `(n → k, O(pᵐ))` distillation unit with a
//!   tile footprint and a latency in code-distance units;
//! * composition ([`DistillationProtocol::compose`]) for multi-level
//!   distillation, e.g. `(15-to-1)²`;
//! * [`choose_protocol`] — the cheapest catalogue entry whose output error
//!   meets a target, the decision an early-FT architect makes when fixing
//!   `t_MSF` and factory count.
//!
//! The error model is the textbook suppression rule for the 15-to-1
//! protocol, `p_out = 35·p³` (Bravyi & Kitaev \[10\]), composed across
//! levels, plus a *logical noise floor*: the distillation block itself
//! runs `tiles × cycles` patch-cycles of error correction, so its output
//! cannot be cleaner than what the code distance sustains. Litinski's
//! protocol zoo (\[29\]) tunes per-level code distances; we expose the same
//! trade-off through [`DistillationProtocol::output_error`]'s explicit
//! floor term. (See DESIGN.md: we implement the published *formulas*, not
//! the paper-specific simulated constants, which depend on their decoder.)

use crate::qec::PhysicalAssumptions;
use crate::timing::Ticks;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One distillation unit: consumes `inputs` noisy states, produces
/// `outputs` better ones with error `prefactor · p_in^order`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistillationProtocol {
    /// Human-readable name, e.g. `"15-to-1"` or `"(15-to-1)²"`.
    pub name: String,
    /// Noisy input states consumed per round.
    pub inputs: u32,
    /// Distilled output states produced per round.
    pub outputs: u32,
    /// Order of error suppression (3 for 15-to-1).
    pub order: u32,
    /// Prefactor of the suppression rule (35 for 15-to-1).
    pub prefactor: f64,
    /// Logical patches the unit occupies while running.
    pub tiles: u32,
    /// Production latency per round, in code-distance units.
    pub cycles_d: f64,
}

impl DistillationProtocol {
    /// The paper's factory: Bravyi–Kitaev 15-to-1 on 11 tiles, one output
    /// every 11d (\[28\], §II.C).
    pub fn fifteen_to_one() -> Self {
        Self {
            name: "15-to-1".into(),
            inputs: 15,
            outputs: 1,
            order: 3,
            prefactor: 35.0,
            tiles: 11,
            cycles_d: 11.0,
        }
    }

    /// Two-level `(15-to-1)²` distillation: 225 raw inputs per output,
    /// ninth-order suppression. Built with [`DistillationProtocol::compose`].
    pub fn fifteen_to_one_squared() -> Self {
        let l = Self::fifteen_to_one();
        l.compose(&Self::fifteen_to_one())
    }

    /// Composes `self` (first level) with `next` (second level): the first
    /// level must produce the second level's inputs, so per final output
    /// the composite consumes `inputs × next.inputs / outputs` raw states.
    ///
    /// Footprint: the first level needs `ceil(next.inputs / outputs)`
    /// concurrent copies to feed one second-level round, running in
    /// parallel next to it; latency adds one first-level round of fill
    /// (pipelined thereafter).
    pub fn compose(&self, next: &Self) -> Self {
        let copies = next.inputs.div_ceil(self.outputs);
        // p2 = c2 · (c1 · p^k1)^k2 = c2 · c1^k2 · p^(k1·k2)
        let prefactor = next.prefactor * self.prefactor.powi(next.order as i32);
        Self {
            name: format!("({})x({})", self.name, next.name),
            inputs: self.inputs * copies,
            outputs: next.outputs,
            order: self.order * next.order,
            prefactor,
            tiles: self.tiles * copies + next.tiles,
            cycles_d: self.cycles_d + next.cycles_d,
        }
    }

    /// Output error per distilled state for raw input error `p_in`,
    /// ignoring the logical noise floor (infinite-distance limit).
    pub fn ideal_output_error(&self, p_in: f64) -> f64 {
        self.prefactor * p_in.powi(self.order as i32)
    }

    /// Output error including the logical noise floor of running the
    /// distillation block at distance `d` under `assumptions`: the block's
    /// `tiles × cycles_d × d` patch-cycles each contribute the per-cycle
    /// logical error, spread over the round's outputs.
    pub fn output_error(&self, p_in: f64, d: u32, assumptions: &PhysicalAssumptions) -> f64 {
        let floor = assumptions.logical_error_per_cycle(d)
            * (self.tiles as f64)
            * (self.cycles_d * d as f64)
            / self.outputs.max(1) as f64;
        self.ideal_output_error(p_in) + floor
    }

    /// Production latency as [`Ticks`].
    pub fn production_time(&self) -> Ticks {
        Ticks::from_d(self.cycles_d)
    }

    /// Spacetime volume of one round in tile·d units.
    pub fn round_volume(&self) -> f64 {
        self.tiles as f64 * self.cycles_d
    }

    /// Raw (undistilled) states consumed per final output.
    pub fn raw_per_output(&self) -> f64 {
        self.inputs as f64 / self.outputs.max(1) as f64
    }
}

impl fmt::Display for DistillationProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} tiles, {}d/round, p_out≈{}·p^{})",
            self.name, self.tiles, self.cycles_d, self.prefactor, self.order
        )
    }
}

/// The default catalogue an early-FT architect picks from: one- and
/// two-level 15-to-1 stacks.
pub fn catalogue() -> Vec<DistillationProtocol> {
    let one = DistillationProtocol::fifteen_to_one();
    let two = DistillationProtocol::fifteen_to_one_squared();
    let three = two.compose(&DistillationProtocol::fifteen_to_one());
    vec![one, two, three]
}

/// Chooses the smallest-volume catalogue protocol whose output error at
/// distance `d` meets `target`, with raw input error `p_in` (usually the
/// physical error rate: injected states start at ≈ p).
///
/// Returns `None` when no catalogue entry reaches the target — either the
/// target is below the logical noise floor at this distance, or the raw
/// states are too noisy for three levels.
///
/// # Example
///
/// ```
/// use ftqc_arch::distillation::choose_protocol;
/// use ftqc_arch::qec::PhysicalAssumptions;
///
/// let a = PhysicalAssumptions::superconducting();
/// // A loose target is met by single-level 15-to-1.
/// let p = choose_protocol(1e-3, 1e-6, 21, &a).expect("feasible");
/// assert_eq!(p.name, "15-to-1");
/// // A very tight target needs two levels.
/// let p = choose_protocol(1e-3, 1e-13, 41, &a).expect("feasible");
/// assert!(p.name.contains(")x("));
/// ```
pub fn choose_protocol(
    p_in: f64,
    target: f64,
    d: u32,
    assumptions: &PhysicalAssumptions,
) -> Option<DistillationProtocol> {
    let mut feasible: Vec<DistillationProtocol> = catalogue()
        .into_iter()
        .filter(|p| p.output_error(p_in, d, assumptions) < target)
        .collect();
    feasible.sort_by(|a, b| {
        a.round_volume()
            .partial_cmp(&b.round_volume())
            .expect("volumes are finite")
    });
    feasible.into_iter().next()
}

/// The magic-state error budget implied by a circuit: if a run may spend at
/// most `budget` total failure probability on its `n_magic` consumed states,
/// each state must be distilled to `budget / n_magic`.
pub fn per_state_target(budget: f64, n_magic: u64) -> f64 {
    if n_magic == 0 {
        1.0
    } else {
        budget / n_magic as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_to_one_matches_paper_constants() {
        let p = DistillationProtocol::fifteen_to_one();
        assert_eq!(p.tiles, 11);
        assert_eq!(p.cycles_d, 11.0);
        assert_eq!(p.production_time(), Ticks::from_d(11.0));
        assert_eq!(p.raw_per_output(), 15.0);
    }

    #[test]
    fn bravyi_kitaev_suppression() {
        let p = DistillationProtocol::fifteen_to_one();
        // 35·(1e-3)³ = 3.5e-8.
        let out = p.ideal_output_error(1e-3);
        assert!((out - 3.5e-8).abs() < 1e-12);
    }

    #[test]
    fn two_level_composition() {
        let p2 = DistillationProtocol::fifteen_to_one_squared();
        assert_eq!(p2.inputs, 225);
        assert_eq!(p2.outputs, 1);
        assert_eq!(p2.order, 9);
        // c = 35 · 35³ = 35⁴.
        assert!((p2.prefactor - 35.0f64.powi(4)).abs() < 1e-6);
        // 15 first-level copies + 1 second-level unit.
        assert_eq!(p2.tiles, 11 * 15 + 11);
        assert_eq!(p2.cycles_d, 22.0);
        // Ninth-order suppression at p=1e-3: 35⁴·1e-27 ≈ 1.5e-21.
        assert!(p2.ideal_output_error(1e-3) < 1e-20);
    }

    #[test]
    fn composition_is_associativeish_in_order() {
        let one = DistillationProtocol::fifteen_to_one();
        let three = one.compose(&one).compose(&one);
        assert_eq!(three.order, 27);
    }

    #[test]
    fn noise_floor_dominates_at_small_distance() {
        let a = PhysicalAssumptions::superconducting();
        let p = DistillationProtocol::fifteen_to_one();
        // At d=3 the block's own logical errors swamp the distilled output.
        let small_d = p.output_error(1e-3, 3, &a);
        let big_d = p.output_error(1e-3, 25, &a);
        assert!(small_d > 1e3 * big_d);
        // At large d the floor vanishes and we approach the ideal value.
        assert!((big_d - p.ideal_output_error(1e-3)) / big_d < 0.5);
    }

    #[test]
    fn choose_prefers_cheapest() {
        let a = PhysicalAssumptions::superconducting();
        let chosen = choose_protocol(1e-3, 1e-6, 21, &a).expect("feasible");
        assert_eq!(chosen.name, "15-to-1");
    }

    #[test]
    fn choose_escalates_levels_for_tight_targets() {
        let a = PhysicalAssumptions::superconducting();
        let chosen = choose_protocol(1e-3, 1e-13, 41, &a).expect("feasible");
        assert!(chosen.order >= 9, "needs ≥ two levels, got {}", chosen.name);
    }

    #[test]
    fn choose_fails_below_noise_floor() {
        let a = PhysicalAssumptions::superconducting();
        // d=3 cannot certify 1e-15 states no matter the protocol.
        assert_eq!(choose_protocol(1e-3, 1e-15, 3, &a), None);
    }

    #[test]
    fn per_state_target_divides_budget() {
        assert_eq!(per_state_target(0.01, 100), 1e-4);
        assert_eq!(per_state_target(0.01, 0), 1.0);
    }

    #[test]
    fn round_volume_and_display() {
        let p = DistillationProtocol::fifteen_to_one();
        assert_eq!(p.round_volume(), 121.0);
        assert!(p.to_string().contains("15-to-1"));
        assert!(p.to_string().contains("11 tiles"));
    }

    #[test]
    fn catalogue_sorted_by_strength() {
        let c = catalogue();
        assert_eq!(c.len(), 3);
        assert!(c[0].order < c[1].order && c[1].order < c[2].order);
    }
}
