//! Architecture substrate for the `ftqc` compiler.
//!
//! Models the early-FTQC machine of the paper:
//!
//! * [`Grid`] / [`Coord`] — the 2D array of logical surface-code patches
//!   (paper Fig 1(b) right).
//! * [`Layout`] — the routing-path-parameterised layout family of Fig 3:
//!   an `L×L` data block with `r ∈ [2, 2L+2]` full rows/columns of bus
//!   qubits that serve both as routing paths and as operational ancillas.
//! * [`SurgeryOp`] — the lattice-surgery instruction set of Fig 7 with its
//!   placement constraints (`M_ZZ` merges are vertical, `M_XX` horizontal,
//!   CNOT needs a diagonal control/target pair with the ancilla between).
//! * [`TimingModel`] / [`Ticks`] — operation latencies in units of the code
//!   distance `d` (internally half-`d` ticks so 1.5d and 2.5d stay exact).
//! * [`FactoryBank`] — 15-to-1 magic-state distillation factories with a
//!   configurable production latency (11d by default) docked on the layout
//!   boundary.
//!
//! # Example
//!
//! ```
//! use ftqc_arch::{Layout, TimingModel};
//!
//! // 10x10 data block with 4 routing paths: the 12x12 = 144-cell layout
//! // quoted in the paper (§VII.C).
//! let layout = Layout::with_routing_paths(100, 4);
//! assert_eq!(layout.grid().num_cells(), 144);
//! assert_eq!(layout.data_cells().len(), 100);
//! let t = TimingModel::paper();
//! assert_eq!(t.cnot.as_d(), 2.0);
//! ```

pub mod distillation;
pub mod factory;
pub mod grid;
pub mod layout;
pub mod qec;
pub mod surgery;
pub mod target;
pub mod timing;
pub mod viz;

pub use distillation::{catalogue, choose_protocol, per_state_target, DistillationProtocol};
pub use factory::{FactoryBank, PortPlacement, FACTORY_TILES};
pub use grid::{CellKind, Coord, Grid};
pub use layout::{Layout, LayoutError};
pub use surgery::{cnot_ancilla, SingleQubitKind, SurgeryOp};
pub use target::{
    BusSpec, Capabilities, FastD, PaperGrid, ProgramShape, SparseBus, Target, TargetEntry,
    TargetError, TargetRegistry, TargetSpec,
};
pub use timing::{Ticks, TimingModel, TICKS_PER_D};
pub use viz::{render_layout, render_with};
