//! First-class hardware targets: one typed descriptor for the whole
//! machine model the compiler runs against.
//!
//! The paper's machine (Fig 1b / Fig 3) is an `L×L` data block provisioned
//! with `r` bus lines, 15-to-1 distillation factories docked on the
//! boundary, and per-operation latencies in units of the code distance.
//! [`TargetSpec`] gathers those knobs — bus provisioning (the
//! routing-path-parameterised family *or* an explicit bus mask), the
//! factory bank, the [`TimingModel`], and capability flags — into one
//! descriptor that the compiler digests canonically into its fingerprint
//! chain, so "which machine was this compiled for" is part of every cache
//! key and wire artifact.
//!
//! [`Target`] is the behavioural seam: anything that can name itself,
//! produce a spec, build a layout, and validate a program shape. The
//! built-in implementations cover the paper's machine ([`PaperGrid`]), a
//! bus-starved variant ([`SparseBus`]), and a timing-scaled machine
//! ([`FastD`]); future backends (multi-chip, heavy-hex-style bus masks,
//! heterogeneous factories) plug in behind the same trait.
//!
//! [`TargetRegistry`] maps preset names (`"paper"`, `"sparse"`,
//! `"fast-d"`) and user-registered specs to descriptors — the lookup the
//! CLI's `--target` flag and the server's `GET /v1/targets` endpoint
//! share.
//!
//! # Example
//!
//! ```
//! use ftqc_arch::{Target, TargetRegistry, PaperGrid};
//!
//! let registry = TargetRegistry::builtin();
//! let spec = registry.get("paper").unwrap().clone();
//! assert_eq!(spec, PaperGrid.spec());
//! let layout = spec.build_layout(100)?;
//! assert_eq!(layout.total_patches(), 144); // the §VII.C reference machine
//! spec.validate(100, 1_000)?; // fits, and the target distils T states
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::factory::{FactoryBank, PortPlacement};
use crate::layout::{Layout, LayoutError};
use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// How a target provisions its bus (routing/ancilla) lines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusSpec {
    /// The paper's Fig 3 family: `r` bus lines inserted edges-first, then
    /// interior lines middle-out. Sweepable — the design-space explorer
    /// varies `r` freely (unless [`Capabilities::fixed_bus`] pins it).
    RoutingPaths(u32),
    /// An explicit bus mask: the exact gap positions of every bus row and
    /// column (`-1` = before data line 0, `k` = after data line `k`). This
    /// is how irregular machines (one-sided buses, heavy-hex-style
    /// provisioning) are described; the mask is never overridden by sweep
    /// grids.
    Explicit {
        /// Bus-row gap positions.
        rows: Vec<i32>,
        /// Bus-column gap positions.
        cols: Vec<i32>,
    },
}

impl BusSpec {
    /// The number of bus lines this spec provisions (the `r` the layout
    /// family would quote). Duplicate gaps in an explicit mask collapse,
    /// matching what [`Layout::try_with_bus_lines`] actually builds.
    pub fn routing_paths(&self) -> u32 {
        match self {
            BusSpec::RoutingPaths(r) => *r,
            BusSpec::Explicit { rows, cols } => {
                (canonical_gaps(rows).len() + canonical_gaps(cols).len()) as u32
            }
        }
    }

    /// The canonical form: explicit masks with gap lists sorted and
    /// deduplicated. Two masks describing the same machine canonicalise
    /// (and therefore digest) identically.
    pub fn canonical(&self) -> BusSpec {
        match self {
            BusSpec::RoutingPaths(r) => BusSpec::RoutingPaths(*r),
            BusSpec::Explicit { rows, cols } => BusSpec::Explicit {
                rows: canonical_gaps(rows),
                cols: canonical_gaps(cols),
            },
        }
    }
}

/// Sorted, deduplicated gap positions — the mask as the layout builds it.
fn canonical_gaps(gaps: &[i32]) -> Vec<i32> {
    let mut gaps = gaps.to_vec();
    gaps.sort_unstable();
    gaps.dedup();
    gaps
}

/// What a target can and cannot do, beyond its geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Hard cap on data qubits (`None` = any register the layout fits).
    pub max_qubits: Option<u32>,
    /// Whether the machine distils magic states at all. A `false` target
    /// is Clifford-only: compiling a circuit with T/non-Clifford rotations
    /// is a validation error rather than a silent mis-model.
    pub magic_states: bool,
    /// Whether the bus provisioning is part of the machine (not a free
    /// design axis): cross-target sweeps pin `r` to the spec's own value
    /// instead of sweeping it. Explicit bus masks are always pinned.
    pub fixed_bus: bool,
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities {
            max_qubits: None,
            magic_states: true,
            fixed_bus: false,
        }
    }
}

impl Capabilities {
    /// Whether every flag holds its default — the test the options codec
    /// uses to keep legacy renderings byte-identical.
    pub fn is_default(&self) -> bool {
        *self == Capabilities::default()
    }
}

/// A program's shape as a target sees it: just enough to validate a fit
/// without depending on any circuit representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramShape {
    /// Logical data qubits the program needs.
    pub qubits: u32,
    /// Magic states the program consumes (T/T†/non-Clifford rotations).
    pub t_count: u64,
}

/// Why a program cannot run on a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetError {
    /// A bounded-magic target was declared with zero factories.
    NoFactories,
    /// The program needs more data qubits than the target hosts.
    TooManyQubits {
        /// Qubits the program needs.
        qubits: u32,
        /// The target's cap.
        max: u32,
    },
    /// The program consumes magic states but the target is Clifford-only.
    MagicStatesUnsupported {
        /// Magic states the program would consume.
        t_count: u64,
    },
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::NoFactories => {
                write!(
                    f,
                    "target provides no factories but models bounded magic-state supply"
                )
            }
            TargetError::TooManyQubits { qubits, max } => {
                write!(
                    f,
                    "program needs {qubits} data qubits but the target hosts at most {max}"
                )
            }
            TargetError::MagicStatesUnsupported { t_count } => write!(
                f,
                "program consumes {t_count} magic states but the target is Clifford-only"
            ),
        }
    }
}

impl Error for TargetError {}

/// A complete machine descriptor: bus provisioning, factory bank, timing
/// model, and capability flags.
///
/// The spec is plain data — cloneable, comparable, canonically digestible
/// (see `ftqc_compiler::codec::target_digest`) — so it can live in compile
/// options, job documents, wire payloads, and cache keys without any
/// behavioural baggage. Behaviour lives in the inherent methods
/// ([`TargetSpec::build_layout`], [`TargetSpec::factory_bank`],
/// [`TargetSpec::validate`]) and the [`Target`] trait built on them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetSpec {
    /// Bus provisioning.
    pub bus: BusSpec,
    /// Distillation factories docked on the boundary.
    pub factories: u32,
    /// Per-operation latencies (includes the factories' production time).
    pub timing: TimingModel,
    /// Where factory output ports sit on the boundary.
    pub port_placement: PortPlacement,
    /// Model an unlimited magic-state supply (DASCOT-style assumption).
    pub unbounded_magic: bool,
    /// Capability flags.
    pub capabilities: Capabilities,
}

impl TargetSpec {
    /// The paper's evaluation machine: `r = 4`, one 15-to-1 factory at
    /// 11d, spread ports — exactly the pre-target compiler defaults.
    pub fn paper() -> Self {
        TargetSpec {
            bus: BusSpec::RoutingPaths(4),
            factories: 1,
            timing: TimingModel::paper(),
            port_placement: PortPlacement::Spread,
            unbounded_magic: false,
            capabilities: Capabilities::default(),
        }
    }

    /// A bus-starved machine: the minimum `r = 2` provisioning with all
    /// factory ports clustered on one edge, and the bus pinned (`r` is the
    /// machine, not a design axis).
    pub fn sparse() -> Self {
        TargetSpec {
            bus: BusSpec::RoutingPaths(2),
            port_placement: PortPlacement::Clustered,
            capabilities: Capabilities {
                fixed_bus: true,
                ..Capabilities::default()
            },
            ..TargetSpec::paper()
        }
    }

    /// The paper machine with every latency scaled to half (rounded up to
    /// whole ticks): a "fast-d" device whose effective code distance —
    /// and with it every lattice-surgery latency — is halved.
    pub fn fast_d() -> Self {
        TargetSpec {
            timing: TimingModel::paper().scaled(1, 2),
            ..TargetSpec::paper()
        }
    }

    /// The bus-line count this spec provisions (`r` for the layout
    /// family, the mask's line count for explicit masks).
    pub fn routing_paths(&self) -> u32 {
        self.bus.routing_paths()
    }

    /// Whether sweeps must keep this spec's bus provisioning as-is:
    /// explicit masks always, routing-path families when
    /// [`Capabilities::fixed_bus`] is set.
    pub fn bus_is_pinned(&self) -> bool {
        self.capabilities.fixed_bus || matches!(self.bus, BusSpec::Explicit { .. })
    }

    /// Builds the layout for `n_data` data qubits.
    ///
    /// # Errors
    ///
    /// [`LayoutError`] when the provisioning is invalid for this register
    /// size.
    pub fn build_layout(&self, n_data: u32) -> Result<Layout, LayoutError> {
        match &self.bus {
            BusSpec::RoutingPaths(r) => Layout::try_with_routing_paths(n_data, *r),
            BusSpec::Explicit { rows, cols } => Layout::try_with_bus_lines(n_data, rows, cols),
        }
    }

    /// Docks this spec's factory bank on `layout` — the exact bank the
    /// compiler's map stage routes magic states from.
    pub fn factory_bank(&self, layout: &Layout) -> FactoryBank {
        if self.unbounded_magic {
            FactoryBank::unbounded(layout, self.factories)
        } else {
            FactoryBank::dock_with(
                layout,
                self.factories,
                self.timing.magic_production,
                self.port_placement,
            )
        }
    }

    /// Checks a program shape against this target's capabilities.
    ///
    /// Geometry is *not* checked here (that is [`TargetSpec::build_layout`]'s
    /// job, with its own [`LayoutError`]); this covers the capability
    /// flags and the factory-count invariant that used to panic deep in
    /// the bank constructor.
    ///
    /// # Errors
    ///
    /// The first violated [`TargetError`].
    pub fn validate(&self, qubits: u32, t_count: u64) -> Result<(), TargetError> {
        if self.factories == 0 && !self.unbounded_magic {
            return Err(TargetError::NoFactories);
        }
        if let Some(max) = self.capabilities.max_qubits {
            if qubits > max {
                return Err(TargetError::TooManyQubits { qubits, max });
            }
        }
        if t_count > 0 && !self.capabilities.magic_states {
            return Err(TargetError::MagicStatesUnsupported { t_count });
        }
        Ok(())
    }

    /// [`TargetSpec::validate`] over a [`ProgramShape`].
    ///
    /// # Errors
    ///
    /// As [`TargetSpec::validate`].
    pub fn validate_shape(&self, shape: ProgramShape) -> Result<(), TargetError> {
        self.validate(shape.qubits, shape.t_count)
    }
}

impl Default for TargetSpec {
    fn default() -> Self {
        TargetSpec::paper()
    }
}

/// A pluggable hardware target: everything the compiler needs from a
/// machine, behind one seam.
///
/// The default methods all derive from [`Target::spec`]; a backend only
/// overrides them when its behaviour cannot be expressed as a spec (e.g.
/// a generated layout family).
pub trait Target {
    /// The target's name (registry key / display label).
    fn name(&self) -> &str;

    /// A one-line description for listings.
    fn description(&self) -> &str {
        ""
    }

    /// The machine descriptor.
    fn spec(&self) -> TargetSpec;

    /// Builds the layout for `n_data` data qubits.
    ///
    /// # Errors
    ///
    /// [`LayoutError`] when the provisioning is invalid for this register.
    fn build_layout(&self, n_data: u32) -> Result<Layout, LayoutError> {
        self.spec().build_layout(n_data)
    }

    /// The target's latency table.
    fn timing(&self) -> TimingModel {
        self.spec().timing
    }

    /// Docks the target's factory bank on `layout`.
    fn factories(&self, layout: &Layout) -> FactoryBank {
        self.spec().factory_bank(layout)
    }

    /// Checks a program shape against the target.
    ///
    /// # Errors
    ///
    /// The first violated [`TargetError`].
    fn validate(&self, shape: ProgramShape) -> Result<(), TargetError> {
        self.spec().validate_shape(shape)
    }
}

/// The paper's evaluation machine (preset `"paper"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaperGrid;

impl Target for PaperGrid {
    fn name(&self) -> &str {
        "paper"
    }

    fn description(&self) -> &str {
        "the paper's machine: r=4 layout family, one 15-to-1 factory (11d), spread ports"
    }

    fn spec(&self) -> TargetSpec {
        TargetSpec::paper()
    }
}

/// The bus-starved machine (preset `"sparse"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseBus;

impl Target for SparseBus {
    fn name(&self) -> &str {
        "sparse"
    }

    fn description(&self) -> &str {
        "bus-starved machine: minimum r=2 pinned, factory ports clustered on one edge"
    }

    fn spec(&self) -> TargetSpec {
        TargetSpec::sparse()
    }
}

/// The timing-scaled machine (preset `"fast-d"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastD;

impl Target for FastD {
    fn name(&self) -> &str {
        "fast-d"
    }

    fn description(&self) -> &str {
        "paper machine with every latency halved (effective code distance d/2)"
    }

    fn spec(&self) -> TargetSpec {
        TargetSpec::fast_d()
    }
}

/// One registry entry: a named, described spec.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetEntry {
    /// The lookup name.
    pub name: String,
    /// A one-line description for listings.
    pub description: String,
    /// The machine descriptor.
    pub spec: TargetSpec,
}

/// Named targets: the built-in presets plus anything the embedding
/// process registers. Lookup is by exact name; registration order is
/// preserved for listings, and re-registering a name replaces its spec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TargetRegistry {
    entries: Vec<TargetEntry>,
}

impl TargetRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        TargetRegistry::default()
    }

    /// The built-in presets: `"paper"`, `"sparse"`, `"fast-d"`.
    pub fn builtin() -> Self {
        let mut registry = TargetRegistry::empty();
        registry.register_target(&PaperGrid);
        registry.register_target(&SparseBus);
        registry.register_target(&FastD);
        registry
    }

    /// Registers (or replaces) a named spec.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        spec: TargetSpec,
    ) {
        let name = name.into();
        let description = description.into();
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(entry) => {
                entry.description = description;
                entry.spec = spec;
            }
            None => self.entries.push(TargetEntry {
                name,
                description,
                spec,
            }),
        }
    }

    /// Registers a [`Target`] implementation under its own name.
    pub fn register_target(&mut self, target: &dyn Target) {
        self.register(target.name(), target.description(), target.spec());
    }

    /// The spec registered under `name`.
    pub fn get(&self, name: &str) -> Option<&TargetSpec> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.spec)
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[TargetEntry] {
        &self.entries
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CellKind;
    use crate::timing::Ticks;

    #[test]
    fn paper_spec_matches_legacy_defaults() {
        let spec = TargetSpec::paper();
        assert_eq!(spec.routing_paths(), 4);
        assert_eq!(spec.factories, 1);
        assert_eq!(spec.timing, TimingModel::paper());
        assert_eq!(spec.port_placement, PortPlacement::Spread);
        assert!(!spec.unbounded_magic);
        assert!(spec.capabilities.is_default());
        assert!(!spec.bus_is_pinned());
        assert_eq!(TargetSpec::default(), spec);
    }

    #[test]
    fn preset_layouts_build() {
        let paper = TargetSpec::paper().build_layout(100).unwrap();
        assert_eq!(paper.total_patches(), 144);
        let sparse = TargetSpec::sparse().build_layout(100).unwrap();
        assert_eq!(sparse.total_patches(), 121);
        assert!(TargetSpec::sparse().bus_is_pinned());
    }

    #[test]
    fn fast_d_halves_latencies() {
        let t = TargetSpec::fast_d().timing;
        assert_eq!(t.cnot, Ticks::from_d(1.0));
        assert_eq!(t.magic_production, Ticks::from_d(5.5));
        assert_eq!(t.move_op, Ticks::from_d(0.5));
        // 1.5d phase rounds up to a whole tick.
        assert_eq!(t.phase, Ticks(2));
    }

    #[test]
    fn explicit_masks_canonicalise() {
        let messy = BusSpec::Explicit {
            rows: vec![3, -1, -1],
            cols: vec![1, 1],
        };
        let clean = BusSpec::Explicit {
            rows: vec![-1, 3],
            cols: vec![1],
        };
        assert_eq!(messy.canonical(), clean);
        assert_eq!(clean.canonical(), clean);
        assert_eq!(messy.routing_paths(), 3, "duplicates collapse");
        assert_eq!(
            BusSpec::RoutingPaths(4).canonical(),
            BusSpec::RoutingPaths(4)
        );
    }

    #[test]
    fn explicit_masks_build_and_pin() {
        let spec = TargetSpec {
            bus: BusSpec::Explicit {
                rows: vec![-1, 1],
                cols: vec![-1],
            },
            ..TargetSpec::paper()
        };
        assert_eq!(spec.routing_paths(), 3);
        assert!(spec.bus_is_pinned());
        let layout = spec.build_layout(16).unwrap();
        assert_eq!(layout.grid().rows(), 6);
        assert_eq!(layout.grid().cols(), 5);
        assert_eq!(layout.grid().count_kind(CellKind::Data), 16);
    }

    #[test]
    fn factory_bank_matches_spec() {
        let spec = TargetSpec {
            factories: 3,
            ..TargetSpec::paper()
        };
        let layout = spec.build_layout(16).unwrap();
        let bank = spec.factory_bank(&layout);
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_unbounded());
        let unbounded = TargetSpec {
            unbounded_magic: true,
            ..spec
        };
        assert!(unbounded.factory_bank(&layout).is_unbounded());
    }

    #[test]
    fn validation_catches_capability_violations() {
        let spec = TargetSpec::paper();
        assert!(spec.validate(100, 50).is_ok());

        let no_factories = TargetSpec {
            factories: 0,
            ..TargetSpec::paper()
        };
        assert_eq!(no_factories.validate(4, 0), Err(TargetError::NoFactories));
        // Unbounded supply never needs factories (ports default to 1).
        let unbounded = TargetSpec {
            factories: 0,
            unbounded_magic: true,
            ..TargetSpec::paper()
        };
        assert!(unbounded.validate(4, 10).is_ok());

        let small = TargetSpec {
            capabilities: Capabilities {
                max_qubits: Some(9),
                ..Capabilities::default()
            },
            ..TargetSpec::paper()
        };
        assert_eq!(
            small.validate(16, 0),
            Err(TargetError::TooManyQubits { qubits: 16, max: 9 })
        );

        let clifford_only = TargetSpec {
            capabilities: Capabilities {
                magic_states: false,
                ..Capabilities::default()
            },
            ..TargetSpec::paper()
        };
        assert!(clifford_only.validate(4, 0).is_ok());
        assert_eq!(
            clifford_only.validate(4, 7),
            Err(TargetError::MagicStatesUnsupported { t_count: 7 })
        );
        assert_eq!(
            clifford_only.validate_shape(ProgramShape {
                qubits: 4,
                t_count: 7
            }),
            Err(TargetError::MagicStatesUnsupported { t_count: 7 })
        );
    }

    #[test]
    fn target_error_messages() {
        assert!(TargetError::NoFactories
            .to_string()
            .contains("no factories"));
        let e = TargetError::TooManyQubits { qubits: 16, max: 9 };
        assert!(e.to_string().contains("16") && e.to_string().contains("9"));
        let e = TargetError::MagicStatesUnsupported { t_count: 3 };
        assert!(e.to_string().contains("Clifford-only"));
    }

    #[test]
    fn trait_defaults_follow_the_spec() {
        let layout = PaperGrid.build_layout(16).unwrap();
        assert_eq!(layout.routing_paths(), 4);
        assert_eq!(PaperGrid.timing(), TimingModel::paper());
        assert_eq!(PaperGrid.factories(&layout).len(), 1);
        assert!(PaperGrid
            .validate(ProgramShape {
                qubits: 16,
                t_count: 4
            })
            .is_ok());
        assert_eq!(SparseBus.spec(), TargetSpec::sparse());
        assert_eq!(FastD.spec(), TargetSpec::fast_d());
    }

    #[test]
    fn registry_lookup_and_replacement() {
        let registry = TargetRegistry::builtin();
        assert_eq!(registry.names(), vec!["paper", "sparse", "fast-d"]);
        assert_eq!(registry.get("paper"), Some(&TargetSpec::paper()));
        assert_eq!(registry.get("sparse"), Some(&TargetSpec::sparse()));
        assert_eq!(registry.get("fast-d"), Some(&TargetSpec::fast_d()));
        assert_eq!(registry.get("nope"), None);

        let mut registry = registry;
        let custom = TargetSpec {
            factories: 4,
            ..TargetSpec::paper()
        };
        registry.register("lab", "our lab machine", custom.clone());
        assert_eq!(registry.get("lab"), Some(&custom));
        assert_eq!(registry.entries().len(), 4);
        // Re-registering replaces in place, preserving order.
        registry.register("lab", "updated", TargetSpec::sparse());
        assert_eq!(registry.get("lab"), Some(&TargetSpec::sparse()));
        assert_eq!(registry.entries().len(), 4);
        assert_eq!(registry.entries()[3].description, "updated");
    }
}
