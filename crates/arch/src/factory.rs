//! Magic-state distillation factories.
//!
//! Each factory runs the 15-to-1 protocol \[10\], producing one high-fidelity
//! T state every `magic_production` (11d by default, \[28\]). Factories are
//! docked outside the computation grid; only their *output port* — a bus
//! cell on the grid boundary — is visible to the router. A factory block
//! occupies [`FACTORY_TILES`] logical patches, which count toward the
//! machine's qubit total and the spacetime volume (paper Fig 9 includes
//! them; the DASCOT comparison of Fig 15 excludes them).

use crate::grid::Coord;
use crate::layout::Layout;
use crate::timing::Ticks;
use serde::{Deserialize, Serialize};

/// Logical patches occupied by one 15-to-1 distillation factory block
/// (Litinski's distillation block footprint \[28\]).
pub const FACTORY_TILES: u32 = 11;

/// A grant for one magic state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MagicGrant {
    /// Index of the granting factory.
    pub factory: usize,
    /// Output port (grid boundary bus cell) where the state appears.
    pub port: Coord,
    /// Earliest time the state is available at the port.
    pub available: Ticks,
}

/// A bank of distillation factories docked on a layout's boundary.
///
/// Ports are spread evenly (clockwise) over the boundary bus cells so that
/// simultaneous deliveries from different factories contend as little as the
/// layout allows. Production is modelled per-factory: the `k`-th state of a
/// factory is ready no earlier than `k × production`, and a factory starts
/// its next state when the previous one is granted.
///
/// # Example
///
/// ```
/// use ftqc_arch::{FactoryBank, Layout, Ticks};
///
/// let layout = Layout::with_routing_paths(16, 4);
/// let mut bank = FactoryBank::dock(&layout, 2, Ticks::from_d(11.0));
/// let g = bank.acquire(Ticks::ZERO);
/// assert_eq!(g.available, Ticks::from_d(11.0)); // first state after 11d
/// ```
/// Where factory output ports sit on the layout boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PortPlacement {
    /// Ports spread evenly around the perimeter (the paper's assumption).
    #[default]
    Spread,
    /// Ports packed onto consecutive boundary cells from the top-left —
    /// the "all factories on one edge" floorplan.
    Clustered,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactoryBank {
    ports: Vec<Coord>,
    ready_at: Vec<Ticks>,
    production: Ticks,
    granted: u64,
    unbounded: bool,
}

impl FactoryBank {
    /// Docks `n_factories` factories on `layout`'s boundary bus cells,
    /// output ports spread evenly around the perimeter (the default the
    /// paper's layouts assume).
    ///
    /// # Panics
    ///
    /// Panics if `n_factories == 0` or the layout has no boundary bus cells
    /// (impossible for `r ≥ 2` layouts).
    pub fn dock(layout: &Layout, n_factories: u32, production: Ticks) -> Self {
        Self::dock_with(layout, n_factories, production, PortPlacement::Spread)
    }

    /// Docks factories with an explicit port-placement policy — the
    /// DESIGN.md "spread vs clustered" ablation. Clustered ports model a
    /// machine whose distillation blocks share one edge of the chip
    /// (shorter factory interconnect, longer delivery routes).
    ///
    /// # Panics
    ///
    /// Panics if `n_factories == 0` or the layout has no boundary bus cells.
    pub fn dock_with(
        layout: &Layout,
        n_factories: u32,
        production: Ticks,
        placement: PortPlacement,
    ) -> Self {
        assert!(n_factories > 0, "at least one factory is required");
        let sites = layout.boundary_bus_cells();
        assert!(!sites.is_empty(), "layout exposes no boundary bus cells");
        let ports = match placement {
            PortPlacement::Spread => (0..n_factories as usize)
                .map(|i| sites[i * sites.len() / n_factories as usize])
                .collect(),
            PortPlacement::Clustered => (0..n_factories as usize)
                .map(|i| sites[i.min(sites.len() - 1)])
                .collect(),
        };
        Self {
            ports,
            ready_at: vec![production; n_factories as usize],
            production,
            granted: 0,
            unbounded: false,
        }
    }

    /// A bank with an effectively unlimited supply of magic states
    /// (states are always ready) — models DASCOT's assumption \[31\].
    /// Ports still dock on the boundary so routing costs stay realistic.
    pub fn unbounded(layout: &Layout, n_ports: u32) -> Self {
        let mut bank = Self::dock(layout, n_ports.max(1), Ticks::ZERO);
        bank.unbounded = true;
        for r in &mut bank.ready_at {
            *r = Ticks::ZERO;
        }
        bank
    }

    /// Number of factories.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether the bank has no factories (never true for constructed banks).
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Whether this bank models unlimited magic-state supply.
    pub fn is_unbounded(&self) -> bool {
        self.unbounded
    }

    /// Production latency per state.
    pub fn production(&self) -> Ticks {
        self.production
    }

    /// Output ports, indexed by factory.
    pub fn ports(&self) -> &[Coord] {
        &self.ports
    }

    /// Total states granted so far.
    pub fn states_granted(&self) -> u64 {
        self.granted
    }

    /// Logical patches consumed by the factory blocks.
    pub fn total_tiles(&self) -> u32 {
        if self.unbounded {
            0
        } else {
            FACTORY_TILES * self.ports.len() as u32
        }
    }

    /// Grants the earliest-available magic state for a request at time
    /// `request`; the granting factory immediately begins its next state.
    pub fn acquire(&mut self, request: Ticks) -> MagicGrant {
        self.granted += 1;
        if self.unbounded {
            // Round-robin the ports so parallel deliveries spread out.
            let idx = (self.granted - 1) as usize % self.ports.len();
            return MagicGrant {
                factory: idx,
                port: self.ports[idx],
                available: request,
            };
        }
        let (idx, _) = self
            .ready_at
            .iter()
            .enumerate()
            .min_by_key(|(i, &r)| (r.max(request), *i))
            .expect("bank is non-empty");
        let available = self.ready_at[idx].max(request);
        self.ready_at[idx] = available + self.production;
        MagicGrant {
            factory: idx,
            port: self.ports[idx],
            available,
        }
    }

    /// Restores the bank to its initial state (for recompilation).
    pub fn reset(&mut self) {
        self.granted = 0;
        for r in &mut self.ready_at {
            *r = if self.unbounded {
                Ticks::ZERO
            } else {
                self.production
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::with_routing_paths(16, 4)
    }

    #[test]
    fn first_state_ready_after_production() {
        let mut bank = FactoryBank::dock(&layout(), 1, Ticks::from_d(11.0));
        let g = bank.acquire(Ticks::ZERO);
        assert_eq!(g.available, Ticks::from_d(11.0));
        assert_eq!(g.factory, 0);
    }

    #[test]
    fn single_factory_serialises_states() {
        let mut bank = FactoryBank::dock(&layout(), 1, Ticks::from_d(11.0));
        let g1 = bank.acquire(Ticks::ZERO);
        let g2 = bank.acquire(Ticks::ZERO);
        let g3 = bank.acquire(Ticks::ZERO);
        assert_eq!(g1.available, Ticks::from_d(11.0));
        assert_eq!(g2.available, Ticks::from_d(22.0));
        assert_eq!(g3.available, Ticks::from_d(33.0));
    }

    #[test]
    fn late_request_delays_next_production() {
        let mut bank = FactoryBank::dock(&layout(), 1, Ticks::from_d(11.0));
        // Request at 50d: state waited in the buffer, next at 61d.
        let g1 = bank.acquire(Ticks::from_d(50.0));
        assert_eq!(g1.available, Ticks::from_d(50.0));
        let g2 = bank.acquire(Ticks::from_d(50.0));
        assert_eq!(g2.available, Ticks::from_d(61.0));
    }

    #[test]
    fn multiple_factories_interleave() {
        let mut bank = FactoryBank::dock(&layout(), 2, Ticks::from_d(11.0));
        let g1 = bank.acquire(Ticks::ZERO);
        let g2 = bank.acquire(Ticks::ZERO);
        let g3 = bank.acquire(Ticks::ZERO);
        let g4 = bank.acquire(Ticks::ZERO);
        assert_eq!(g1.available, Ticks::from_d(11.0));
        assert_eq!(g2.available, Ticks::from_d(11.0));
        assert_ne!(g1.factory, g2.factory);
        assert_eq!(g3.available, Ticks::from_d(22.0));
        assert_eq!(g4.available, Ticks::from_d(22.0));
        // Lower-bound check: n states from f factories take n*T/f.
        assert_eq!(bank.states_granted(), 4);
    }

    #[test]
    fn ports_lie_on_boundary_bus_cells() {
        let l = layout();
        let bank = FactoryBank::dock(&l, 4, Ticks::from_d(11.0));
        let sites = l.boundary_bus_cells();
        for p in bank.ports() {
            assert!(sites.contains(p), "port {p} must be a boundary bus cell");
        }
        // Spread: 4 factories on a 6x6 ring should use 4 distinct ports.
        let mut unique = bank.ports().to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn clustered_ports_pack_together() {
        let layout = Layout::with_routing_paths(16, 4);
        let spread = FactoryBank::dock_with(&layout, 3, Ticks::from_d(11.0), PortPlacement::Spread);
        let clustered =
            FactoryBank::dock_with(&layout, 3, Ticks::from_d(11.0), PortPlacement::Clustered);
        let span = |ports: &[Coord]| -> u32 {
            ports
                .iter()
                .flat_map(|a| ports.iter().map(move |b| a.manhattan(*b)))
                .max()
                .unwrap_or(0)
        };
        assert!(
            span(clustered.ports()) < span(spread.ports()),
            "clustered ports should sit closer together"
        );
        // Distinct cells in both policies.
        let uniq = |ports: &[Coord]| {
            let mut v = ports.to_vec();
            v.sort();
            v.dedup();
            v.len()
        };
        assert_eq!(uniq(spread.ports()), 3);
        assert_eq!(uniq(clustered.ports()), 3);
    }

    #[test]
    fn factory_tiles_counted() {
        let bank = FactoryBank::dock(&layout(), 3, Ticks::from_d(11.0));
        assert_eq!(bank.total_tiles(), 33);
    }

    #[test]
    fn unbounded_supply_always_ready() {
        let l = layout();
        let mut bank = FactoryBank::unbounded(&l, 2);
        assert!(bank.is_unbounded());
        assert_eq!(bank.total_tiles(), 0);
        for i in 0..5u64 {
            let g = bank.acquire(Ticks::from_d(i as f64));
            assert_eq!(g.available, Ticks::from_d(i as f64));
        }
    }

    #[test]
    fn reset_restores_initial_schedule() {
        let mut bank = FactoryBank::dock(&layout(), 1, Ticks::from_d(11.0));
        bank.acquire(Ticks::ZERO);
        bank.acquire(Ticks::ZERO);
        bank.reset();
        assert_eq!(bank.states_granted(), 0);
        assert_eq!(bank.acquire(Ticks::ZERO).available, Ticks::from_d(11.0));
    }

    #[test]
    #[should_panic(expected = "at least one factory")]
    fn zero_factories_rejected() {
        FactoryBank::dock(&layout(), 0, Ticks::from_d(11.0));
    }
}
