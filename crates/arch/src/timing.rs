//! Logical time units and the per-operation latency table of the paper.
//!
//! All lattice-surgery latencies are multiples of the code distance `d`
//! (Fig 7). The S gate takes 1.5d and T-state consumption 2.5d, so the
//! internal unit is a *tick* of `0.5d`: every paper latency is an integer
//! number of ticks and all arithmetic is exact.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Number of ticks in one code-distance unit `d`.
pub const TICKS_PER_D: u64 = 2;

/// A duration or instant in half-`d` ticks.
///
/// `Ticks(2)` is `1d`; `Ticks(5)` is `2.5d`. Displayed in `d` units.
///
/// # Example
///
/// ```
/// use ftqc_arch::Ticks;
///
/// let t = Ticks::from_d(2.5);
/// assert_eq!(t + Ticks::from_d(1.0), Ticks::from_d(3.5));
/// assert_eq!(t.to_string(), "2.5d");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ticks(pub u64);

impl Ticks {
    /// Zero duration.
    pub const ZERO: Ticks = Ticks(0);

    /// Creates a duration of `d_units · d`.
    ///
    /// # Panics
    ///
    /// Panics if `d_units` is negative or not a multiple of 0.5 (all paper
    /// latencies are half-`d` multiples).
    pub fn from_d(d_units: f64) -> Self {
        let ticks = d_units * TICKS_PER_D as f64;
        assert!(
            ticks >= 0.0 && (ticks - ticks.round()).abs() < 1e-9,
            "{d_units}d is not a non-negative multiple of 0.5d"
        );
        Ticks(ticks.round() as u64)
    }

    /// The duration in `d` units.
    pub fn as_d(self) -> f64 {
        self.0 as f64 / TICKS_PER_D as f64
    }

    /// Raw tick count.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(other.0))
    }

    /// The larger of two instants.
    pub fn max(self, other: Ticks) -> Ticks {
        Ticks(self.0.max(other.0))
    }

    /// Physical duration in seconds for code distance `d` and a syndrome
    /// cycle time of `cycle_seconds` (one code cycle = one syndrome
    /// measurement round; a `1d` logical timestep is `d` code cycles).
    pub fn physical_seconds(self, code_distance: u32, cycle_seconds: f64) -> f64 {
        self.as_d() * code_distance as f64 * cycle_seconds
    }
}

impl Add for Ticks {
    type Output = Ticks;
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign for Ticks {
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub for Ticks {
    type Output = Ticks;
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl Mul<u64> for Ticks {
    type Output = Ticks;
    fn mul(self, rhs: u64) -> Ticks {
        Ticks(self.0 * rhs)
    }
}

impl Sum for Ticks {
    fn sum<I: Iterator<Item = Ticks>>(iter: I) -> Ticks {
        Ticks(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(TICKS_PER_D) {
            write!(f, "{}d", self.0 / TICKS_PER_D)
        } else {
            write!(f, "{}d", self.as_d())
        }
    }
}

/// Per-operation latencies (paper Fig 7 and §VI.A) plus distillation and
/// baseline-PPR latencies.
///
/// All fields are public so experiments can sweep them (e.g. the
/// magic-state-processing-time study of Fig 14(d)); [`TimingModel::paper`]
/// gives the defaults used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Move of a patch to an adjacent free cell: 1d.
    pub move_op: Ticks,
    /// `M_ZZ` / `M_XX` merge-split measurement: 1d.
    pub merge: Ticks,
    /// CNOT (two merges): 2d.
    pub cnot: Ticks,
    /// Hadamard (with one ancilla): 3d.
    pub hadamard: Ticks,
    /// S, S†, √X, √X† (with one ancilla): 1.5d.
    pub phase: Ticks,
    /// T-state consumption: `M_ZZ` (1d) + S correction (1.5d) = 2.5d.
    pub t_consume: Ticks,
    /// Z-basis measurement of a patch: 1d.
    pub measure: Ticks,
    /// Magic-state production latency per factory: 11d for 15-to-1 \[28\].
    pub magic_production: Ticks,
    /// PPR latency on the (modified) compact block: 4d (Appendix, Fig 17).
    pub ppr_compact: Ticks,
    /// PPR latency on the modified intermediate/fast blocks: 3d (Fig 10).
    pub ppr_fast: Ticks,
    /// Unit cost assigned to every operation when computing the paper's
    /// "unit cost execution time" (Fig 8): 1d.
    pub unit: Ticks,
}

impl TimingModel {
    /// The latencies used in the paper's evaluation.
    pub fn paper() -> Self {
        Self {
            move_op: Ticks::from_d(1.0),
            merge: Ticks::from_d(1.0),
            cnot: Ticks::from_d(2.0),
            hadamard: Ticks::from_d(3.0),
            phase: Ticks::from_d(1.5),
            t_consume: Ticks::from_d(2.5),
            measure: Ticks::from_d(1.0),
            magic_production: Ticks::from_d(11.0),
            ppr_compact: Ticks::from_d(4.0),
            ppr_fast: Ticks::from_d(3.0),
            unit: Ticks::from_d(1.0),
        }
    }

    /// Paper timings with a different magic-state production latency
    /// (the Fig 14(d) sweep).
    pub fn with_magic_production(mut self, t: Ticks) -> Self {
        self.magic_production = t;
        self
    }

    /// Every latency multiplied by `num/den`, rounded **up** to whole
    /// ticks with a 1-tick floor — the recipe behind timing-scaled targets
    /// (e.g. the `fast-d` machine at `1/2`, whose effective code distance
    /// is halved). Rounding up keeps the model conservative: a scaled
    /// machine is never credited with impossible sub-tick latencies.
    ///
    /// # Panics
    ///
    /// Panics if `num == 0` or `den == 0`.
    pub fn scaled(self, num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "scale factor must be positive");
        let scale = |t: Ticks| Ticks(((t.0 * num).div_ceil(den)).max(1));
        Self {
            move_op: scale(self.move_op),
            merge: scale(self.merge),
            cnot: scale(self.cnot),
            hadamard: scale(self.hadamard),
            phase: scale(self.phase),
            t_consume: scale(self.t_consume),
            measure: scale(self.measure),
            magic_production: scale(self.magic_production),
            ppr_compact: scale(self.ppr_compact),
            ppr_fast: scale(self.ppr_fast),
            unit: scale(self.unit),
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_d_half_multiples() {
        assert_eq!(Ticks::from_d(1.0), Ticks(2));
        assert_eq!(Ticks::from_d(2.5), Ticks(5));
        assert_eq!(Ticks::from_d(0.0), Ticks(0));
        assert_eq!(Ticks::from_d(11.0), Ticks(22));
    }

    #[test]
    #[should_panic(expected = "not a non-negative multiple")]
    fn from_d_rejects_quarter() {
        Ticks::from_d(0.75);
    }

    #[test]
    #[should_panic(expected = "not a non-negative multiple")]
    fn from_d_rejects_negative() {
        Ticks::from_d(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Ticks::from_d(1.5);
        let b = Ticks::from_d(2.0);
        assert_eq!(a + b, Ticks::from_d(3.5));
        assert_eq!(b - a, Ticks::from_d(0.5));
        assert_eq!(a * 3, Ticks::from_d(4.5));
        assert_eq!(Ticks::from_d(1.0).max(b), b);
        assert_eq!(a.saturating_sub(b), Ticks::ZERO);
        let total: Ticks = [a, b, a].into_iter().sum();
        assert_eq!(total, Ticks::from_d(5.0));
    }

    #[test]
    fn display_in_d_units() {
        assert_eq!(Ticks::from_d(3.0).to_string(), "3d");
        assert_eq!(Ticks::from_d(2.5).to_string(), "2.5d");
    }

    #[test]
    fn physical_time_conversion() {
        // d=21, 1µs cycles: 1d timestep = 21µs.
        let t = Ticks::from_d(1.0);
        assert!((t.physical_seconds(21, 1e-6) - 21e-6).abs() < 1e-12);
    }

    #[test]
    fn paper_model_values() {
        let t = TimingModel::paper();
        assert_eq!(t.move_op.as_d(), 1.0);
        assert_eq!(t.cnot.as_d(), 2.0);
        assert_eq!(t.hadamard.as_d(), 3.0);
        assert_eq!(t.phase.as_d(), 1.5);
        assert_eq!(t.t_consume.as_d(), 2.5);
        assert_eq!(t.magic_production.as_d(), 11.0);
        assert_eq!(t.ppr_compact.as_d(), 4.0);
        assert_eq!(t.ppr_fast.as_d(), 3.0);
    }

    #[test]
    fn magic_production_override() {
        let t = TimingModel::paper().with_magic_production(Ticks::from_d(5.0));
        assert_eq!(t.magic_production.as_d(), 5.0);
        assert_eq!(t.cnot.as_d(), 2.0);
    }

    #[test]
    fn scaled_rounds_up_with_a_floor() {
        let half = TimingModel::paper().scaled(1, 2);
        assert_eq!(half.cnot, Ticks::from_d(1.0));
        assert_eq!(half.magic_production, Ticks::from_d(5.5));
        // 0.5d move stays a whole tick; 1.5d phase rounds up to 2 ticks.
        assert_eq!(half.move_op, Ticks(1));
        assert_eq!(half.phase, Ticks(2));
        // Identity scale is exact; doubling is exact.
        assert_eq!(TimingModel::paper().scaled(1, 1), TimingModel::paper());
        assert_eq!(TimingModel::paper().scaled(2, 1).cnot, Ticks::from_d(4.0));
        // The floor keeps every latency at least one tick.
        assert_eq!(TimingModel::paper().scaled(1, 1000).cnot, Ticks(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        TimingModel::paper().scaled(0, 2);
    }
}
