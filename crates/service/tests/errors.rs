//! Error-path coverage for `ftqc_service::json` (truncated input, bad
//! surrogate pairs, depth-limit overflow), for worker-pool panic
//! propagation under concurrent submitters, and for the staged job model:
//! batch error lines carry the failing stage, and `stop_after` jobs bypass
//! the whole-job cache.

use ftqc_service::json::{FromJson, JsonError, ToJson, Value};
use ftqc_service::{
    render_results, BatchConfig, BatchService, CircuitSource, CompileJob, JobResult, JobStatus,
    StageOutcome, WorkerPool,
};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn truncated_documents_error_instead_of_hanging() {
    // Every prefix of a valid document must fail cleanly — no panic, no
    // accepted value.
    let full = r#"{"id":"a","xs":[1,2,{"y":"z\u00e9"}],"ok":true}"#;
    for cut in 1..full.len() {
        let prefix = &full[..cut];
        if prefix.is_char_boundary(cut) && Value::parse(prefix).is_ok() {
            panic!("prefix {prefix:?} parsed despite truncation");
        }
    }
    // Truncation inside every escape form.
    for text in [
        "\"abc",
        "\"a\\",
        "\"a\\u",
        "\"a\\u0",
        "\"a\\u00",
        "\"a\\u004",
        "[1,",
        "{\"a\":",
        "{\"a\"",
        "tru",
        "fals",
        "nul",
        "-",
    ] {
        let err = Value::parse(text).unwrap_err();
        assert!(
            err.offset >= 1,
            "{text:?} should carry an offset, got {err}"
        );
    }
}

#[test]
fn surrogate_pair_abuse_is_rejected() {
    // Lone high, lone low, high+non-low, high+garbage, high+truncated-low.
    for text in [
        "\"\\ud800\"",
        "\"\\udfff\"",
        "\"\\ud83d\\u0041\"",
        "\"\\ud83dxx\"",
        "\"\\ud83d\\ud83d\"",
        "\"\\ud83d\\ude\"",
    ] {
        assert!(Value::parse(text).is_err(), "accepted {text:?}");
    }
    // And the well-formed pair still works right next to the broken ones.
    assert_eq!(
        Value::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
        Some("😀")
    );
}

#[test]
fn depth_limit_is_exact_and_symmetric() {
    let nested = |n: usize| "[".repeat(n) + &"]".repeat(n);
    assert!(Value::parse(&nested(128)).is_ok(), "128 levels fit");
    let err = Value::parse(&nested(129)).unwrap_err();
    assert!(err.message.contains("nesting"), "got {err}");
    // Objects hit the same limit.
    let deep_obj = "{\"a\":".repeat(129) + "1" + &"}".repeat(129);
    assert!(Value::parse(&deep_obj).is_err());
    // And the writer round-trips the deepest accepted value.
    let v = Value::parse(&nested(128)).unwrap();
    assert_eq!(Value::parse(&v.render()).unwrap(), v);
}

#[test]
fn schema_helpers_name_the_field() {
    let doc = Value::parse(r#"{"n":"not a number"}"#).unwrap();
    let err = ftqc_service::json::require_u64(&doc, "n").unwrap_err();
    assert!(err.message.contains("\"n\""), "got {err}");
    let err = ftqc_service::json::require(&doc, "missing").unwrap_err();
    assert!(err.message.contains("missing"), "got {err}");
    assert_eq!(err, JsonError::schema("missing field \"missing\""));
}

/// Minimal option/metric stand-ins for the staged-job tests below (this
/// crate sits beneath the compiler, so the real `CompilerOptions` /
/// `Metrics` are not available here).
#[derive(Debug, Clone, PartialEq)]
struct Opts;

impl ToJson for Opts {
    fn to_json(&self) -> Value {
        Value::Obj(Vec::new())
    }
}

impl FromJson for Opts {
    fn from_json(_: &Value) -> Result<Self, JsonError> {
        Ok(Opts)
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Out(u64);

impl ToJson for Out {
    fn to_json(&self) -> Value {
        Value::Num(self.0 as f64)
    }
}

impl FromJson for Out {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_u64()
            .map(Out)
            .ok_or_else(|| JsonError::schema("number"))
    }
}

fn staged_service() -> BatchService<Out> {
    BatchService::new(BatchConfig {
        workers: 2,
        cache_capacity: 16,
        cache_file: None,
    })
    .expect("service")
}

fn resolve(source: &CircuitSource) -> Result<ftqc_circuit::Circuit, String> {
    // Distinct sources resolve to distinct circuits (one H per source
    // byte), so jobs over different sources never share a cache key.
    let CircuitSource::QasmInline { qasm } = source else {
        return Err("inline only".into());
    };
    let mut c = ftqc_circuit::Circuit::new(2);
    for _ in 0..qasm.len() {
        c.h(0);
    }
    c.cnot(0, 1);
    Ok(c)
}

/// A compile callback shaped like the compiler's `stage_outcome` bridge:
/// honours `stop_after`, and fails with a stage-tagged message the way a
/// `CompileError::Stage` renders.
fn staged_compile(
    _c: &ftqc_circuit::Circuit,
    job: &CompileJob<Opts>,
) -> Result<StageOutcome<Out>, String> {
    if job.id.contains("boom") {
        return Err("map stage failed after 17µs: routing failed at gate 3: congested".into());
    }
    match job.stop_after.as_deref() {
        None => Ok(StageOutcome::complete(Out(42))),
        Some(stage) => Ok(StageOutcome::partial(stage, 0xfeed_beef)),
    }
}

#[test]
fn batch_error_lines_name_the_failing_stage() {
    let svc = staged_service();
    let jsonl = concat!(
        "{\"id\":\"fine\",\"source\":{\"qasm\":\"x\"}}\n",
        "{\"id\":\"boom\",\"source\":{\"qasm\":\"xx\"}}\n",
    );
    let results = svc.run_jsonl::<Opts, _, _>(jsonl, resolve, staged_compile);
    assert!(results[0].is_ok());
    let JobStatus::Failed(message) = &results[1].status else {
        panic!("boom job must fail");
    };
    assert!(message.starts_with("map stage failed"), "got {message}");

    // The stage survives the JSONL rendering round trip, so batch output
    // files say where each job died.
    let rendered = render_results(&results);
    let line = rendered.lines().nth(1).expect("two lines");
    assert!(line.contains("map stage failed"), "got {line}");
    let back: JobResult<Out> = JobResult::from_json(&Value::parse(line).unwrap()).unwrap();
    assert_eq!(&back, &results[1]);
}

#[test]
fn stop_after_jobs_bypass_the_job_cache_and_carry_their_stage() {
    let svc = staged_service();
    let job = |id: &str, stop: Option<&str>| {
        let mut j = CompileJob::new(id, CircuitSource::QasmInline { qasm: "x".into() }, Opts);
        j.stop_after = stop.map(String::from);
        j
    };

    // A partial job: stage + artifact fingerprint, no metrics, no cache
    // traffic.
    let results = svc.run(vec![job("warm", Some("map"))], resolve, staged_compile);
    assert!(results[0].is_ok());
    assert_eq!(results[0].stage.as_deref(), Some("map"));
    assert_eq!(results[0].fingerprint, 0xfeed_beef);
    assert_eq!(results[0].metrics, None);
    let stats = svc.cache_stats();
    assert_eq!(stats.lookups(), 0, "partial jobs skip the job cache");
    assert_eq!(stats.insertions, 0);

    // The same circuit as a full job still misses (nothing partial was
    // cached), then hits on repeat.
    let first = svc.run(vec![job("full", None)], resolve, staged_compile);
    assert_eq!(first[0].metrics, Some(Out(42)));
    assert_eq!(first[0].stage, None);
    let second = svc.run(vec![job("full", None)], resolve, staged_compile);
    assert!(second[0].provenance.is_hit());
    assert_eq!(svc.cache_stats().insertions, 1);

    // JSONL round trip keeps the stage field.
    let rendered = render_results(&results);
    assert!(rendered.contains("\"stage\":\"map\""), "got {rendered}");
}

#[test]
fn pool_panics_propagate_to_each_concurrent_submitter() {
    // Four submitters share one pool value; the two whose job lists
    // contain a poisoned job must each observe *their own* panic message,
    // and the clean submitters must be unaffected.
    let pool = WorkerPool::new(3);
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for submitter in 0..4usize {
            let completed = &completed;
            handles.push((
                submitter,
                scope.spawn(move || {
                    std::panic::catch_unwind(|| {
                        pool.run((0..16u32).collect::<Vec<_>>(), move |j| {
                            // Submitters 1 and 3 poison job 7.
                            assert!(
                                !(submitter % 2 == 1 && j == 7),
                                "submitter {submitter} poisoned job {j}"
                            );
                            j * 2
                        })
                    })
                    .inspect(|_results| {
                        completed.fetch_add(1, Ordering::SeqCst);
                    })
                }),
            ));
        }
        for (submitter, handle) in handles {
            let outcome = handle.join().expect("submitter thread itself must not die");
            if submitter % 2 == 1 {
                let payload = outcome.expect_err("poisoned batch must panic");
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_default();
                assert!(
                    message.contains(&format!("submitter {submitter} poisoned job 7")),
                    "submitter {submitter} must see its own panic, got {message:?}"
                );
            } else {
                let results = outcome.expect("clean batch must complete");
                assert_eq!(results, (0..16u32).map(|j| j * 2).collect::<Vec<_>>());
            }
        }
    });
    assert_eq!(
        completed.load(Ordering::SeqCst),
        2,
        "both clean batches ran"
    );
}

#[test]
fn pool_survives_panics_in_back_to_back_batches() {
    // A pool value is reusable after a panicking run: the next run sees a
    // fresh set of scoped workers.
    let pool = WorkerPool::new(2);
    let boom = std::panic::catch_unwind(|| {
        pool.run(vec![1u32, 2, 3], |j| {
            assert!(j != 2, "boom on {j}");
            j
        })
    });
    assert!(boom.is_err());
    assert_eq!(pool.run(vec![1u32, 2, 3], |j| j + 1), vec![2, 3, 4]);
}
