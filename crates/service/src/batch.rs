//! The batch-compilation service: worker pool + compile cache glued under
//! the job model.
//!
//! [`BatchService::run`] takes a job list, a circuit resolver, and a
//! compile function, fans the jobs across the pool, answers repeats from
//! the content-addressed cache, and returns results in submission order.
//! The service is generic over the option type `O` and metrics type `M`;
//! the compiler and CLI instantiate it with `CompilerOptions` / `Metrics`.

use crate::cache::{CacheStats, CacheTier, CompileCache, SharedCache};
use crate::fingerprint;
use crate::job::{CacheProvenance, CompileJob, JobResult, JobStatus, StageOutcome};
use crate::json::{FromJson, JsonError, ToJson};
use crate::pool::WorkerPool;
use ftqc_circuit::Circuit;
use std::path::PathBuf;
use std::time::Instant;

/// Sizing and persistence knobs for a [`BatchService`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads (0 ⇒ the machine's available parallelism).
    pub workers: usize,
    /// Memory-tier capacity of the compile cache.
    pub cache_capacity: usize,
    /// Optional file-backed cache tier for cross-run reuse.
    pub cache_file: Option<PathBuf>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 0,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            cache_file: None,
        }
    }
}

/// A reusable batch-compilation service holding a pool and a cache.
///
/// Keep one service alive across batches to benefit from the cache; see
/// [`BatchService::cache_stats`] for how much it saved.
#[derive(Debug)]
pub struct BatchService<M> {
    pool: WorkerPool,
    cache: SharedCache<M>,
}

impl<M: Clone + Send + FromJson> BatchService<M> {
    /// Builds a service from `config`, loading the file cache tier when
    /// one is configured.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the configured cache file exists but is
    /// malformed.
    pub fn new(config: BatchConfig) -> Result<Self, JsonError> {
        let pool = if config.workers == 0 {
            WorkerPool::auto()
        } else {
            WorkerPool::new(config.workers)
        };
        let mut cache = CompileCache::new(config.cache_capacity);
        if let Some(path) = &config.cache_file {
            cache = cache.with_file_tier(path)?;
        }
        Ok(BatchService {
            pool,
            cache: SharedCache::new(cache),
        })
    }

    /// A service over a caller-owned shared cache (0 workers ⇒ all cores):
    /// how a long-lived process (e.g. the HTTP server) points several
    /// request paths at one process-wide cache so concurrent clients warm
    /// each other.
    pub fn with_cache(workers: usize, cache: SharedCache<M>) -> Self {
        let pool = if workers == 0 {
            WorkerPool::auto()
        } else {
            WorkerPool::new(workers)
        };
        BatchService { pool, cache }
    }

    /// Runs a batch: `resolve` turns each job's source into a circuit,
    /// `compile` produces a [`StageOutcome`] on cache misses (plain full
    /// compiles return `StageOutcome::complete(metrics)`). Results come
    /// back in submission order with cache provenance and per-job timing.
    ///
    /// Jobs carrying a `stop_after` stage bypass the whole-job metrics
    /// cache on both lookup and insert — a partial artifact is not a full
    /// result; stage-granular reuse is the compiler's stage cache's job,
    /// which the compile callback is expected to consult.
    ///
    /// Identical jobs inside one batch deduplicate best-effort: a twin
    /// claimed after the first copy finished hits the cache, one claimed
    /// while the first is still compiling is computed again (same result,
    /// wasted work — there is no in-flight wait). Across batches on the
    /// same service, deduplication is exact.
    pub fn run<O, R, C>(
        &self,
        jobs: Vec<CompileJob<O>>,
        resolve: R,
        compile: C,
    ) -> Vec<JobResult<M>>
    where
        O: ToJson + Send,
        R: Fn(&crate::job::CircuitSource) -> Result<Circuit, String> + Sync,
        C: Fn(&Circuit, &CompileJob<O>) -> Result<StageOutcome<M>, String> + Sync,
    {
        self.run_streamed(jobs, resolve, compile, |_, _| {})
    }

    /// [`BatchService::run`] with a streaming hook: `emit(index, &result)`
    /// fires in submission order as each result's ordered prefix completes
    /// (see [`WorkerPool::run_with`]) — the seam that lets the server
    /// write JSONL batch lines onto the wire while later jobs are still
    /// compiling.
    pub fn run_streamed<O, R, C, E>(
        &self,
        jobs: Vec<CompileJob<O>>,
        resolve: R,
        compile: C,
        emit: E,
    ) -> Vec<JobResult<M>>
    where
        O: ToJson + Send,
        R: Fn(&crate::job::CircuitSource) -> Result<Circuit, String> + Sync,
        C: Fn(&Circuit, &CompileJob<O>) -> Result<StageOutcome<M>, String> + Sync,
        E: FnMut(usize, &JobResult<M>),
    {
        let cache = &self.cache;
        let resolve = &resolve;
        let compile = &compile;
        // The closure body runs the moment a worker claims the job off the
        // pool's queue, so "now minus submission" is exactly the queue wait.
        let submitted = Instant::now();
        let run_one = move |job: CompileJob<O>| {
            let start = Instant::now();
            let queue_micros = u64::try_from((start - submitted).as_micros()).unwrap_or(u64::MAX);
            let done = |status, fingerprint, metrics, provenance, stage| JobResult {
                id: job.id.clone(),
                fingerprint,
                status,
                metrics,
                provenance,
                micros: start.elapsed().as_micros() as u64,
                queue_micros,
                stage,
                witness: None,
            };

            let circuit = match resolve(&job.source) {
                Ok(c) => c,
                Err(e) => {
                    return done(
                        JobStatus::Failed(format!("cannot resolve {}: {e}", job.source)),
                        0,
                        None,
                        CacheProvenance::Computed,
                        None,
                    )
                }
            };
            let fp = fingerprint::combine(
                fingerprint::fingerprint_circuit(&circuit),
                fingerprint::fingerprint_value(&job.options.to_json()),
            );
            let full = job.stop_after.is_none();
            if full {
                if let Some(hit) = cache.get(fp) {
                    let provenance = match hit.tier {
                        CacheTier::Memory => CacheProvenance::MemoryHit,
                        CacheTier::File => CacheProvenance::FileHit,
                    };
                    return done(JobStatus::Ok, fp, Some(hit.value), provenance, None);
                }
            }
            match compile(&circuit, &job) {
                Ok(outcome) => {
                    if full {
                        if let Some(m) = &outcome.metrics {
                            cache.insert(fp, m.clone());
                        }
                    }
                    done(
                        JobStatus::Ok,
                        outcome.fingerprint.unwrap_or(fp),
                        outcome.metrics,
                        CacheProvenance::Computed,
                        outcome.stage,
                    )
                }
                Err(e) => done(
                    JobStatus::Failed(e),
                    fp,
                    None,
                    CacheProvenance::Computed,
                    None,
                ),
            }
        };
        self.pool.run_with(jobs, run_one, emit)
    }

    /// Runs a JSONL batch leniently: every well-formed line compiles as
    /// usual, and a malformed line yields an error result naming its line
    /// number ([`JobResult::malformed_line`]) instead of aborting the
    /// batch. Results come back in line order. An empty vector means the
    /// input had no jobs at all.
    pub fn run_jsonl<O, R, C>(&self, jsonl: &str, resolve: R, compile: C) -> Vec<JobResult<M>>
    where
        O: FromJson + ToJson + Send,
        R: Fn(&crate::job::CircuitSource) -> Result<Circuit, String> + Sync,
        C: Fn(&Circuit, &CompileJob<O>) -> Result<StageOutcome<M>, String> + Sync,
    {
        self.run_jsonl_with(jsonl, Ok, resolve, compile)
    }

    /// [`BatchService::run_jsonl`] with a per-job `prepare` transform
    /// applied right after parsing and **before** the job is fingerprinted
    /// or looked up — the seam where job-level directives that change what
    /// gets compiled (resolving a named hardware target into the options,
    /// say) must run so the cache key reflects them. A transform failure
    /// fails that job alone, like a malformed line.
    pub fn run_jsonl_with<O, P, R, C>(
        &self,
        jsonl: &str,
        prepare: P,
        resolve: R,
        compile: C,
    ) -> Vec<JobResult<M>>
    where
        O: FromJson + ToJson + Send,
        P: Fn(CompileJob<O>) -> Result<CompileJob<O>, String>,
        R: Fn(&crate::job::CircuitSource) -> Result<Circuit, String> + Sync,
        C: Fn(&Circuit, &CompileJob<O>) -> Result<StageOutcome<M>, String> + Sync,
    {
        run_jsonl_via(jsonl, prepare, |jobs| self.run(jobs, resolve, compile))
    }

    /// Cache counters accumulated across every batch this service ran.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared cache handle (e.g. to seed or inspect it).
    pub fn cache(&self) -> &SharedCache<M> {
        &self.cache
    }

    /// The pool's worker count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Writes the cache's file tier, when one is configured.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from writing the file.
    pub fn persist_cache(&self) -> std::io::Result<()>
    where
        M: ToJson,
    {
        self.cache.persist()
    }
}

/// The lenient-JSONL framing shared by every batch runner: parse lines,
/// apply `prepare`, hand the well-formed jobs to `run` **as one vector**,
/// and splice its results back into line order around the malformed-line
/// and failed-prepare slots. `run` must return exactly one result per job
/// in submission order — [`BatchService::run`] does, and so must any
/// remote dispatcher (e.g. a fleet coordinator) injected here.
pub fn run_jsonl_via<O, M, P, F>(jsonl: &str, prepare: P, run: F) -> Vec<JobResult<M>>
where
    O: FromJson,
    P: Fn(CompileJob<O>) -> Result<CompileJob<O>, String>,
    F: FnOnce(Vec<CompileJob<O>>) -> Vec<JobResult<M>>,
{
    run_jsonl_streamed_via(jsonl, prepare, |jobs, _sink| run(jobs), |_| {})
}

/// [`run_jsonl_via`] with line streaming: `emit_line` receives every
/// result **in line order**, each as early as possible — a malformed-line
/// result immediately, a compiled result the moment `run` reports it via
/// its sink (`sink(job_index, &result)`, job indices in submission order,
/// as [`crate::pool::WorkerPool::run_with`] provides). A `run` that never
/// calls its sink still works: its results are emitted together after it
/// returns. The full in-order result list is returned either way.
pub fn run_jsonl_streamed_via<O, M, P, F, E>(
    jsonl: &str,
    prepare: P,
    run: F,
    mut emit_line: E,
) -> Vec<JobResult<M>>
where
    O: FromJson,
    P: Fn(CompileJob<O>) -> Result<CompileJob<O>, String>,
    F: FnOnce(Vec<CompileJob<O>>, &mut dyn FnMut(usize, &JobResult<M>)) -> Vec<JobResult<M>>,
    E: FnMut(&JobResult<M>),
{
    let lines = crate::job::parse_jobs_lenient::<O>(jsonl);
    let mut slots: Vec<Option<JobResult<M>>> = Vec::with_capacity(lines.len());
    let mut jobs = Vec::new();
    let mut job_slots = Vec::new();
    for line in lines {
        match line {
            crate::job::ParsedLine::Job { job, .. } => {
                let id = job.id.clone();
                match prepare(job) {
                    Ok(job) => {
                        job_slots.push(slots.len());
                        slots.push(None);
                        jobs.push(job);
                    }
                    Err(e) => slots.push(Some(JobResult {
                        id,
                        fingerprint: 0,
                        status: JobStatus::Failed(e),
                        metrics: None,
                        provenance: CacheProvenance::Computed,
                        micros: 0,
                        queue_micros: 0,
                        stage: None,
                        witness: None,
                    })),
                }
            }
            crate::job::ParsedLine::Malformed { lineno, error } => {
                slots.push(Some(JobResult::malformed_line(lineno, &error)));
            }
        }
    }
    // Stream in line order: when the runner reports job `j`, every line
    // before job `j`'s is either an earlier job (already streamed — jobs
    // arrive in submission order) or a pre-filled malformed/failed slot.
    let mut cursor = 0;
    let results = {
        let slots = &slots;
        let job_slots = &job_slots;
        let cursor = &mut cursor;
        let emit_line = &mut emit_line;
        let mut sink = move |job_index: usize, result: &JobResult<M>| {
            let target = job_slots[job_index];
            while *cursor < target {
                emit_line(slots[*cursor].as_ref().expect("pre-job slots are filled"));
                *cursor += 1;
            }
            if *cursor == target {
                emit_line(result);
                *cursor += 1;
            }
        };
        run(jobs, &mut sink)
    };
    debug_assert_eq!(results.len(), job_slots.len(), "one result per job");
    for (slot, result) in job_slots.into_iter().zip(results) {
        slots[slot] = Some(result);
    }
    // Whatever was not streamed (trailing malformed lines; everything,
    // for a runner that ignored its sink) goes out now, still in order.
    for slot in &slots[cursor..] {
        emit_line(slot.as_ref().expect("every line produced a result"));
    }
    slots
        .into_iter()
        .map(|s| s.expect("every line produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::CircuitSource;
    use crate::json::{JsonError, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, Clone, PartialEq)]
    struct Opts {
        cost: u64,
    }

    impl ToJson for Opts {
        fn to_json(&self) -> Value {
            Value::Obj(vec![("cost".to_string(), Value::Num(self.cost as f64))])
        }
    }

    impl FromJson for Opts {
        fn from_json(value: &Value) -> Result<Self, JsonError> {
            Ok(Opts {
                cost: value.get("cost").and_then(Value::as_u64).unwrap_or(1),
            })
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Out {
        gates_times_cost: u64,
    }

    impl ToJson for Out {
        fn to_json(&self) -> Value {
            Value::Obj(vec![(
                "gates_times_cost".to_string(),
                Value::Num(self.gates_times_cost as f64),
            )])
        }
    }

    impl FromJson for Out {
        fn from_json(value: &Value) -> Result<Self, JsonError> {
            Ok(Out {
                gates_times_cost: crate::json::require_u64(value, "gates_times_cost")?,
            })
        }
    }

    fn job(id: &str, qasm_gates: u32, cost: u64) -> CompileJob<Opts> {
        // Inline "qasm" is abused as a gate count so the resolver can build
        // distinguishable circuits without a parser.
        CompileJob::new(
            id,
            CircuitSource::QasmInline {
                qasm: qasm_gates.to_string(),
            },
            Opts { cost },
        )
    }

    fn resolver(source: &CircuitSource) -> Result<Circuit, String> {
        match source {
            CircuitSource::QasmInline { qasm } => {
                let gates: u32 = qasm.parse().map_err(|_| "bad gate count".to_string())?;
                let mut c = Circuit::new(2);
                for _ in 0..gates {
                    c.h(0);
                }
                Ok(c)
            }
            other => Err(format!("unsupported source {other}")),
        }
    }

    fn service() -> BatchService<Out> {
        BatchService::new(BatchConfig {
            workers: 3,
            cache_capacity: 64,
            cache_file: None,
        })
        .unwrap()
    }

    #[test]
    fn results_in_submission_order_with_provenance() {
        let svc = service();
        let compiles = AtomicUsize::new(0);
        let compile = |c: &Circuit, job: &CompileJob<Opts>| {
            compiles.fetch_add(1, Ordering::SeqCst);
            Ok(StageOutcome::complete(Out {
                gates_times_cost: c.len() as u64 * job.options.cost,
            }))
        };
        // Jobs 0 and 3 are identical: one compiles, one hits.
        let jobs = vec![
            job("a", 5, 2),
            job("b", 6, 2),
            job("c", 5, 3),
            job("a2", 5, 2),
        ];
        let results = svc.run(jobs, resolver, compile);
        assert_eq!(
            results.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c", "a2"]
        );
        assert!(results.iter().all(JobResult::is_ok));
        assert_eq!(
            results[0].metrics,
            Some(Out {
                gates_times_cost: 10
            })
        );
        assert_eq!(results[3].metrics, results[0].metrics);
        assert_eq!(results[0].fingerprint, results[3].fingerprint);
        // Three distinct (circuit, options) pairs; the duplicate either hit
        // the cache or (if claimed while its twin was still compiling) was
        // computed again — intra-batch dedup is best-effort.
        let compiled = compiles.load(Ordering::SeqCst) as u64;
        let hits = svc.cache_stats().hits;
        assert!((3..=4).contains(&compiled), "got {compiled} compiles");
        assert_eq!(compiled + hits, 4, "every job compiled or hit");
    }

    #[test]
    fn second_identical_batch_is_all_hits() {
        let svc = service();
        let compile = |c: &Circuit, job: &CompileJob<Opts>| {
            Ok(StageOutcome::complete(Out {
                gates_times_cost: c.len() as u64 * job.options.cost,
            }))
        };
        let jobs = || vec![job("a", 4, 1), job("b", 9, 1), job("c", 4, 7)];
        let first = svc.run(jobs(), resolver, compile);
        let second = svc.run(jobs(), resolver, compile);
        assert!(first
            .iter()
            .all(|r| r.provenance == CacheProvenance::Computed));
        assert!(second
            .iter()
            .all(|r| r.provenance == CacheProvenance::MemoryHit));
        for (f, s) in first.iter().zip(&second) {
            assert_eq!(f.metrics, s.metrics);
            assert_eq!(f.fingerprint, s.fingerprint);
        }
        let stats = svc.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn jsonl_batches_survive_malformed_lines() {
        let svc = service();
        let compile = |c: &Circuit, job: &CompileJob<Opts>| {
            Ok(StageOutcome::complete(Out {
                gates_times_cost: c.len() as u64 * job.options.cost,
            }))
        };
        let jsonl = concat!(
            "{\"id\":\"a\",\"source\":{\"qasm\":\"4\"},\"options\":{\"cost\":2}}\n",
            "{nope}\n",
            "# comment\n",
            "{\"source\":{\"qasm\":\"3\"}}\n",
        );
        let results = svc.run_jsonl::<Opts, _, _>(jsonl, resolver, compile);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert_eq!(
            results[0].metrics,
            Some(Out {
                gates_times_cost: 8
            })
        );
        assert_eq!(results[1].id, "line-2");
        assert!(matches!(&results[1].status, JobStatus::Failed(e) if e.starts_with("line 2: ")));
        assert_eq!(results[2].id, "job-4", "default id names the source line");
        assert!(results[2].is_ok());
        assert!(svc
            .run_jsonl::<Opts, _, _>("# nothing here\n", resolver, compile)
            .is_empty());
    }

    fn fabricated(id: &str) -> JobResult<Out> {
        JobResult {
            id: id.to_string(),
            fingerprint: 0,
            status: JobStatus::Failed("fabricated".into()),
            metrics: None,
            provenance: CacheProvenance::Computed,
            micros: 0,
            queue_micros: 0,
            stage: None,
            witness: None,
        }
    }

    const STREAM_JSONL: &str = concat!(
        "{\"id\":\"a\",\"source\":{\"qasm\":\"1\"}}\n",
        "{nope}\n",
        "{\"id\":\"b\",\"source\":{\"qasm\":\"2\"}}\n",
        "{also bad\n",
    );

    #[test]
    fn streamed_framing_emits_lines_in_order_as_jobs_complete() {
        use std::cell::RefCell;
        let streamed: RefCell<Vec<String>> = RefCell::new(Vec::new());
        let results = run_jsonl_streamed_via::<Opts, Out, _, _, _>(
            STREAM_JSONL,
            Ok,
            |jobs, sink| {
                assert_eq!(jobs.len(), 2);
                let results: Vec<JobResult<Out>> = jobs.iter().map(|j| fabricated(&j.id)).collect();
                for (i, r) in results.iter().enumerate() {
                    sink(i, r);
                    // The job's line (and every line before it) is on the
                    // wire before the batch finishes.
                    assert_eq!(streamed.borrow().last(), Some(&r.id));
                }
                results
            },
            |r| streamed.borrow_mut().push(r.id.clone()),
        );
        let ids: Vec<String> = results.iter().map(|r| r.id.clone()).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], "a");
        assert_eq!(ids[2], "b");
        assert_eq!(streamed.into_inner(), ids, "streamed order is line order");
    }

    #[test]
    fn streamed_framing_tolerates_a_runner_that_never_streams() {
        let mut streamed = Vec::new();
        let results = run_jsonl_streamed_via::<Opts, Out, _, _, _>(
            STREAM_JSONL,
            Ok,
            |jobs, _sink| jobs.iter().map(|j| fabricated(&j.id)).collect(),
            |r| streamed.push(r.id.clone()),
        );
        let ids: Vec<String> = results.iter().map(|r| r.id.clone()).collect();
        assert_eq!(streamed, ids, "everything still goes out, in order");
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn queue_wait_is_measured_per_job() {
        // One worker, jobs that sleep: the second job's queue wait covers
        // at least the first job's compile time.
        let svc = BatchService::<Out>::new(BatchConfig {
            workers: 1,
            cache_capacity: 16,
            cache_file: None,
        })
        .unwrap();
        let compile = |c: &Circuit, job: &CompileJob<Opts>| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            Ok(StageOutcome::complete(Out {
                gates_times_cost: c.len() as u64 * job.options.cost,
            }))
        };
        let results = svc.run(vec![job("a", 3, 1), job("b", 4, 1)], resolver, compile);
        assert!(
            results[1].queue_micros >= 8_000,
            "job b waited behind job a, got {}µs",
            results[1].queue_micros
        );
        assert!(
            results[0].queue_micros < results[1].queue_micros,
            "the first claimed job waits less"
        );
    }

    #[test]
    fn failures_are_reported_not_cached() {
        let svc = service();
        let compile = |c: &Circuit, _job: &CompileJob<Opts>| {
            if c.len() > 5 {
                Err("too big".to_string())
            } else {
                Ok(StageOutcome::complete(Out {
                    gates_times_cost: 1,
                }))
            }
        };
        let results = svc.run(vec![job("ok", 3, 1), job("bad", 9, 1)], resolver, compile);
        assert!(results[0].is_ok());
        assert_eq!(results[1].status, JobStatus::Failed("too big".into()));
        assert_eq!(results[1].metrics, None);
        // The failure is not cached: running again recompiles it.
        let again = svc.run(vec![job("bad", 9, 1)], resolver, compile);
        assert_eq!(again[0].provenance, CacheProvenance::Computed);
    }

    #[test]
    fn unresolvable_sources_fail_gracefully() {
        let svc = service();
        let results = svc.run(
            vec![CompileJob::new(
                "x",
                CircuitSource::Benchmark {
                    name: "nope".into(),
                    size: None,
                },
                Opts { cost: 1 },
            )],
            resolver,
            |_c: &Circuit, _job: &CompileJob<Opts>| {
                Ok(StageOutcome::complete(Out {
                    gates_times_cost: 0,
                }))
            },
        );
        assert!(!results[0].is_ok());
        assert_eq!(results[0].fingerprint, 0);
    }

    #[test]
    fn file_tier_survives_service_restart() {
        let dir = std::env::temp_dir().join("ftqc-service-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batch-cache.json");
        let _ = std::fs::remove_file(&path);
        let config = BatchConfig {
            workers: 2,
            cache_capacity: 16,
            cache_file: Some(path.clone()),
        };
        let compile = |c: &Circuit, job: &CompileJob<Opts>| {
            Ok(StageOutcome::complete(Out {
                gates_times_cost: c.len() as u64 * job.options.cost,
            }))
        };

        let svc = BatchService::<Out>::new(config.clone()).unwrap();
        let first = svc.run(vec![job("a", 4, 2)], resolver, compile);
        svc.persist_cache().unwrap();

        let svc2 = BatchService::<Out>::new(config).unwrap();
        let second = svc2.run(vec![job("a", 4, 2)], resolver, compile);
        assert_eq!(second[0].provenance, CacheProvenance::FileHit);
        assert_eq!(second[0].metrics, first[0].metrics);
    }
}
