//! Circuit resolution shared by every front end — the CLI, the HTTP
//! server's request handlers, and the sweep binaries: benchmark names
//! (with the `name:L` size convention), QASM files, and inline QASM all
//! funnel through here, so the front ends cannot drift on what a
//! `"source"` means.
//!
//! Two trust levels: [`resolve_source`] is for *local* callers and may
//! read QASM files from disk; [`resolve_source_remote`] is for requests
//! that crossed a network boundary and refuses anything that would touch
//! the server's filesystem.

use crate::job::CircuitSource;
use ftqc_benchmarks::suite::Benchmark;
use ftqc_circuit::{parse_qasm, Circuit};

/// Synthetic workload circuits resolvable by name (outside the Table I
/// suite): the repeat-heavy path-table workload and the CNOT-wide
/// parallel-routing workload.
fn is_workload(name: &str) -> bool {
    matches!(name, "magic-rounds" | "cnot-bricks")
}

/// Maps a benchmark name (as the CLI and job files spell it) to the suite.
fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    match name {
        "ising" => Some(Benchmark::Ising2d),
        "heisenberg" => Some(Benchmark::Heisenberg2d),
        "fermi-hubbard" | "fh" => Some(Benchmark::FermiHubbard2d),
        "ghz" => Some(Benchmark::Ghz),
        "adder" => Some(Benchmark::Adder),
        "multiplier" => Some(Benchmark::Multiplier),
        _ => None,
    }
}

/// Builds a benchmark circuit, honouring the optional `:L` size.
fn benchmark_circuit(name: &str, size: Option<u32>) -> Result<Circuit, String> {
    // Synthetic workload circuits live outside the Table I suite; `:L`
    // picks the round/layer count.
    if name == "magic-rounds" {
        return Ok(ftqc_benchmarks::magic_rounds(24, size.unwrap_or(16)));
    }
    if name == "cnot-bricks" {
        return Ok(ftqc_benchmarks::cnot_bricks(128, size.unwrap_or(12)));
    }
    let b = benchmark_by_name(name).ok_or_else(|| format!("no such benchmark {name:?}"))?;
    match size {
        None => Ok(b.circuit()),
        Some(l) => b
            .circuit_at(l)
            .ok_or_else(|| format!("{name} has no size parameter (drop `:{l}`)")),
    }
}

/// Resolves a circuit spec: a benchmark name (optionally `name:L` for a
/// lattice side), or a path to an OpenQASM 2 file.
///
/// # Errors
///
/// A human-readable message naming what could not be resolved.
pub fn load_circuit_spec(spec: &str) -> Result<Circuit, String> {
    let (name, size) = match spec.split_once(':') {
        Some((n, l)) => {
            let l: u32 = l.parse().map_err(|_| format!("bad size in {spec:?}"))?;
            (n, Some(l))
        }
        None => (spec, None),
    };
    if is_workload(name) || benchmark_by_name(name).is_some() {
        return benchmark_circuit(name, size);
    }
    let src = std::fs::read_to_string(name)
        .map_err(|e| format!("no benchmark or readable file {name:?}: {e}"))?;
    parse_qasm(&src).map_err(|e| format!("QASM parse error: {e}"))
}

/// Resolves a job's [`CircuitSource`] for a *local* caller (the CLI, a
/// sweep binary): QASM file paths are read from this process's
/// filesystem. The error string becomes the job's failure text.
///
/// # Errors
///
/// A human-readable message naming what could not be resolved.
pub fn resolve_source(source: &CircuitSource) -> Result<Circuit, String> {
    match source {
        CircuitSource::Benchmark { name, size } => {
            // Via the spec path so `name:L` spellings inside "name" keep
            // working the same as on the command line.
            let spec = match size {
                None => name.clone(),
                Some(l) => format!("{name}:{l}"),
            };
            load_circuit_spec(&spec)
        }
        CircuitSource::QasmFile { path } => load_circuit_spec(path),
        CircuitSource::QasmInline { qasm } => {
            parse_qasm(qasm).map_err(|e| format!("QASM parse error: {e}"))
        }
    }
}

/// Resolves a job's [`CircuitSource`] for a *remote* caller (the HTTP
/// server): only built-in benchmark names and inline QASM are accepted.
/// `qasm_file` sources — and benchmark names that are not in the suite,
/// which the local resolver would treat as paths — are rejected rather
/// than handing network clients a read probe into the server's
/// filesystem.
///
/// # Errors
///
/// A human-readable message naming what could not be resolved.
pub fn resolve_source_remote(source: &CircuitSource) -> Result<Circuit, String> {
    match source {
        CircuitSource::Benchmark { name, size } => benchmark_circuit(name, *size),
        CircuitSource::QasmFile { path } => Err(format!(
            "\"qasm_file\" sources are not served remotely (the server does not read {path:?} \
             from its own filesystem); send the program as inline \"qasm\" instead"
        )),
        CircuitSource::QasmInline { qasm } => {
            parse_qasm(qasm).map_err(|e| format!("QASM parse error: {e}"))
        }
    }
}

/// Turns a CLI circuit spec into the [`CircuitSource`] a *remote* server
/// can resolve: benchmark names travel by name, but file paths are read
/// locally and shipped as inline QASM (the server does not share the
/// client's filesystem).
///
/// # Errors
///
/// A human-readable message when a file path cannot be read.
pub fn source_from_spec(spec: &str) -> Result<CircuitSource, String> {
    let (name, size) = match spec.split_once(':') {
        Some((n, l)) => match l.parse::<u32>() {
            Ok(l) => (n, Some(l)),
            Err(_) => (spec, None),
        },
        None => (spec, None),
    };
    if is_workload(name) || benchmark_by_name(name).is_some() {
        return Ok(CircuitSource::Benchmark {
            name: name.to_string(),
            size,
        });
    }
    let qasm = std::fs::read_to_string(spec)
        .map_err(|e| format!("no benchmark or readable file {spec:?}: {e}"))?;
    Ok(CircuitSource::QasmInline { qasm })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";

    #[test]
    fn specs_resolve_benchmarks_and_sizes() {
        assert!(load_circuit_spec("ising:2").is_ok());
        assert!(load_circuit_spec("ghz").is_ok());
        assert!(load_circuit_spec("ghz:3").is_err(), "ghz has no size");
        assert!(load_circuit_spec("ising:banana").is_err());
        assert!(load_circuit_spec("nope").is_err());
    }

    #[test]
    fn magic_rounds_workload_resolves_with_round_count() {
        let default = load_circuit_spec("magic-rounds").expect("default rounds");
        assert_eq!(default.num_qubits(), 24);
        let short = load_circuit_spec("magic-rounds:4").expect("explicit rounds");
        assert!(short.len() < default.len());
        // And it travels by name to a remote server.
        let src = source_from_spec("magic-rounds:4").expect("source");
        assert!(matches!(src, CircuitSource::Benchmark { .. }));
        assert!(resolve_source_remote(&src).is_ok());
    }

    #[test]
    fn cnot_bricks_workload_resolves_with_layer_count() {
        let default = load_circuit_spec("cnot-bricks").expect("default layers");
        assert_eq!(default.num_qubits(), 128);
        let short = load_circuit_spec("cnot-bricks:2").expect("explicit layers");
        assert!(short.len() < default.len());
        let src = source_from_spec("cnot-bricks:2").expect("source");
        assert!(matches!(src, CircuitSource::Benchmark { .. }));
        assert!(resolve_source_remote(&src).is_ok());
    }

    #[test]
    fn sources_resolve_all_forms_locally() {
        let c = resolve_source(&CircuitSource::Benchmark {
            name: "ising".into(),
            size: Some(2),
        })
        .unwrap();
        assert!(c.num_qubits() > 0);
        let inline = resolve_source(&CircuitSource::QasmInline { qasm: BELL.into() }).unwrap();
        assert_eq!(inline.num_qubits(), 2);
        assert!(resolve_source(&CircuitSource::Benchmark {
            name: "nope".into(),
            size: None,
        })
        .is_err());
    }

    #[test]
    fn remote_resolution_never_touches_the_filesystem() {
        // Benchmarks and inline QASM work…
        assert!(resolve_source_remote(&CircuitSource::Benchmark {
            name: "ising".into(),
            size: Some(2),
        })
        .is_ok());
        assert!(resolve_source_remote(&CircuitSource::QasmInline { qasm: BELL.into() }).is_ok());
        // …but file paths are refused even when the file exists, and
        // unknown benchmark names do not fall through to a path probe.
        let dir = std::env::temp_dir().join("ftqc-service-resolve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exists.qasm");
        std::fs::write(&path, BELL).unwrap();
        let err = resolve_source_remote(&CircuitSource::QasmFile {
            path: path.to_str().unwrap().to_string(),
        })
        .unwrap_err();
        assert!(err.contains("not served remotely"), "got {err}");
        let err = resolve_source_remote(&CircuitSource::Benchmark {
            name: path.to_str().unwrap().to_string(),
            size: None,
        })
        .unwrap_err();
        assert!(err.contains("no such benchmark"), "got {err}");
    }

    #[test]
    fn spec_to_source_ships_files_inline() {
        assert_eq!(
            source_from_spec("ising:4").unwrap(),
            CircuitSource::Benchmark {
                name: "ising".into(),
                size: Some(4)
            }
        );
        let dir = std::env::temp_dir().join("ftqc-service-resolve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bell.qasm");
        std::fs::write(&path, BELL).unwrap();
        let src = source_from_spec(path.to_str().unwrap()).unwrap();
        assert!(matches!(src, CircuitSource::QasmInline { .. }));
        assert!(source_from_spec("/nonexistent/foo.qasm").is_err());
    }
}
