//! `ftqc-service` — the parallel batch-compilation service.
//!
//! The paper's design-space exploration compiles one circuit across a grid
//! of routing-path × factory configurations; this crate turns that
//! single-shot research pipeline into a throughput-oriented subsystem that
//! every sweep binary and the CLI share. Three layers:
//!
//! * [`job`] — the batch job model: [`CompileJob`] (circuit source +
//!   options) and [`JobResult`] (metrics, status, timing, cache
//!   provenance), carried in a JSON-lines format.
//! * [`pool`] — a deterministic [`WorkerPool`]: jobs fan out across
//!   `std::thread` workers and results merge in submission order, so a
//!   parallel run is byte-identical to a serial one.
//! * [`cache`] — a content-addressed [`CompileCache`]: a 64-bit
//!   fingerprint of *(canonical circuit, canonical options)* maps to the
//!   compile result, with an in-memory LRU tier, an optional JSON
//!   file-backed tier for cross-run reuse, and hit/miss/eviction counters.
//!
//! [`batch::BatchService`] glues the three together. The crate sits
//! *below* the compiler and is generic over the option/metrics types, so
//! `ftqc_compiler::explore_parallel` can route through the same pool and
//! cache without a dependency cycle; the compiler and CLI instantiate the
//! generics with `CompilerOptions` / `Metrics`.
//!
//! Serialization note: the crates.io `serde`/`serde_json` stack is not
//! available offline (the workspace `serde` is a no-op marker stub), so
//! the wire format is implemented honestly in [`json`] — a small
//! canonical-JSON value model whose deterministic rendering doubles as the
//! fingerprint pre-image.
//!
//! # Example
//!
//! ```
//! use ftqc_service::{BatchConfig, BatchService, CompileJob, CircuitSource, StageOutcome};
//! use ftqc_service::json::{FromJson, JsonError, ToJson, Value};
//! use ftqc_circuit::Circuit;
//!
//! // A toy "compiler": metrics = gate count. Real callers plug in
//! // ftqc_compiler::Compiler and its Metrics.
//! #[derive(Clone)]
//! struct GateCount(u64);
//! impl ToJson for GateCount {
//!     fn to_json(&self) -> Value { Value::Num(self.0 as f64) }
//! }
//! impl FromJson for GateCount {
//!     fn from_json(v: &Value) -> Result<Self, JsonError> {
//!         v.as_u64().map(GateCount).ok_or_else(|| JsonError::schema("number"))
//!     }
//! }
//! #[derive(Clone)]
//! struct NoOptions;
//! impl ToJson for NoOptions {
//!     fn to_json(&self) -> Value { Value::Obj(vec![]) }
//! }
//!
//! let service: BatchService<GateCount> = BatchService::new(BatchConfig {
//!     workers: 2,
//!     ..BatchConfig::default()
//! })?;
//! let jobs = vec![CompileJob::new(
//!     "bell",
//!     CircuitSource::QasmInline { qasm: "2".into() },
//!     NoOptions,
//! )];
//! let results = service.run(
//!     jobs,
//!     |_source| { let mut c = Circuit::new(2); c.h(0).cnot(0, 1); Ok(c) },
//!     |circuit, _job| Ok(StageOutcome::complete(GateCount(circuit.len() as u64))),
//! );
//! assert!(results[0].is_ok());
//! assert_eq!(service.cache_stats().misses, 1);
//! # Ok::<(), ftqc_service::json::JsonError>(())
//! ```

pub mod batch;
pub mod cache;
pub mod fingerprint;
pub mod job;
pub mod json;
pub mod pool;
pub mod resolve;

pub use batch::{run_jsonl_streamed_via, run_jsonl_via, BatchConfig, BatchService};
pub use cache::{
    CacheHit, CacheStats, CacheTier, CompileCache, SharedCache, DEFAULT_CACHE_CAPACITY,
};
pub use fingerprint::{combine, fingerprint_circuit, fingerprint_value, Fnv64};
pub use job::{
    job_from_value, parse_jobs, parse_jobs_lenient, render_results, CacheProvenance, CircuitSource,
    CompileJob, JobResult, JobStatus, ParsedLine, StageOutcome, TargetRef, JOB_SCHEMA_VERSION,
    MIN_JOB_SCHEMA_VERSION,
};
pub use json::{FromJson, JsonError, ToJson, Value};
pub use pool::WorkerPool;
