//! Content-addressed fingerprints for compile jobs.
//!
//! A compile result is determined entirely by the pair *(circuit,
//! compiler options)*, so the cache keys on a 64-bit FNV-1a digest of the
//! circuit's canonical gate sequence combined with the canonical JSON of
//! the options. Circuit *names* are deliberately excluded: two identically
//! named circuits with different gates get different keys, and the same
//! circuit under two names gets the same key.

use crate::json::Value;
use ftqc_circuit::Circuit;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Digest of a byte slice.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Digest of a JSON value's canonical rendering — the options half of a
/// cache key.
pub fn fingerprint_value(value: &Value) -> u64 {
    fingerprint_bytes(value.render().as_bytes())
}

/// Digest of a circuit's canonical form: register width plus the exact gate
/// sequence (angles included). The circuit name does not participate.
pub fn fingerprint_circuit(circuit: &Circuit) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(u64::from(circuit.num_qubits()));
    for gate in circuit.gates() {
        h.write_str(&format!("{gate:?}"));
        h.write_bytes(b";");
    }
    h.finish()
}

/// Order-sensitive combination of two digests (circuit half + options
/// half).
pub fn combine(a: u64, b: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(a).write_u64(b);
    h.finish()
}

/// Formats a fingerprint the way the file cache and JSONL results carry it
/// (16 hex digits, so `u64`s never squeeze through `f64` JSON numbers).
pub fn to_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses [`to_hex`]'s output.
pub fn from_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fingerprint_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn circuit_name_does_not_participate() {
        let mut a = Circuit::with_name(3, "alpha");
        let mut b = Circuit::with_name(3, "beta");
        for c in [&mut a, &mut b] {
            c.h(0).cnot(0, 1).t(2);
        }
        assert_eq!(fingerprint_circuit(&a), fingerprint_circuit(&b));
    }

    #[test]
    fn one_gate_changes_fingerprint() {
        let mut a = Circuit::new(3);
        a.h(0).cnot(0, 1).t(2);
        let mut b = Circuit::new(3);
        b.h(0).cnot(0, 1).t(1); // t on a different qubit
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1); // one gate fewer
        assert_ne!(fingerprint_circuit(&a), fingerprint_circuit(&b));
        assert_ne!(fingerprint_circuit(&a), fingerprint_circuit(&c));
    }

    #[test]
    fn register_width_participates() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(4);
        b.h(0);
        assert_ne!(fingerprint_circuit(&a), fingerprint_circuit(&b));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_eq!(combine(1, 2), combine(1, 2));
    }

    #[test]
    fn value_fingerprint_tracks_content() {
        let a = Value::Obj(vec![("r".into(), Value::Num(4.0))]);
        let b = Value::Obj(vec![("r".into(), Value::Num(5.0))]);
        assert_ne!(fingerprint_value(&a), fingerprint_value(&b));
        assert_eq!(fingerprint_value(&a), fingerprint_value(&a.clone()));
    }

    #[test]
    fn hex_roundtrip() {
        for fp in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(from_hex(&to_hex(fp)), Some(fp));
        }
        assert_eq!(from_hex("zz"), None);
    }
}
