//! The batch job model: [`CompileJob`] in, [`JobResult`] out, both carried
//! in a JSON-lines format (one job or result per line).
//!
//! The job model is generic over the compiler's option type `O` (and the
//! result over its metrics type `M`): this crate sits *below* the compiler
//! so the compiler itself can route `explore_parallel` through the pool and
//! cache; the concrete instantiation with `CompilerOptions` / `Metrics`
//! lives in `ftqc-compiler` and the CLI.

use crate::json::{self, FromJson, JsonError, ToJson, Value};

/// Where a job's circuit comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSource {
    /// A built-in benchmark, e.g. `ising` with optional lattice side.
    Benchmark {
        /// Benchmark name as the CLI accepts it.
        name: String,
        /// Optional size parameter (`ising:4` ⇒ `Some(4)`).
        size: Option<u32>,
    },
    /// An OpenQASM 2 file on disk.
    QasmFile {
        /// Path to the file.
        path: String,
    },
    /// OpenQASM 2 source carried inline in the job.
    QasmInline {
        /// The program text.
        qasm: String,
    },
}

impl ToJson for CircuitSource {
    fn to_json(&self) -> Value {
        match self {
            CircuitSource::Benchmark { name, size } => {
                let mut fields = vec![("benchmark".to_string(), Value::Str(name.clone()))];
                if let Some(l) = size {
                    fields.push(("size".to_string(), Value::Num(f64::from(*l))));
                }
                Value::Obj(fields)
            }
            CircuitSource::QasmFile { path } => {
                Value::Obj(vec![("qasm_file".to_string(), Value::Str(path.clone()))])
            }
            CircuitSource::QasmInline { qasm } => {
                Value::Obj(vec![("qasm".to_string(), Value::Str(qasm.clone()))])
            }
        }
    }
}

impl FromJson for CircuitSource {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let keys = ["benchmark", "qasm_file", "qasm"];
        if keys.iter().filter(|k| value.get(k).is_some()).count() > 1 {
            return Err(JsonError::schema(
                "source must carry exactly one of \"benchmark\", \"qasm_file\", \"qasm\"",
            ));
        }
        if let Some(name) = value.get("benchmark") {
            let name = name
                .as_str()
                .ok_or_else(|| JsonError::schema("\"benchmark\" must be a string"))?
                .to_string();
            let size =
                match value.get("size") {
                    None => None,
                    Some(s) => Some(s.as_u64().and_then(|v| u32::try_from(v).ok()).ok_or_else(
                        || JsonError::schema("\"size\" must be a non-negative integer"),
                    )?),
                };
            return Ok(CircuitSource::Benchmark { name, size });
        }
        if let Some(path) = value.get("qasm_file") {
            let path = path
                .as_str()
                .ok_or_else(|| JsonError::schema("\"qasm_file\" must be a string"))?;
            return Ok(CircuitSource::QasmFile {
                path: path.to_string(),
            });
        }
        if let Some(qasm) = value.get("qasm") {
            let qasm = qasm
                .as_str()
                .ok_or_else(|| JsonError::schema("\"qasm\" must be a string"))?;
            return Ok(CircuitSource::QasmInline {
                qasm: qasm.to_string(),
            });
        }
        Err(JsonError::schema(
            "source needs one of \"benchmark\", \"qasm_file\", \"qasm\"",
        ))
    }
}

impl std::fmt::Display for CircuitSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitSource::Benchmark { name, size: None } => write!(f, "{name}"),
            CircuitSource::Benchmark {
                name,
                size: Some(l),
            } => write!(f, "{name}:{l}"),
            CircuitSource::QasmFile { path } => write!(f, "{path}"),
            CircuitSource::QasmInline { .. } => write!(f, "<inline qasm>"),
        }
    }
}

/// A job's hardware-target reference: a preset name resolved against the
/// processing side's target registry, or an inline spec document decoded
/// by the compiler's target codec. This crate only carries the reference;
/// resolution (and folding into the options) happens above, before the
/// job is fingerprinted.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetRef {
    /// A registry name, e.g. `"paper"` or `"sparse"`.
    Named(String),
    /// An inline target-spec document.
    Inline(Value),
}

impl ToJson for TargetRef {
    fn to_json(&self) -> Value {
        match self {
            TargetRef::Named(name) => Value::Str(name.clone()),
            TargetRef::Inline(doc) => doc.clone(),
        }
    }
}

impl FromJson for TargetRef {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Str(name) => Ok(TargetRef::Named(name.clone())),
            Value::Obj(_) => Ok(TargetRef::Inline(value.clone())),
            _ => Err(JsonError::schema(
                "\"target\" must be a preset name or a target-spec object",
            )),
        }
    }
}

/// One unit of batch work: a circuit source plus compiler options.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileJob<O> {
    /// Caller-chosen identifier, echoed into the result.
    pub id: String,
    /// Where the circuit comes from.
    pub source: CircuitSource,
    /// Compiler options for this job.
    pub options: O,
    /// The hardware target to compile for (job schema v2). When set, the
    /// processing side resolves it and it *replaces* the options' machine
    /// spec before the job is fingerprinted; `None` compiles for whatever
    /// machine the options carry (the paper target by default).
    pub target: Option<TargetRef>,
    /// Stop the pipeline after this stage (`"prepare"`, `"lower"`,
    /// `"map"`, `"schedule"`); `None` compiles fully. Partial jobs bypass
    /// the whole-job metrics cache — their point is warming and probing
    /// the compiler's stage cache.
    pub stop_after: Option<String>,
    /// Assert that the named stage is answered from the stage cache; the
    /// job fails (instead of silently recomputing) when it is not.
    pub resume_from: Option<String>,
}

impl<O> CompileJob<O> {
    /// A full-compile job (no stage or target fields set).
    pub fn new(id: impl Into<String>, source: CircuitSource, options: O) -> Self {
        CompileJob {
            id: id.into(),
            source,
            options,
            target: None,
            stop_after: None,
            resume_from: None,
        }
    }

    /// Names the hardware target to compile for.
    pub fn with_target(mut self, target: TargetRef) -> Self {
        self.target = Some(target);
        self
    }
}

impl<O: ToJson> ToJson for CompileJob<O> {
    fn to_json(&self) -> Value {
        let mut fields = vec![("id".to_string(), Value::Str(self.id.clone()))];
        if self.target.is_some() {
            // Target-bearing documents declare the schema version that
            // introduced the field, so a v1 consumer refuses them loudly
            // instead of silently compiling for the wrong machine.
            fields.push(("v".to_string(), Value::Num(JOB_SCHEMA_VERSION as f64)));
        }
        fields.push(("source".to_string(), self.source.to_json()));
        fields.push(("options".to_string(), self.options.to_json()));
        if let Some(target) = &self.target {
            fields.push(("target".to_string(), target.to_json()));
        }
        if let Some(stage) = &self.stop_after {
            fields.push(("stop_after".to_string(), Value::Str(stage.clone())));
        }
        if let Some(stage) = &self.resume_from {
            fields.push(("resume_from".to_string(), Value::Str(stage.clone())));
        }
        Value::Obj(fields)
    }
}

/// How a finished job was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheProvenance {
    /// Compiled fresh on a worker.
    Computed,
    /// Served from the in-memory cache tier.
    MemoryHit,
    /// Served from the file-backed cache tier.
    FileHit,
}

impl CacheProvenance {
    /// Whether the job was served from either cache tier.
    pub fn is_hit(self) -> bool {
        self != CacheProvenance::Computed
    }

    /// The wire/display label (`"computed"`, `"memory"`, `"file"`) used in
    /// JSONL results and batch reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheProvenance::Computed => "computed",
            CacheProvenance::MemoryHit => "memory",
            CacheProvenance::FileHit => "file",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "computed" => Some(CacheProvenance::Computed),
            "memory" => Some(CacheProvenance::MemoryHit),
            "file" => Some(CacheProvenance::FileHit),
            _ => None,
        }
    }
}

/// Terminal state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Compiled (or cache-served) successfully.
    Ok,
    /// Failed, with the error rendered as text.
    Failed(String),
}

/// What a staged compile produced: the terminal stage, its artifact
/// fingerprint, and — when the pipeline ran to completion — the metrics.
/// This is what a [`BatchService`](crate::BatchService) compile callback
/// returns; [`StageOutcome::complete`] is the plain full-compile case.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOutcome<M> {
    /// The compile metrics; present only when the schedule stage ran.
    pub metrics: Option<M>,
    /// The terminal stage's wire name for explicitly staged jobs; `None`
    /// for ordinary full compiles.
    pub stage: Option<String>,
    /// The terminal stage artifact's fingerprint, when it differs from the
    /// whole-job fingerprint (i.e. for staged jobs).
    pub fingerprint: Option<u64>,
}

impl<M> StageOutcome<M> {
    /// A finished full compile.
    pub fn complete(metrics: M) -> Self {
        StageOutcome {
            metrics: Some(metrics),
            stage: None,
            fingerprint: None,
        }
    }

    /// A run stopped after `stage`, leaving its artifact fingerprint.
    pub fn partial(stage: impl Into<String>, fingerprint: u64) -> Self {
        StageOutcome {
            metrics: None,
            stage: Some(stage.into()),
            fingerprint: Some(fingerprint),
        }
    }
}

/// The outcome of one [`CompileJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult<M> {
    /// The job's identifier.
    pub id: String,
    /// Content-addressed fingerprint of (circuit, options); for staged
    /// jobs the terminal stage artifact's fingerprint; `0` when the
    /// circuit could not even be resolved.
    pub fingerprint: u64,
    /// Success or failure.
    pub status: JobStatus,
    /// The compile metrics on success.
    pub metrics: Option<M>,
    /// Cache provenance of the metrics.
    pub provenance: CacheProvenance,
    /// Wall-clock microseconds spent on this job (resolution + lookup +
    /// compile).
    pub micros: u64,
    /// Microseconds the job waited in the worker pool's queue between
    /// batch submission and a worker claiming it. Additive wire field
    /// (absent or 0 in documents from older producers).
    pub queue_micros: u64,
    /// The terminal stage of an explicitly staged job (`stop_after`);
    /// `None` for ordinary full compiles.
    pub stage: Option<String>,
    /// An opaque verification witness attached by the producer (the fleet
    /// worker's compile witness). Carried verbatim — this crate sits below
    /// the compiler and cannot decode it. Additive wire field: rendered
    /// only when present, so witness-less producers keep their exact
    /// bytes.
    pub witness: Option<Value>,
}

impl<M> JobResult<M> {
    /// Whether the job succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == JobStatus::Ok
    }

    /// The error result standing in for a JSONL line that failed to parse:
    /// the id names the source line so the caller can find the culprit, and
    /// the status carries the line number plus the parse error.
    pub fn malformed_line(lineno: usize, error: &JsonError) -> Self {
        JobResult {
            id: format!("line-{lineno}"),
            fingerprint: 0,
            status: JobStatus::Failed(format!("line {lineno}: {error}")),
            metrics: None,
            provenance: CacheProvenance::Computed,
            micros: 0,
            queue_micros: 0,
            stage: None,
            witness: None,
        }
    }

    /// This result without its witness — what a coordinator serves after
    /// verification (the witness is coordinator-internal proof material,
    /// not client payload).
    pub fn without_witness(mut self) -> Self {
        self.witness = None;
        self
    }
}

impl<M: ToJson> ToJson for JobResult<M> {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            (
                "fingerprint".to_string(),
                Value::Str(crate::fingerprint::to_hex(self.fingerprint)),
            ),
            (
                "status".to_string(),
                match &self.status {
                    JobStatus::Ok => Value::Str("ok".to_string()),
                    JobStatus::Failed(e) => Value::Str(format!("failed: {e}")),
                },
            ),
            (
                "cache".to_string(),
                Value::Str(self.provenance.as_str().to_string()),
            ),
            ("micros".to_string(), Value::Num(self.micros as f64)),
        ];
        // Rendered only when measured, so producers that never queue jobs
        // (and pre-queue-wait consumers' goldens) keep their exact bytes.
        if self.queue_micros > 0 {
            fields.push((
                "queue_micros".to_string(),
                Value::Num(self.queue_micros as f64),
            ));
        }
        if let Some(stage) = &self.stage {
            fields.push(("stage".to_string(), Value::Str(stage.clone())));
        }
        if let Some(m) = &self.metrics {
            fields.push(("metrics".to_string(), m.to_json()));
        }
        if let Some(w) = &self.witness {
            fields.push(("witness".to_string(), w.clone()));
        }
        Value::Obj(fields)
    }
}

impl<M: FromJson> FromJson for JobResult<M> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let id = json::require_str(value, "id")?.to_string();
        let fingerprint = crate::fingerprint::from_hex(json::require_str(value, "fingerprint")?)
            .ok_or_else(|| JsonError::schema("\"fingerprint\" must be 16 hex digits"))?;
        let status_text = json::require_str(value, "status")?;
        let status = if status_text == "ok" {
            JobStatus::Ok
        } else if let Some(e) = status_text.strip_prefix("failed: ") {
            JobStatus::Failed(e.to_string())
        } else {
            return Err(JsonError::schema(
                "\"status\" must be \"ok\" or \"failed: …\"",
            ));
        };
        let provenance = CacheProvenance::parse(json::require_str(value, "cache")?)
            .ok_or_else(|| JsonError::schema("bad \"cache\" value"))?;
        let micros = json::require_u64(value, "micros")?;
        let queue_micros = value
            .get("queue_micros")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        let metrics = match value.get("metrics") {
            None => None,
            Some(m) => Some(M::from_json(m)?),
        };
        let stage = match value.get("stage") {
            None => None,
            Some(s) => Some(
                s.as_str()
                    .ok_or_else(|| JsonError::schema("\"stage\" must be a string"))?
                    .to_string(),
            ),
        };
        Ok(JobResult {
            id,
            fingerprint,
            status,
            metrics,
            provenance,
            micros,
            queue_micros,
            stage,
            witness: value.get("witness").cloned(),
        })
    }
}

/// The job-document schema version this build speaks (the service half of
/// the server's wire contract). v2 added the `"target"` field; v1
/// documents (explicit or implied by a missing `"v"`) still decode, but a
/// v1 document carrying `"target"` is refused — a v1 producer cannot have
/// meant it.
pub const JOB_SCHEMA_VERSION: u64 = 2;

/// The oldest job-document schema version this build still accepts.
pub const MIN_JOB_SCHEMA_VERSION: u64 = 1;

/// Decodes one job object: `"id"` defaults to `default_id`, a missing
/// `"options"` decodes `O` from an empty object (option types default
/// missing fields), and an optional `"v"` field must lie within
/// [`MIN_JOB_SCHEMA_VERSION`]`..=`[`JOB_SCHEMA_VERSION`]. This is the
/// single decoding recipe shared by the JSONL batch parsers and the HTTP
/// server's `POST /v1/compile` body — so a future-version job line fails
/// its line instead of being silently processed under current semantics.
///
/// # Errors
///
/// Returns a schema error when the object has the wrong shape, an
/// unsupported version, or uses v2 fields under a declared v1.
pub fn job_from_value<O: FromJson>(
    doc: &Value,
    default_id: impl Into<String>,
) -> Result<CompileJob<O>, JsonError> {
    let declared = match doc.get("v") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(n) if (MIN_JOB_SCHEMA_VERSION..=JOB_SCHEMA_VERSION).contains(&n) => Some(n),
            Some(n) => {
                return Err(JsonError::schema(format!(
                    "unsupported job schema version {n} (this build speaks v{JOB_SCHEMA_VERSION})"
                )))
            }
            None => return Err(JsonError::schema("\"v\" must be an integer version")),
        },
    };
    let target = match doc.get("target") {
        None => None,
        Some(t) => {
            if declared == Some(1) {
                return Err(JsonError::schema(
                    "\"target\" requires job schema v2 (declare \"v\":2)",
                ));
            }
            Some(TargetRef::from_json(t)?)
        }
    };
    let id = match doc.get("id") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| JsonError::schema("\"id\" must be a string"))?
            .to_string(),
        None => default_id.into(),
    };
    let source = CircuitSource::from_json(json::require(doc, "source")?)?;
    let empty = Value::Obj(Vec::new());
    let options = O::from_json(doc.get("options").unwrap_or(&empty))?;
    let stage_field = |key: &str| -> Result<Option<String>, JsonError> {
        match doc.get(key) {
            None => Ok(None),
            Some(v) => Ok(Some(
                v.as_str()
                    .ok_or_else(|| JsonError::schema(format!("{key:?} must be a stage name")))?
                    .to_string(),
            )),
        }
    };
    Ok(CompileJob {
        id,
        source,
        options,
        target,
        stop_after: stage_field("stop_after")?,
        resume_from: stage_field("resume_from")?,
    })
}

/// Parses a JSON-lines batch: one job object per non-blank line, `#` lines
/// are comments. A missing `"id"` defaults to `job-<line number>` (1-based,
/// counting blank/comment lines, so the name points at the actual line); a
/// missing `"options"` decodes `O` from an empty object (option types
/// default missing fields). Ids are not checked for uniqueness — results
/// are matched to jobs by position, not by id.
///
/// # Errors
///
/// Returns the first syntax or schema error, tagged with its line number.
pub fn parse_jobs<O: FromJson>(jsonl: &str) -> Result<Vec<CompileJob<O>>, JsonError> {
    parse_jobs_lenient(jsonl)
        .into_iter()
        .map(|line| match line {
            ParsedLine::Job { job, .. } => Ok(job),
            ParsedLine::Malformed { lineno, error } => {
                Err(JsonError::schema(format!("line {lineno}: {error}")))
            }
        })
        .collect()
}

/// One line of a leniently parsed JSONL batch: either a decoded job or the
/// error that line produced, both tagged with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine<O> {
    /// The line decoded to a job.
    Job {
        /// 1-based source line.
        lineno: usize,
        /// The decoded job.
        job: CompileJob<O>,
    },
    /// The line was syntactically or structurally broken.
    Malformed {
        /// 1-based source line.
        lineno: usize,
        /// What was wrong with it.
        error: JsonError,
    },
}

/// [`parse_jobs`] without the fail-fast: every non-blank, non-comment line
/// yields a [`ParsedLine`], so one malformed line costs only that line
/// rather than the whole batch. Callers turn `Malformed` lines into error
/// results ([`JobResult::malformed_line`]) and keep going.
pub fn parse_jobs_lenient<O: FromJson>(jsonl: &str) -> Vec<ParsedLine<O>> {
    let mut lines = Vec::new();
    for (index, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = index + 1;
        let parsed =
            Value::parse(line).and_then(|doc| job_from_value(&doc, format!("job-{lineno}")));
        lines.push(match parsed {
            Ok(job) => ParsedLine::Job { lineno, job },
            Err(error) => ParsedLine::Malformed { lineno, error },
        });
    }
    lines
}

/// Renders results as JSON-lines, one result per line, in order.
pub fn render_results<M: ToJson>(results: &[JobResult<M>]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.to_json().render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, JsonError, ToJson, Value};

    /// A minimal stand-in for compiler options in this crate's tests.
    #[derive(Debug, Clone, PartialEq)]
    struct Opts {
        r: u64,
    }

    impl ToJson for Opts {
        fn to_json(&self) -> Value {
            Value::Obj(vec![("r".to_string(), Value::Num(self.r as f64))])
        }
    }

    impl FromJson for Opts {
        fn from_json(value: &Value) -> Result<Self, JsonError> {
            Ok(Opts {
                r: value.get("r").and_then(Value::as_u64).unwrap_or(4),
            })
        }
    }

    #[test]
    fn parses_jobs_with_defaults_and_comments() {
        let jsonl = r#"
# two jobs; the first has everything, the second uses defaults
{"id":"a","source":{"benchmark":"ising","size":2},"options":{"r":6}}
{"source":{"qasm":"OPENQASM 2.0;"}}
"#;
        let jobs: Vec<CompileJob<Opts>> = parse_jobs(jsonl).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "a");
        assert_eq!(jobs[0].options, Opts { r: 6 });
        assert_eq!(
            jobs[0].source,
            CircuitSource::Benchmark {
                name: "ising".into(),
                size: Some(2)
            }
        );
        assert_eq!(jobs[1].id, "job-4", "default id names the source line");
        assert_eq!(jobs[1].options, Opts { r: 4 });
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let err = parse_jobs::<Opts>("\n{\"source\":{}}\n").unwrap_err();
        assert!(err.message.contains("line 2"), "got {err}");
        let err = parse_jobs::<Opts>("{oops}").unwrap_err();
        assert!(err.message.contains("line 1"), "got {err}");
    }

    #[test]
    fn lenient_parse_isolates_bad_lines() {
        let jsonl = concat!(
            "{\"id\":\"good\",\"source\":{\"benchmark\":\"ising\"}}\n",
            "{oops}\n",
            "# comment\n",
            "{\"source\":{}}\n",
            "{\"id\":\"tail\",\"source\":{\"qasm\":\"OPENQASM 2.0;\"}}\n",
        );
        let lines: Vec<ParsedLine<Opts>> = parse_jobs_lenient(jsonl);
        assert_eq!(lines.len(), 4, "comment line dropped, bad lines kept");
        assert!(matches!(&lines[0], ParsedLine::Job { lineno: 1, job } if job.id == "good"));
        assert!(matches!(&lines[1], ParsedLine::Malformed { lineno: 2, .. }));
        assert!(matches!(&lines[2], ParsedLine::Malformed { lineno: 4, .. }));
        assert!(matches!(&lines[3], ParsedLine::Job { lineno: 5, job } if job.id == "tail"));

        // Malformed lines convert to failure results naming the line.
        if let ParsedLine::Malformed { lineno, error } = &lines[1] {
            let r: JobResult<Opts> = JobResult::malformed_line(*lineno, error);
            assert_eq!(r.id, "line-2");
            assert!(!r.is_ok());
            assert!(matches!(&r.status, JobStatus::Failed(e) if e.starts_with("line 2: ")));
        }

        // The strict parser reports the first bad line and fails the batch.
        let err = parse_jobs::<Opts>(jsonl).unwrap_err();
        assert!(err.message.contains("line 2"), "got {err}");
    }

    #[test]
    fn ambiguous_source_rejected() {
        let v = Value::parse(r#"{"benchmark":"ising","qasm_file":"mine.qasm"}"#).unwrap();
        let err = CircuitSource::from_json(&v).unwrap_err();
        assert!(err.message.contains("exactly one"), "got {err}");
    }

    #[test]
    fn source_forms_roundtrip() {
        for src in [
            CircuitSource::Benchmark {
                name: "adder".into(),
                size: None,
            },
            CircuitSource::Benchmark {
                name: "ising".into(),
                size: Some(4),
            },
            CircuitSource::QasmFile {
                path: "bell.qasm".into(),
            },
            CircuitSource::QasmInline {
                qasm: "OPENQASM 2.0;".into(),
            },
        ] {
            let back = CircuitSource::from_json(&src.to_json()).unwrap();
            assert_eq!(back, src);
        }
    }

    #[test]
    fn results_roundtrip_through_jsonl() {
        let results = vec![
            JobResult::<Opts> {
                id: "a".into(),
                fingerprint: 0xdead_beef,
                status: JobStatus::Ok,
                metrics: Some(Opts { r: 6 }),
                provenance: CacheProvenance::MemoryHit,
                micros: 1234,
                queue_micros: 17,
                stage: None,
                witness: None,
            },
            JobResult::<Opts> {
                id: "b".into(),
                fingerprint: 0,
                status: JobStatus::Failed("no such benchmark".into()),
                metrics: None,
                provenance: CacheProvenance::Computed,
                micros: 5,
                queue_micros: 0,
                stage: None,
                witness: None,
            },
            JobResult::<Opts> {
                id: "c".into(),
                fingerprint: 0xabc,
                status: JobStatus::Ok,
                metrics: None,
                provenance: CacheProvenance::Computed,
                micros: 9,
                queue_micros: 3,
                stage: Some("map".into()),
                witness: None,
            },
        ];
        let text = render_results(&results);
        assert_eq!(text.lines().count(), 3);
        for (line, expected) in text.lines().zip(&results) {
            let back: JobResult<Opts> = JobResult::from_json(&Value::parse(line).unwrap()).unwrap();
            assert_eq!(&back, expected);
        }
        // queue_micros renders only when measured: zero stays off the wire,
        // so pre-queue-wait consumers see byte-identical result lines.
        assert!(text.lines().next().unwrap().contains("\"queue_micros\":17"));
        assert!(!text.lines().nth(1).unwrap().contains("queue_micros"));
    }

    #[test]
    fn results_tolerate_absent_and_unknown_fields() {
        // A document from an older producer (no queue_micros) decodes with
        // the field defaulted, and unknown future fields are ignored —
        // the additive-evolution contract new endpoints rely on.
        let line = r#"{"id":"a","fingerprint":"00000000deadbeef","status":"ok","cache":"memory","micros":7,"future_field":{"x":1}}"#;
        let back: JobResult<Opts> = JobResult::from_json(&Value::parse(line).unwrap()).unwrap();
        assert_eq!(back.queue_micros, 0);
        assert_eq!(back.micros, 7);
        assert_eq!(back.status, JobStatus::Ok);
    }

    #[test]
    fn stage_fields_parse_and_roundtrip() {
        let v = Value::parse(
            r#"{"id":"warm","source":{"benchmark":"ising"},"stop_after":"map","resume_from":"lower"}"#,
        )
        .unwrap();
        let job: CompileJob<Opts> = job_from_value(&v, "x").unwrap();
        assert_eq!(job.stop_after.as_deref(), Some("map"));
        assert_eq!(job.resume_from.as_deref(), Some("lower"));
        let back: CompileJob<Opts> = job_from_value(&job.to_json(), "x").unwrap();
        assert_eq!(back, job);

        // Absent fields decode to None, and `new` builds a full job.
        let plain = CompileJob::new(
            "p",
            CircuitSource::Benchmark {
                name: "ising".into(),
                size: None,
            },
            Opts { r: 4 },
        );
        assert_eq!(plain.stop_after, None);
        assert_eq!(plain.resume_from, None);
        assert!(!plain.to_json().render().contains("stop_after"));

        let v = Value::parse(r#"{"source":{"benchmark":"ising"},"stop_after":7}"#).unwrap();
        assert!(job_from_value::<Opts>(&v, "x").is_err());
    }

    #[test]
    fn target_refs_parse_and_roundtrip() {
        // A preset name.
        let v =
            Value::parse(r#"{"v":2,"source":{"benchmark":"ising"},"target":"sparse"}"#).unwrap();
        let job: CompileJob<Opts> = job_from_value(&v, "x").unwrap();
        assert_eq!(job.target, Some(TargetRef::Named("sparse".into())));
        let back: CompileJob<Opts> = job_from_value(&job.to_json(), "x").unwrap();
        assert_eq!(back, job);
        assert!(job.to_json().render().contains("\"v\":2"));

        // An inline spec object is carried verbatim.
        let v = Value::parse(
            r#"{"source":{"benchmark":"ising"},"target":{"routing_paths":2,"factories":3}}"#,
        )
        .unwrap();
        let job: CompileJob<Opts> = job_from_value(&v, "x").unwrap();
        assert!(matches!(job.target, Some(TargetRef::Inline(_))));

        // v1 documents cannot carry a target; other shapes are rejected.
        let v = Value::parse(r#"{"v":1,"source":{"benchmark":"ising"},"target":"paper"}"#).unwrap();
        let err = job_from_value::<Opts>(&v, "x").unwrap_err();
        assert!(err.message.contains("v2"), "got {err}");
        let v = Value::parse(r#"{"source":{"benchmark":"ising"},"target":7}"#).unwrap();
        assert!(job_from_value::<Opts>(&v, "x").is_err());

        // Target-less jobs render without the field (and without "v").
        let plain = CompileJob::new(
            "p",
            CircuitSource::Benchmark {
                name: "ising".into(),
                size: None,
            },
            Opts { r: 4 },
        );
        let rendered = plain.to_json().render();
        assert!(!rendered.contains("target"));
        assert!(!rendered.contains("\"v\""));
        let with = plain.with_target(TargetRef::Named("paper".into()));
        assert!(with.to_json().render().contains("\"target\":\"paper\""));
    }

    #[test]
    fn job_schema_version_is_checked_per_document() {
        let ok = Value::parse(r#"{"v":1,"source":{"benchmark":"ising"}}"#).unwrap();
        assert!(job_from_value::<Opts>(&ok, "x").is_ok());
        let ok = Value::parse(r#"{"v":2,"source":{"benchmark":"ising"}}"#).unwrap();
        assert!(job_from_value::<Opts>(&ok, "x").is_ok());
        let future = Value::parse(r#"{"v":9,"source":{"benchmark":"ising"}}"#).unwrap();
        let err = job_from_value::<Opts>(&future, "x").unwrap_err();
        assert!(err.message.contains("version 9"), "got {err}");
        let bad = Value::parse(r#"{"v":"one","source":{"benchmark":"ising"}}"#).unwrap();
        assert!(job_from_value::<Opts>(&bad, "x").is_err());
        // Lenient batch parsing isolates a future-version line.
        let jsonl = concat!(
            "{\"source\":{\"benchmark\":\"ising\"}}\n",
            "{\"v\":9,\"source\":{\"benchmark\":\"ising\"}}\n",
        );
        let lines: Vec<ParsedLine<Opts>> = parse_jobs_lenient(jsonl);
        assert!(matches!(&lines[0], ParsedLine::Job { .. }));
        assert!(matches!(&lines[1], ParsedLine::Malformed { lineno: 2, .. }));
    }

    #[test]
    fn stage_outcome_constructors() {
        let full: StageOutcome<Opts> = StageOutcome::complete(Opts { r: 4 });
        assert!(full.metrics.is_some());
        assert_eq!(full.stage, None);
        let partial: StageOutcome<Opts> = StageOutcome::partial("map", 0xfeed);
        assert_eq!(partial.stage.as_deref(), Some("map"));
        assert_eq!(partial.fingerprint, Some(0xfeed));
        assert!(partial.metrics.is_none());
    }

    #[test]
    fn provenance_flags() {
        assert!(CacheProvenance::MemoryHit.is_hit());
        assert!(CacheProvenance::FileHit.is_hit());
        assert!(!CacheProvenance::Computed.is_hit());
    }
}
