//! A small canonical-JSON value model with a writer and parser.
//!
//! The batch service needs real serialization for its JSON-lines job format
//! and the file-backed compile-cache tier, but the build environment has no
//! registry access (the workspace's `serde` is a no-op stand-in — see
//! `vendor/serde`). This module is the honest replacement: a compact
//! [`Value`] tree, a deterministic writer (object fields keep insertion
//! order, so equal values render byte-identically — which the
//! content-addressed fingerprints rely on), and a strict recursive-descent
//! parser for the subset of JSON the service emits.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order: the writer is deterministic, making
/// the rendered string usable as a canonical form for fingerprinting.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 round-trip exactly —
    /// larger values such as fingerprints travel as hex strings instead).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Value)>),
}

/// A JSON syntax or schema error, with a byte offset for syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (0 for schema errors on parsed values).
    pub offset: usize,
}

impl JsonError {
    /// A schema-level error (wrong shape rather than bad syntax).
    pub fn schema(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.message, self.offset)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// Types rendering themselves into a [`Value`].
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait FromJson: Sized {
    /// Parses `value`, reporting shape mismatches as [`JsonError`].
    ///
    /// # Errors
    ///
    /// Returns a schema error when `value` has the wrong shape.
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

impl Value {
    /// Field lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders compact canonical JSON (no whitespace, fields in insertion
    /// order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity; match JSON.stringify and
                    // emit null so the output always re-parses.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Containers deeper than this are rejected rather than risking a stack
/// overflow on adversarial input (the parser is recursive-descent).
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos.max(1),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<Value, JsonError>,
    ) -> Result<Value, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected {lit:?}")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text.parse().map_err(|_| self.error("malformed number"))?;
        if !n.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(Value::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let code = self.u_escape()?;
                            let c = if (0xD800..=0xDBFF).contains(&code) {
                                // UTF-16 high surrogate: RFC 8259 carries
                                // non-BMP characters as a \uXXXX\uXXXX pair.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                                self.pos += 1; // now at the second 'u'
                                let low = self.u_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(self.error("bad low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else if (0xDC00..=0xDFFF).contains(&code) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?
                            };
                            out.push(c);
                            continue; // u_escape already advanced past the digits
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: push the byte directly (validating
                    // the full remaining input per character would make
                    // string parsing O(n²)).
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8: decode only this sequence (1-4
                    // bytes, length from the leading byte).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.error("invalid UTF-8")),
                    };
                    let seq = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.error("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(seq).map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    /// Reads `uXXXX` (cursor on the `u`), leaving the cursor one past the
    /// last hex digit.
    fn u_escape(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.error("non-ascii \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 5;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Convenience: required field lookup with a schema error naming the key.
///
/// # Errors
///
/// Returns a schema error when `key` is missing.
pub fn require<'v>(value: &'v Value, key: &str) -> Result<&'v Value, JsonError> {
    value
        .get(key)
        .ok_or_else(|| JsonError::schema(format!("missing field {key:?}")))
}

/// Convenience: required `u64` field.
///
/// # Errors
///
/// Returns a schema error when missing or not an exact integer.
pub fn require_u64(value: &Value, key: &str) -> Result<u64, JsonError> {
    require(value, key)?
        .as_u64()
        .ok_or_else(|| JsonError::schema(format!("field {key:?} must be a non-negative integer")))
}

/// Convenience: required string field.
///
/// # Errors
///
/// Returns a schema error when missing or not a string.
pub fn require_str<'v>(value: &'v Value, key: &str) -> Result<&'v str, JsonError> {
    require(value, key)?
        .as_str()
        .ok_or_else(|| JsonError::schema(format!("field {key:?} must be a string")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"id":"j1","source":{"benchmark":"ising","size":2},"xs":[1,2,3],"ok":true}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("id").and_then(Value::as_str), Some("j1"));
        assert_eq!(
            v.get("source")
                .and_then(|s| s.get("size"))
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("xs").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te".into());
        let rendered = v.render();
        assert_eq!(Value::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Value::parse("\"\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("é"));
    }

    #[test]
    fn surrogate_pairs_combine() {
        // 😀 U+1F600 as the UTF-16 pair standard encoders emit.
        let v = Value::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Followed by more content.
        let v = Value::parse("\"a\\ud83d\\ude00b\"").unwrap();
        assert_eq!(v.as_str(), Some("a😀b"));
    }

    #[test]
    fn lone_surrogates_rejected() {
        assert!(Value::parse("\"\\ud83d\"").is_err());
        assert!(Value::parse("\"\\ud83dx\"").is_err());
        assert!(Value::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Value::parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.render(), r#"{"a":[1,2],"b":null}"#);
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("tru").is_err());
        assert!(Value::parse("1 2")
            .unwrap_err()
            .message
            .contains("trailing"));
    }

    #[test]
    fn canonical_rendering_is_deterministic() {
        let a = Value::Obj(vec![
            ("x".into(), Value::Num(1.0)),
            ("y".into(), Value::Num(2.0)),
        ]);
        let b = Value::parse(&a.render()).unwrap();
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn large_strings_parse_in_linear_time() {
        // 2 MB of inline-QASM-like content; O(n²) parsing took over a
        // minute here, linear parsing is well under a second.
        let body = "h q[0];\\ncx q[0],q[1];\\n".repeat(100_000);
        let doc = format!("{{\"qasm\":\"{body}\"}}");
        let started = std::time::Instant::now();
        let v = Value::parse(&doc).unwrap();
        assert!(v.get("qasm").is_some());
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "parse took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn multibyte_utf8_survives_parsing() {
        let v = Value::parse("\"héllo — 😀 日本\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — 😀 日本"));
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "got {err}");
        // 100 levels is fine.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_numbers_never_escape() {
        assert!(Value::parse("1e999").is_err(), "overflow to inf rejected");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn u64_boundaries() {
        assert_eq!(Value::Num(0.0).as_u64(), Some(0));
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
    }
}
