//! The content-addressed compile cache.
//!
//! Two tiers: a bounded in-memory LRU map from 64-bit fingerprints (see
//! [`crate::fingerprint`]) to compile results, and an optional JSON
//! file-backed tier for cross-run reuse. Lookups report which tier served
//! them, and the cache keeps hit/miss/eviction counters so batch reports
//! can show exactly how much work was saved.

use crate::fingerprint;
use crate::json::{FromJson, JsonError, ToJson, Value};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default memory-tier capacity used by the batch service, the CLI, and
/// `explore_parallel` when the caller doesn't size the cache explicitly.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Which tier satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory LRU map.
    Memory,
    /// The file-backed tier (the entry is promoted to memory on hit).
    File,
}

/// A successful lookup.
#[derive(Debug, Clone)]
pub struct CacheHit<V> {
    /// The cached result.
    pub value: V,
    /// Where it came from.
    pub tier: CacheTier,
}

/// Lookup / insertion / eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory or file.
    pub hits: u64,
    /// Of those hits, how many came from the file tier.
    pub file_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0.0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("hits".into(), Value::Num(self.hits as f64)),
            ("file_hits".into(), Value::Num(self.file_hits as f64)),
            ("misses".into(), Value::Num(self.misses as f64)),
            ("insertions".into(), Value::Num(self.insertions as f64)),
            ("evictions".into(), Value::Num(self.evictions as f64)),
            // Derived, carried for human consumers; FromJson ignores it.
            ("hit_rate".into(), Value::Num(self.hit_rate())),
        ])
    }
}

impl FromJson for CacheStats {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(CacheStats {
            hits: crate::json::require_u64(value, "hits")?,
            file_hits: crate::json::require_u64(value, "file_hits")?,
            misses: crate::json::require_u64(value, "misses")?,
            insertions: crate::json::require_u64(value, "insertions")?,
            evictions: crate::json::require_u64(value, "evictions")?,
        })
    }
}

/// A bounded LRU cache from fingerprint to compile result, with an optional
/// file tier.
#[derive(Debug)]
pub struct CompileCache<V> {
    capacity: usize,
    /// Value plus last-use generation; the LRU victim is the minimum
    /// generation. Touch is O(1); the O(n) scan happens only on eviction.
    entries: HashMap<u64, (V, u64)>,
    clock: u64,
    file_entries: HashMap<u64, V>,
    file_path: Option<PathBuf>,
    stats: CacheStats,
}

impl<V: Clone> CompileCache<V> {
    /// An in-memory cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CompileCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            file_entries: HashMap::new(),
            file_path: None,
            stats: CacheStats::default(),
        }
    }

    /// Attaches a JSON file tier, loading any entries it already holds.
    /// Call [`persist`](Self::persist) to write the merged contents back.
    ///
    /// A missing file is fine (it is created on persist); a malformed file
    /// is an error rather than silent cache corruption.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the file exists but cannot be parsed or
    /// has entries of the wrong shape.
    pub fn with_file_tier(mut self, path: impl AsRef<Path>) -> Result<Self, JsonError>
    where
        V: FromJson,
    {
        let path = path.as_ref();
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| JsonError::schema(format!("cannot read {}: {e}", path.display())))?;
            let doc = Value::parse(&text)?;
            let fields = doc
                .as_obj()
                .ok_or_else(|| JsonError::schema("cache file must be a JSON object"))?;
            for (key, value) in fields {
                let fp = fingerprint::from_hex(key)
                    .ok_or_else(|| JsonError::schema(format!("bad cache key {key:?}")))?;
                self.file_entries.insert(fp, V::from_json(value)?);
            }
        }
        self.file_path = Some(path.to_path_buf());
        Ok(self)
    }

    /// Looks up `fingerprint`, consulting memory first and then the file
    /// tier (file hits are promoted into memory).
    pub fn get(&mut self, fingerprint: u64) -> Option<CacheHit<V>> {
        self.clock += 1;
        if let Some((v, generation)) = self.entries.get_mut(&fingerprint) {
            *generation = self.clock;
            let value = v.clone();
            self.stats.hits += 1;
            return Some(CacheHit {
                value,
                tier: CacheTier::Memory,
            });
        }
        if let Some(v) = self.file_entries.get(&fingerprint) {
            let value = v.clone();
            self.stats.hits += 1;
            self.stats.file_hits += 1;
            self.install(fingerprint, value.clone());
            return Some(CacheHit {
                value,
                tier: CacheTier::File,
            });
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a freshly computed result, evicting the least-recently-used
    /// entry if the memory tier is full.
    pub fn insert(&mut self, fingerprint: u64, value: V) {
        self.stats.insertions += 1;
        self.install(fingerprint, value);
    }

    fn install(&mut self, fingerprint: u64, value: V) {
        self.clock += 1;
        if self
            .entries
            .insert(fingerprint, (value, self.clock))
            .is_none()
            && self.entries.len() > self.capacity
        {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, generation))| *generation)
                .map(|(k, _)| *k)
            {
                let evicted = self.entries.remove(&victim);
                self.stats.evictions += 1;
                // With a file tier attached, demote instead of drop: the
                // file tier is unbounded, so persist() keeps every result
                // computed during the run, not just the last `capacity`.
                if self.file_path.is_some() {
                    if let Some((value, _)) = evicted {
                        self.file_entries.insert(victim, value);
                    }
                }
            }
        }
    }

    /// Whether either tier holds `fingerprint`, without counting a lookup
    /// or touching LRU order — a probe, not a read.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.entries.contains_key(&fingerprint) || self.file_entries.contains_key(&fingerprint)
    }

    /// Entries currently in the memory tier.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Writes the union of the file tier and the memory tier back to the
    /// attached file (no-op without a file tier).
    ///
    /// # Errors
    ///
    /// Returns an I/O error from writing the file.
    pub fn persist(&self) -> std::io::Result<()>
    where
        V: ToJson,
    {
        let Some(path) = &self.file_path else {
            return Ok(());
        };
        let mut merged: Vec<(u64, &V)> = self
            .file_entries
            .iter()
            .filter(|(k, _)| !self.entries.contains_key(k))
            .map(|(k, v)| (*k, v))
            .chain(self.entries.iter().map(|(k, (v, _))| (*k, v)))
            .collect();
        merged.sort_by_key(|(k, _)| *k);
        let doc = Value::Obj(
            merged
                .into_iter()
                .map(|(k, v)| (fingerprint::to_hex(k), v.to_json()))
                .collect(),
        );
        // Write-then-rename so a concurrent reader never sees a truncated
        // file (a malformed cache file is deliberately a hard error); the
        // temp name carries the pid so concurrent writers don't share it.
        let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc.render())?;
        std::fs::rename(&tmp, path)
    }
}

/// A cloneable, thread-safe handle to a [`CompileCache`], shared between
/// the worker pool's threads.
#[derive(Debug)]
pub struct SharedCache<V> {
    inner: Arc<Mutex<CompileCache<V>>>,
}

impl<V> Clone for SharedCache<V> {
    fn clone(&self) -> Self {
        SharedCache {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V: Clone> SharedCache<V> {
    /// Wraps a cache for concurrent use.
    pub fn new(cache: CompileCache<V>) -> Self {
        SharedCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// An in-memory shared cache of the given capacity.
    pub fn in_memory(capacity: usize) -> Self {
        Self::new(CompileCache::new(capacity))
    }

    /// See [`CompileCache::get`].
    pub fn get(&self, fingerprint: u64) -> Option<CacheHit<V>> {
        self.inner.lock().expect("cache lock").get(fingerprint)
    }

    /// See [`CompileCache::insert`].
    pub fn insert(&self, fingerprint: u64, value: V) {
        self.inner
            .lock()
            .expect("cache lock")
            .insert(fingerprint, value);
    }

    /// See [`CompileCache::contains`].
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.inner.lock().expect("cache lock").contains(fingerprint)
    }

    /// See [`CompileCache::stats`].
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats()
    }

    /// See [`CompileCache::len`].
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("cache lock").is_empty()
    }

    /// See [`CompileCache::persist`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error from writing the file.
    pub fn persist(&self) -> std::io::Result<()>
    where
        V: ToJson,
    {
        self.inner.lock().expect("cache lock").persist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, JsonError, ToJson, Value};

    #[derive(Debug, Clone, PartialEq)]
    struct Payload(u64);

    impl ToJson for Payload {
        fn to_json(&self) -> Value {
            Value::Num(self.0 as f64)
        }
    }

    impl FromJson for Payload {
        fn from_json(value: &Value) -> Result<Self, JsonError> {
            value
                .as_u64()
                .map(Payload)
                .ok_or_else(|| JsonError::schema("payload must be an integer"))
        }
    }

    #[test]
    fn contains_is_a_silent_probe() {
        let mut c: CompileCache<Payload> = CompileCache::new(4);
        assert!(!c.contains(1));
        c.insert(1, Payload(10));
        assert!(c.contains(1));
        let before = c.stats();
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert_eq!(c.stats(), before, "probes leave the counters untouched");
    }

    #[test]
    fn hit_miss_and_stats() {
        let mut c: CompileCache<Payload> = CompileCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, Payload(10));
        let hit = c.get(1).unwrap();
        assert_eq!(hit.value, Payload(10));
        assert_eq!(hit.tier, CacheTier::Memory);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: CompileCache<Payload> = CompileCache::new(2);
        c.insert(1, Payload(1));
        c.insert(2, Payload(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.insert(3, Payload(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c: CompileCache<Payload> = CompileCache::new(2);
        c.insert(1, Payload(1));
        c.insert(1, Payload(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap().value, Payload(9));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn file_tier_roundtrip() {
        let dir = std::env::temp_dir().join("ftqc-service-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tier.json");
        let _ = std::fs::remove_file(&path);

        let mut c: CompileCache<Payload> = CompileCache::new(8).with_file_tier(&path).unwrap();
        c.insert(0xabc, Payload(42));
        c.persist().unwrap();

        let mut reloaded: CompileCache<Payload> =
            CompileCache::new(8).with_file_tier(&path).unwrap();
        let hit = reloaded.get(0xabc).expect("file tier hit");
        assert_eq!(hit.value, Payload(42));
        assert_eq!(hit.tier, CacheTier::File);
        assert_eq!(reloaded.stats().file_hits, 1);
        // Promoted entries now hit memory.
        assert_eq!(reloaded.get(0xabc).unwrap().tier, CacheTier::Memory);
    }

    #[test]
    fn evicted_entries_demote_to_file_tier() {
        let dir = std::env::temp_dir().join("ftqc-service-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demote.json");
        let _ = std::fs::remove_file(&path);

        let mut c: CompileCache<Payload> = CompileCache::new(2).with_file_tier(&path).unwrap();
        for k in 0..5 {
            c.insert(k, Payload(k * 10));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 3);
        // Evicted entries are still served (from the demoted file tier)…
        assert_eq!(c.get(0).unwrap().value, Payload(0));
        // …and persist() writes all five.
        c.persist().unwrap();
        let mut reloaded: CompileCache<Payload> =
            CompileCache::new(8).with_file_tier(&path).unwrap();
        for k in 0..5 {
            assert_eq!(reloaded.get(k).unwrap().value, Payload(k * 10), "key {k}");
        }
    }

    #[test]
    fn malformed_file_tier_is_an_error() {
        let dir = std::env::temp_dir().join("ftqc-service-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(CompileCache::<Payload>::new(8)
            .with_file_tier(&path)
            .is_err());
    }

    #[test]
    fn shared_cache_is_concurrent() {
        let cache: SharedCache<Payload> = SharedCache::in_memory(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..16 {
                        cache.insert(t * 100 + i, Payload(i));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.stats().insertions, 64);
    }
}
