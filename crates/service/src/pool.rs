//! A deterministic scoped worker pool.
//!
//! [`WorkerPool::run`] fans a job list across `workers` OS threads pulling
//! from a shared queue, then merges results **in submission order**: the
//! output of a parallel run is byte-identical to running the same closure
//! serially over the same list, whatever the thread interleaving was. That
//! property is what lets `explore_parallel` promise exactly the same
//! result set as serial `explore`.

use std::sync::mpsc;
use std::sync::Mutex;

/// A fixed-width pool of `std::thread` workers.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every job and returns the results in submission
    /// order.
    ///
    /// Work distribution is dynamic (each idle worker pulls the next
    /// unclaimed job), so long and short jobs interleave well; ordering is
    /// restored when merging, so callers observe serial semantics.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker closure.
    pub fn run<J, R, F>(&self, jobs: Vec<J>, f: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> R + Sync,
    {
        self.run_with(jobs, f, |_, _| {})
    }

    /// [`WorkerPool::run`] plus a streaming hook: `emit(index, &result)`
    /// is called from the merging thread for every result **in submission
    /// order**, as soon as the ordered prefix is complete — result 3 is
    /// emitted the moment results 0..=3 all exist, without waiting for the
    /// rest of the batch. The full ordered result list is still returned.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker closure.
    pub fn run_with<J, R, F, E>(&self, jobs: Vec<J>, f: F, mut emit: E) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> R + Sync,
        E: FnMut(usize, &R),
    {
        let n = jobs.len();
        if self.workers == 1 || n <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(index, job)| {
                    let result = f(job);
                    emit(index, &result);
                    result
                })
                .collect();
        }

        let queue = Mutex::new(jobs.into_iter().enumerate());
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let f = &f;
        let queue = &queue;

        let slots = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers.min(n))
                .map(|_| {
                    let tx = tx.clone();
                    scope.spawn(move || loop {
                        // Hold the lock only to claim a job, never while
                        // running it.
                        let claimed = queue.lock().expect("job queue lock").next();
                        match claimed {
                            Some((index, job)) => {
                                if tx.send((index, f(job))).is_err() {
                                    break;
                                }
                            }
                            None => break,
                        }
                    })
                })
                .collect();
            drop(tx);

            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            let mut next_emit = 0;
            for (index, result) in rx {
                slots[index] = Some(result);
                // Flush the newly-complete ordered prefix to the stream.
                while next_emit < n {
                    match &slots[next_emit] {
                        Some(ready) => emit(next_emit, ready),
                        None => break,
                    }
                    next_emit += 1;
                }
            }
            // Join by hand so a panicking worker's own payload reaches the
            // caller (scope's implicit join would replace it with a generic
            // "a scoped thread panicked").
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
            slots
        });
        slots
            .into_iter()
            .map(|s| s.expect("every job produces exactly one result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<u64> = (0..100).collect();
        let out = pool.run(jobs.clone(), |j| j * j);
        let expected: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn matches_serial_with_uneven_job_times() {
        let pool = WorkerPool::new(3);
        let jobs: Vec<u64> = (0..24).collect();
        let out = pool.run(jobs, |j| {
            // Early jobs sleep longest so completion order inverts
            // submission order.
            std::thread::sleep(std::time::Duration::from_millis(24 - j.min(24)));
            j * 10
        });
        assert_eq!(out, (0..24).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn uses_multiple_threads() {
        let pool = WorkerPool::new(4);
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        pool.run((0..16).collect::<Vec<u32>>(), |j| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            live.fetch_sub(1, Ordering::SeqCst);
            j
        });
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "at least two jobs should have overlapped"
        );
    }

    #[test]
    fn single_worker_and_empty_inputs() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.run(vec![1, 2, 3], |j| j + 1), vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(WorkerPool::new(8).run(empty, |j| j), Vec::<u32>::new());
    }

    #[test]
    fn run_with_emits_every_result_in_order() {
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let mut emitted = Vec::new();
            let out = pool.run_with(
                (0..32u64).collect::<Vec<_>>(),
                |j| {
                    // Invert completion order so streaming must buffer.
                    std::thread::sleep(std::time::Duration::from_millis(32 - j.min(32)));
                    j * 2
                },
                |index, r| emitted.push((index, *r)),
            );
            assert_eq!(out, (0..32).map(|j| j * 2).collect::<Vec<_>>());
            assert_eq!(
                emitted,
                (0..32).map(|j| (j as usize, j * 2)).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn run_with_streams_the_prefix_before_the_batch_finishes() {
        use std::sync::atomic::AtomicBool;
        // Job 0 is instant, job 1 blocks until job 0 has been emitted:
        // deadlock-free only if the prefix streams mid-run.
        let first_emitted = AtomicBool::new(false);
        let pool = WorkerPool::new(2);
        let out = pool.run_with(
            vec![0u32, 1],
            |j| {
                if j == 1 {
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                    while !first_emitted.load(Ordering::SeqCst) {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "job 0 was never emitted while job 1 ran"
                        );
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                j
            },
            |index, _| {
                if index == 0 {
                    first_emitted.store(true, Ordering::SeqCst);
                }
            },
        );
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert!(WorkerPool::auto().workers() >= 1);
    }

    #[test]
    fn worker_panic_surfaces_its_own_message() {
        let caught = std::panic::catch_unwind(|| {
            WorkerPool::new(2).run((0..8).collect::<Vec<u32>>(), |j| {
                assert!(j != 5, "job five exploded");
                j
            })
        })
        .expect_err("the pool must propagate the panic");
        let message = caught
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("job five exploded"),
            "worker's own panic message must survive, got {message:?}"
        );
    }
}
