//! Fixed-bucket log₂ histograms over plain atomics.
//!
//! An observation of `v` microseconds lands in the bucket whose upper
//! bound is the smallest power of two ≥ `v` (bucket 0 catches 0 and 1).
//! With [`BUCKETS`] buckets the finite bounds span 1 µs to 2³⁸ µs (about
//! 76 hours); anything larger lands in the `+Inf` overflow bucket. That
//! layout makes `record` a couple of relaxed atomic bumps — cheap enough
//! for every request on the server's hot path — while still supporting
//! upper-bound quantile estimates and the Prometheus histogram exposition.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: indices `0..BUCKETS-1` have finite upper bounds
/// `2^0 .. 2^(BUCKETS-2)`; the last bucket is `+Inf`.
pub const BUCKETS: usize = 40;

/// Adds `v` to an atomic counter with saturation instead of wrap-around,
/// so a soak run can never silently overflow a latency sum.
pub fn saturating_counter_add(cell: &AtomicU64, v: u64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(v);
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// A `Duration` as whole microseconds, saturating at `u64::MAX` instead of
/// truncating: `as_micros()` returns a `u128`, and a plain `as u64` cast
/// would wrap a pathological duration to a small number.
pub fn duration_micros_saturating(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The bucket index for an observation.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // Smallest i with v <= 2^i, clamped into the +Inf bucket.
        ((64 - (v - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i`, or `None` for `+Inf`.
fn bucket_bound(i: usize) -> Option<u64> {
    (i < BUCKETS - 1).then(|| 1u64 << i)
}

/// A concurrent log₂ latency histogram.
///
/// All counters are relaxed atomics; `record` never locks. Reads go
/// through [`Histogram::snapshot`], which freezes a point-in-time copy for
/// quantiles and rendering.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `v` microseconds.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        saturating_counter_add(&self.sum, v);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a `Duration`, saturating the microsecond conversion.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(duration_micros_saturating(d));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy for quantiles and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub counts: Vec<u64>,
    /// Total observations (`counts` summed).
    pub count: u64,
    /// Saturating sum of all observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`):
    /// the bound of the bucket holding the target rank, clamped into
    /// `[min, max]` so the estimate never leaves the observed range.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let bound = bucket_bound(i).unwrap_or(self.max);
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Appends the Prometheus histogram exposition for this snapshot:
    /// cumulative `<name>_bucket` series up to the highest non-empty
    /// finite bound plus `le="+Inf"`, then `<name>_sum` and
    /// `<name>_count`. `labels` is the rendered label list without braces
    /// (e.g. `endpoint="compile"`), or empty.
    pub fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write as _;
        let sep = if labels.is_empty() { "" } else { "," };
        let highest = self
            .counts
            .iter()
            .rposition(|c| *c > 0)
            .unwrap_or(0)
            .min(BUCKETS - 2);
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate().take(highest + 1) {
            cumulative += c;
            let bound = bucket_bound(i).expect("finite bucket");
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
            self.count
        );
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", self.sum);
            let _ = writeln!(out, "{name}_count {}", self.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", self.sum);
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_inclusive_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every finite bucket's bound maps back into that bucket.
        for i in 0..BUCKETS - 1 {
            let bound = bucket_bound(i).unwrap();
            assert_eq!(bucket_index(bound), i, "bound {bound}");
        }
    }

    #[test]
    fn records_and_estimates_quantiles() {
        let h = Histogram::new();
        for v in [3, 3, 3, 3, 3, 3, 3, 3, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 9 * 3 + 1000);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 1000);
        // p50 falls in the bucket with bound 4; p99 reaches the outlier's
        // bucket (bound 1024) but clamps to the observed max.
        assert_eq!(s.p50(), 4);
        assert_eq!(s.p99(), 1000);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        let mut out = String::new();
        s.render_prometheus(&mut out, "x", "");
        assert!(out.contains("x_bucket{le=\"1\"} 0"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 0"));
        assert!(out.contains("x_count 0"));
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_labelled() {
        let h = Histogram::new();
        for v in [1, 2, 2, 900] {
            h.record(v);
        }
        let mut out = String::new();
        h.snapshot()
            .render_prometheus(&mut out, "lat", "endpoint=\"compile\"");
        assert!(out.contains("lat_bucket{endpoint=\"compile\",le=\"1\"} 1"));
        assert!(out.contains("lat_bucket{endpoint=\"compile\",le=\"2\"} 3"));
        assert!(out.contains("lat_bucket{endpoint=\"compile\",le=\"1024\"} 4"));
        assert!(out.contains("lat_bucket{endpoint=\"compile\",le=\"+Inf\"} 4"));
        assert!(out.contains("lat_sum{endpoint=\"compile\"} 905"));
        assert!(out.contains("lat_count{endpoint=\"compile\"} 4"));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.sum, u64::MAX, "saturated, not wrapped");
        assert_eq!(s.count, 2);
        assert_eq!(s.counts[BUCKETS - 1], 2, "overflow bucket caught both");
    }

    #[test]
    fn duration_conversion_saturates() {
        use std::time::Duration;
        assert_eq!(
            duration_micros_saturating(Duration::from_micros(1234)),
            1234
        );
        // u64::MAX seconds is far beyond u64::MAX microseconds: a plain
        // `as u64` cast of `as_micros()` would truncate, this saturates.
        assert_eq!(
            duration_micros_saturating(Duration::new(u64::MAX, 0)),
            u64::MAX
        );
    }
}
