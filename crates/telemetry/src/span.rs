//! Trace identifiers and the per-request span tree.
//!
//! A [`TraceId`] is minted once per server request (or accepted inbound,
//! so a client can pick its own); an [`ActiveTrace`] collects [`Span`]s —
//! all timed in microseconds relative to the trace's epoch, so a span
//! recorded on a worker thread lines up with spans recorded on the
//! connection thread without any clock plumbing. [`ActiveTrace::finish`]
//! freezes the tree into a [`FinishedTrace`] for the flight recorder and
//! the `/v1/trace/<id>` JSON shape.

use ftqc_service::json::{self, FromJson, JsonError, ToJson, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A 64-bit request-scoped trace identifier, rendered as 16 hex digits in
/// the `x-ftqc-trace` header and the `/v1/trace/<id>` path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

/// SplitMix64 — a cheap full-period mixer, enough to make successive
/// minted ids look unrelated.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceId {
    /// Mints a fresh process-unique id: a per-process counter mixed with a
    /// boot-time seed, so ids are unique within a process and unlikely to
    /// collide across server restarts.
    pub fn mint() -> TraceId {
        static SEED: OnceLock<u64> = OnceLock::new();
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let seed = *SEED.get_or_init(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            splitmix64(nanos ^ (std::process::id() as u64).rotate_left(32))
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TraceId::from_u64(splitmix64(seed ^ n))
    }

    /// Wraps a raw id; 0 is reserved and remaps to a fixed sentinel.
    pub fn from_u64(raw: u64) -> TraceId {
        TraceId(if raw == 0 { 0x00DD_BA11 } else { raw })
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The 16-hex-digit wire form.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form (1–16 hex digits, case-insensitive).
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId::from_u64)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One timed operation inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Index of this span in the trace (the root is always 0).
    pub id: u32,
    /// Parent span index; `None` only for the root.
    pub parent: Option<u32>,
    /// What this span measures (`"request"`, `"parse"`, `"queue-wait"`,
    /// a stage name, `"route"`).
    pub name: String,
    /// Start, in microseconds since the trace epoch.
    pub start_micros: u64,
    /// Duration in microseconds.
    pub duration_micros: u64,
    /// Free-form key=value attributes (cache-hit flags, fingerprints,
    /// job ids, router counters).
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// The attribute value for `key`, when present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl ToJson for Span {
    fn to_json(&self) -> Value {
        let mut fields = vec![("id".to_string(), Value::Num(self.id as f64))];
        if let Some(parent) = self.parent {
            fields.push(("parent".to_string(), Value::Num(parent as f64)));
        }
        fields.push(("name".to_string(), Value::Str(self.name.clone())));
        fields.push((
            "start_micros".to_string(),
            Value::Num(self.start_micros as f64),
        ));
        fields.push((
            "duration_micros".to_string(),
            Value::Num(self.duration_micros as f64),
        ));
        if !self.attrs.is_empty() {
            fields.push((
                "attrs".to_string(),
                Value::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        Value::Obj(fields)
    }
}

impl FromJson for Span {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let attrs = match value.get("attrs") {
            None => Vec::new(),
            Some(Value::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or_else(|| JsonError::schema("span attrs must be strings"))
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err(JsonError::schema("\"attrs\" must be an object")),
        };
        Ok(Span {
            id: json::require_u64(value, "id")? as u32,
            parent: value
                .get("parent")
                .and_then(Value::as_u64)
                .map(|p| p as u32),
            name: json::require_str(value, "name")?.to_string(),
            start_micros: json::require_u64(value, "start_micros")?,
            duration_micros: json::require_u64(value, "duration_micros")?,
            attrs,
        })
    }
}

/// The span collector for one in-flight request. Cloned (via `Arc`) into
/// worker threads and trace hooks; every mutation goes through one mutex,
/// held only long enough to push a span.
#[derive(Debug)]
pub struct ActiveTrace {
    id: TraceId,
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
}

impl ActiveTrace {
    /// Starts a trace whose root span is named `root` and whose clock
    /// starts at `epoch` (pass the instant the request started being read
    /// so parse time is inside the trace).
    pub fn begin_at(id: TraceId, root: impl Into<String>, epoch: Instant) -> Arc<ActiveTrace> {
        Arc::new(ActiveTrace {
            id,
            epoch,
            spans: Mutex::new(vec![Span {
                id: 0,
                parent: None,
                name: root.into(),
                start_micros: 0,
                duration_micros: 0,
                attrs: Vec::new(),
            }]),
        })
    }

    /// [`ActiveTrace::begin_at`] with the epoch set to now.
    pub fn begin(id: TraceId, root: impl Into<String>) -> Arc<ActiveTrace> {
        ActiveTrace::begin_at(id, root, Instant::now())
    }

    /// This trace's id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Microseconds elapsed since the trace epoch.
    pub fn now_micros(&self) -> u64 {
        crate::hist::duration_micros_saturating(self.epoch.elapsed())
    }

    /// Records a completed span and returns its index. A missing parent
    /// defaults to the root.
    pub fn add_span(
        &self,
        name: impl Into<String>,
        parent: Option<u32>,
        start_micros: u64,
        duration_micros: u64,
        attrs: Vec<(String, String)>,
    ) -> u32 {
        let mut spans = self.spans.lock().expect("trace span lock");
        let id = spans.len() as u32;
        spans.push(Span {
            id,
            parent: Some(parent.unwrap_or(0)),
            name: name.into(),
            start_micros,
            duration_micros,
            attrs,
        });
        id
    }

    /// The most recently recorded span with `name` carrying `key=value`
    /// (how the router span finds its per-job `map` parent).
    pub fn find_span_with_attr(&self, name: &str, key: &str, value: &str) -> Option<u32> {
        let spans = self.spans.lock().expect("trace span lock");
        spans
            .iter()
            .rev()
            .find(|s| s.name == name && s.attr(key) == Some(value))
            .map(|s| s.id)
    }

    /// Freezes the trace: the root span's duration becomes the elapsed
    /// time, and the request's status and endpoint are stamped on.
    pub fn finish(&self, status: u16, endpoint: &str) -> FinishedTrace {
        let duration = self.now_micros();
        let mut spans = self.spans.lock().expect("trace span lock").clone();
        spans[0].duration_micros = duration;
        FinishedTrace {
            id: self.id,
            endpoint: endpoint.to_string(),
            status,
            duration_micros: duration,
            spans,
        }
    }
}

/// A completed request's frozen span tree — what the flight recorder
/// retains and `GET /v1/trace/<id>` serves.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// The request's trace id.
    pub id: TraceId,
    /// The endpoint label the request was accounted under.
    pub endpoint: String,
    /// The HTTP status the request finished with.
    pub status: u16,
    /// Root (whole-request) duration in microseconds.
    pub duration_micros: u64,
    /// The span tree; index 0 is the root.
    pub spans: Vec<Span>,
}

impl FinishedTrace {
    /// The one-line summary served by `GET /v1/traces`.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            id: self.id,
            endpoint: self.endpoint.clone(),
            status: self.status,
            duration_micros: self.duration_micros,
            spans: self.spans.len() as u64,
        }
    }

    /// A span's self-time: its duration minus its children's durations
    /// (saturating, since child clocks can overlap under concurrency).
    pub fn self_micros(&self, span: u32) -> u64 {
        let children: u64 = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(span) && s.id != span)
            .map(|s| s.duration_micros)
            .sum();
        self.spans[span as usize]
            .duration_micros
            .saturating_sub(children)
    }
}

impl ToJson for FinishedTrace {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("id".to_string(), Value::Str(self.id.to_hex())),
            ("endpoint".to_string(), Value::Str(self.endpoint.clone())),
            ("status".to_string(), Value::Num(self.status as f64)),
            (
                "duration_micros".to_string(),
                Value::Num(self.duration_micros as f64),
            ),
            (
                "spans".to_string(),
                Value::Arr(self.spans.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for FinishedTrace {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let id = TraceId::parse(json::require_str(value, "id")?)
            .ok_or_else(|| JsonError::schema("\"id\" must be 1-16 hex digits"))?;
        let spans = match value.get("spans") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(Span::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(JsonError::schema("\"spans\" must be an array")),
        };
        if spans.is_empty() {
            return Err(JsonError::schema("a trace has at least its root span"));
        }
        Ok(FinishedTrace {
            id,
            endpoint: json::require_str(value, "endpoint")?.to_string(),
            status: json::require_u64(value, "status")? as u16,
            duration_micros: json::require_u64(value, "duration_micros")?,
            spans,
        })
    }
}

/// The `GET /v1/traces` listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace id.
    pub id: TraceId,
    /// Endpoint label.
    pub endpoint: String,
    /// Final HTTP status.
    pub status: u16,
    /// Whole-request duration in microseconds.
    pub duration_micros: u64,
    /// How many spans the full trace holds.
    pub spans: u64,
}

impl ToJson for TraceSummary {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("id".to_string(), Value::Str(self.id.to_hex())),
            ("endpoint".to_string(), Value::Str(self.endpoint.clone())),
            ("status".to_string(), Value::Num(self.status as f64)),
            (
                "duration_micros".to_string(),
                Value::Num(self.duration_micros as f64),
            ),
            ("spans".to_string(), Value::Num(self.spans as f64)),
        ])
    }
}

impl FromJson for TraceSummary {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(TraceSummary {
            id: TraceId::parse(json::require_str(value, "id")?)
                .ok_or_else(|| JsonError::schema("\"id\" must be 1-16 hex digits"))?,
            endpoint: json::require_str(value, "endpoint")?.to_string(),
            status: json::require_u64(value, "status")? as u16,
            duration_micros: json::require_u64(value, "duration_micros")?,
            spans: json::require_u64(value, "spans")?,
        })
    }
}

/// Renders a trace as an indented tree with per-span self-times — the
/// shape behind `ftqc compile --trace` and `ftqc client trace <id>`.
pub fn render_span_tree(trace: &FinishedTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {}  endpoint={}  status={}  {} spans",
        trace.id.to_hex(),
        trace.endpoint,
        trace.status,
        trace.spans.len()
    );
    // Depth-first over parent links, preserving recording order among
    // siblings; defensive visited set so a malformed parent cycle (e.g. a
    // hand-crafted trace JSON) cannot hang the renderer.
    let mut visited = vec![false; trace.spans.len()];
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some((id, depth)) = stack.pop() {
        if std::mem::replace(&mut visited[id as usize], true) {
            continue;
        }
        let span = &trace.spans[id as usize];
        let label = format!("{}{}", "  ".repeat(depth), span.name);
        let attrs = span
            .attrs
            .iter()
            .map(|(k, v)| format!(" {k}={v}"))
            .collect::<String>();
        let _ = writeln!(
            out,
            "{label:<28} {:>10}µs  self {:>10}µs{attrs}",
            span.duration_micros,
            trace.self_micros(id)
        );
        // Push children in reverse so the first-recorded child renders
        // first.
        for child in trace
            .spans
            .iter()
            .filter(|s| s.parent == Some(id) && s.id != id)
            .rev()
        {
            stack.push((child.id, depth + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_mint_unique_and_roundtrip_hex() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_eq!(TraceId::parse(&a.to_hex()), Some(a));
        assert_eq!(a.to_hex().len(), 16);
        assert_eq!(TraceId::parse("ff"), Some(TraceId::from_u64(0xff)));
        assert!(TraceId::parse("").is_none());
        assert!(TraceId::parse("xyz").is_none());
        assert!(TraceId::parse("112233445566778899").is_none());
        assert_ne!(TraceId::from_u64(0).as_u64(), 0, "zero is remapped");
    }

    #[test]
    fn spans_collect_into_a_tree_with_self_times() {
        let trace = ActiveTrace::begin(TraceId::from_u64(7), "request");
        let map = trace.add_span(
            "map",
            None,
            10,
            100,
            vec![
                ("job".into(), "a".into()),
                ("cached".into(), "false".into()),
            ],
        );
        trace.add_span("route", Some(map), 110, 0, vec![]);
        trace.add_span("schedule", None, 110, 40, vec![("job".into(), "a".into())]);
        assert_eq!(trace.find_span_with_attr("map", "job", "a"), Some(map));
        assert_eq!(trace.find_span_with_attr("map", "job", "zz"), None);

        let done = trace.finish(200, "compile");
        assert_eq!(done.status, 200);
        assert_eq!(done.spans.len(), 4);
        assert_eq!(done.spans[0].name, "request");
        assert!(done.duration_micros >= done.spans[0].start_micros);
        // Root self-time excludes its direct children (map + schedule).
        assert_eq!(
            done.self_micros(0),
            done.duration_micros.saturating_sub(140)
        );
        assert_eq!(done.self_micros(map), 100, "route child has 0 duration");

        let rendered = render_span_tree(&done);
        assert!(rendered.contains("trace 0000000000000007"));
        assert!(rendered.contains("  map"));
        assert!(rendered.contains("    route"));
        assert!(rendered.contains("cached=false"));
    }

    #[test]
    fn finished_traces_roundtrip_json() {
        let trace = ActiveTrace::begin(TraceId::from_u64(0xabc), "request");
        trace.add_span("parse", None, 0, 5, vec![("bytes".into(), "120".into())]);
        let done = trace.finish(200, "compile");
        let json = done.to_json().render();
        let back = FinishedTrace::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, done);
        // Unknown fields are tolerated (additive wire evolution).
        let with_extra = json.replacen('{', "{\"future\":[1,2],", 1);
        let back = FinishedTrace::from_json(&Value::parse(&with_extra).unwrap()).unwrap();
        assert_eq!(back, done);

        let summary = done.summary();
        assert_eq!(summary.spans, 2);
        let sjson = summary.to_json().render();
        let sback = TraceSummary::from_json(&Value::parse(&sjson).unwrap()).unwrap();
        assert_eq!(sback, summary);
    }
}
