//! `ftqc-telemetry` — request-scoped tracing and quantile-capable latency
//! metrics for the compile server.
//!
//! Three pillars, all dependency-free over `std` atomics:
//!
//! * [`hist`] — fixed-bucket log₂ [`Histogram`]s: every observation lands
//!   in the bucket whose upper bound is the next power of two, so a
//!   handful of `AtomicU64`s yields Prometheus `_bucket`/`_sum`/`_count`
//!   series and p50/p95/p99 estimates without locks or floats on the hot
//!   path.
//! * [`span`] — a 64-bit [`TraceId`] minted per server request (or
//!   accepted inbound from the `x-ftqc-trace` header) and an
//!   [`ActiveTrace`] collecting [`Span`]s — name, parent, start/duration
//!   micros, key=value attrs — that a finished request freezes into a
//!   [`FinishedTrace`] span tree.
//! * [`recorder`] — the [`FlightRecorder`]: a bounded, lock-striped ring
//!   of the last N finished traces with always-keep-slowest retention,
//!   queried by `GET /v1/traces` and `GET /v1/trace/<id>`.
//!
//! [`hook::StageSpanHook`] adapts the compiler's
//! [`TraceHook`](ftqc_compiler::TraceHook) stream: each finished pipeline
//! stage becomes a child span carrying its cache-hit flag and artifact
//! fingerprint, so one trace covers parse → queue-wait → per-stage compile
//! → router attribution.

pub mod hist;
pub mod hook;
pub mod recorder;
pub mod span;

pub use hist::{duration_micros_saturating, saturating_counter_add, Histogram, HistogramSnapshot};
pub use hook::StageSpanHook;
pub use recorder::{FlightRecorder, DEFAULT_TRACE_CAPACITY};
pub use span::{render_span_tree, ActiveTrace, FinishedTrace, Span, TraceId, TraceSummary};
