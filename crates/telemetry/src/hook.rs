//! Bridges the compiler's stage-event stream into a request trace.

use crate::span::ActiveTrace;
use ftqc_compiler::{StageEvent, TraceHook};
use std::sync::Arc;

/// A [`TraceHook`] that turns every finished pipeline stage into a child
/// span of a request trace: the span carries the stage's cache-hit flag
/// and artifact fingerprint, and its start time is back-dated by the
/// stage's own duration so stages line up on the request's clock.
///
/// Attach one per compile job (sessions are per-job, so the hook is too);
/// `with_attr` stamps a shared attribute — typically `job=<id>` — on every
/// stage span, which is how a batch request's interleaved stage spans stay
/// attributable.
#[derive(Debug)]
pub struct StageSpanHook {
    trace: Arc<ActiveTrace>,
    attrs: Vec<(String, String)>,
}

impl StageSpanHook {
    /// A hook appending stage spans to `trace` (parented to the root).
    pub fn new(trace: Arc<ActiveTrace>) -> StageSpanHook {
        StageSpanHook {
            trace,
            attrs: Vec::new(),
        }
    }

    /// Adds a `key=value` attribute stamped on every stage span.
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> StageSpanHook {
        self.attrs.push((key.into(), value.into()));
        self
    }
}

impl TraceHook for StageSpanHook {
    fn on_stage(&self, event: &StageEvent) {
        let end = self.trace.now_micros();
        let mut attrs = self.attrs.clone();
        attrs.push(("cached".to_string(), event.cached.to_string()));
        attrs.push((
            "fingerprint".to_string(),
            format!("{:016x}", event.fingerprint),
        ));
        self.trace.add_span(
            event.stage.name(),
            None,
            end.saturating_sub(event.micros),
            event.micros,
            attrs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceId;
    use ftqc_circuit::Circuit;
    use ftqc_compiler::{CompileSession, CompilerOptions, Stage};

    #[test]
    fn stage_events_become_child_spans() {
        let mut circuit = Circuit::new(3);
        circuit.h(0).cnot(0, 1).t(2).cnot(1, 2);
        let trace = ActiveTrace::begin(TraceId::from_u64(42), "request");
        let hook = Arc::new(StageSpanHook::new(Arc::clone(&trace)).with_attr("job", "j1"));
        let session = CompileSession::new(CompilerOptions::default()).with_hook(hook);
        session.run_until(&circuit, Stage::Schedule).unwrap();

        let done = trace.finish(200, "compile");
        let names: Vec<&str> = done.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["request", "prepare", "lower", "map", "schedule"]
        );
        for span in &done.spans[1..] {
            assert_eq!(span.parent, Some(0));
            assert_eq!(span.attr("job"), Some("j1"));
            assert_eq!(span.attr("cached"), Some("false"));
            let fp = span.attr("fingerprint").expect("fingerprint attr");
            assert_eq!(fp.len(), 16, "hex fingerprint: {fp}");
            assert!(
                span.start_micros + span.duration_micros <= done.duration_micros,
                "stage spans sit inside the request"
            );
        }
    }
}
