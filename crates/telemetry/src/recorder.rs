//! The flight recorder: a bounded, lock-striped ring of the last N
//! finished request traces.
//!
//! Recording happens on every request, so the structure is built for
//! write throughput: traces land in one of [`STRIPES`] independent
//! mutex-guarded rings keyed by trace id, and eviction is local to the
//! stripe. Retention is *always-keep-slowest*: when a stripe overflows,
//! the oldest entry is dropped **unless** it is the stripe's slowest
//! trace, in which case the next-oldest goes instead — so the request you
//! most want to debug survives a flood of fast ones.

use crate::span::{FinishedTrace, TraceId, TraceSummary};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent rings (and locks).
pub const STRIPES: usize = 8;

/// Default total capacity (traces, across all stripes).
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

#[derive(Debug)]
struct Entry {
    seq: u64,
    trace: Arc<FinishedTrace>,
}

/// The bounded trace ring. Cheap to share: interior mutability only.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<Entry>>>,
    per_stripe: usize,
    seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining about `capacity` traces in total (rounded up
    /// to a multiple of the stripe count; at least one per stripe).
    pub fn new(capacity: usize) -> FlightRecorder {
        let per_stripe = capacity.div_ceil(STRIPES).max(1);
        FlightRecorder {
            stripes: (0..STRIPES).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_stripe,
            seq: AtomicU64::new(0),
        }
    }

    fn stripe_of(&self, id: TraceId) -> &Mutex<VecDeque<Entry>> {
        &self.stripes[(id.as_u64() % STRIPES as u64) as usize]
    }

    /// Records a finished trace, evicting with keep-slowest retention.
    pub fn record(&self, trace: FinishedTrace) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripe_of(trace.id).lock().expect("recorder stripe");
        stripe.push_back(Entry {
            seq,
            trace: Arc::new(trace),
        });
        while stripe.len() > self.per_stripe {
            let slowest = stripe
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.trace.duration_micros)
                .map(|(i, _)| i)
                .unwrap_or(0);
            // Drop the oldest entry that is not the stripe's slowest.
            let victim = if slowest == 0 { 1 } else { 0 };
            stripe.remove(victim);
        }
    }

    /// The full trace for `id`, when it is still retained. When a client
    /// reused an id, the most recently recorded trace wins.
    pub fn get(&self, id: TraceId) -> Option<Arc<FinishedTrace>> {
        let stripe = self.stripe_of(id).lock().expect("recorder stripe");
        stripe
            .iter()
            .rev()
            .find(|e| e.trace.id == id)
            .map(|e| Arc::clone(&e.trace))
    }

    /// Summaries of retained traces, newest first, keeping only traces at
    /// least `min_micros` long, capped at `limit`.
    pub fn recent(&self, min_micros: u64, limit: usize) -> Vec<TraceSummary> {
        let mut entries: Vec<(u64, TraceSummary)> = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().expect("recorder stripe");
            entries.extend(
                stripe
                    .iter()
                    .filter(|e| e.trace.duration_micros >= min_micros)
                    .map(|e| (e.seq, e.trace.summary())),
            );
        }
        entries.sort_by_key(|e| std::cmp::Reverse(e.0));
        entries.truncate(limit);
        entries.into_iter().map(|(_, s)| s).collect()
    }

    /// How many traces are currently retained.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("recorder stripe").len())
            .sum()
    }

    /// Whether the recorder holds no traces yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, micros: u64) -> FinishedTrace {
        FinishedTrace {
            id: TraceId::from_u64(id),
            endpoint: "compile".into(),
            status: 200,
            duration_micros: micros,
            spans: vec![crate::span::Span {
                id: 0,
                parent: None,
                name: "request".into(),
                start_micros: 0,
                duration_micros: micros,
                attrs: Vec::new(),
            }],
        }
    }

    #[test]
    fn records_and_fetches_by_id() {
        let rec = FlightRecorder::new(16);
        rec.record(trace(1, 100));
        rec.record(trace(2, 200));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.get(TraceId::from_u64(1)).unwrap().duration_micros, 100);
        assert!(rec.get(TraceId::from_u64(99)).is_none());
        // Reused id: latest wins.
        rec.record(trace(1, 555));
        assert_eq!(rec.get(TraceId::from_u64(1)).unwrap().duration_micros, 555);
    }

    #[test]
    fn recent_filters_sorts_and_limits() {
        let rec = FlightRecorder::new(64);
        for i in 0..10u64 {
            rec.record(trace(i + 1, i * 10));
        }
        let all = rec.recent(0, 100);
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].id, TraceId::from_u64(10), "newest first");
        let slow = rec.recent(50, 100);
        assert_eq!(slow.len(), 5, "min_micros filters");
        assert!(slow.iter().all(|s| s.duration_micros >= 50));
        assert_eq!(rec.recent(0, 3).len(), 3, "limit caps");
    }

    #[test]
    fn overflow_keeps_the_slowest_trace() {
        // Capacity 8 ⇒ one slot per stripe: every same-stripe insert
        // evicts, and the slowest must still survive.
        let rec = FlightRecorder::new(8);
        let slow = 5 * STRIPES as u64; // same stripe as the fast ids below
        rec.record(trace(slow, 1_000_000));
        for i in 1..=20u64 {
            rec.record(trace(i * STRIPES as u64, 10));
        }
        assert!(
            rec.get(TraceId::from_u64(slow)).is_some(),
            "slowest trace survives a flood of fast same-stripe traces"
        );
        assert!(rec.len() <= 8 + STRIPES, "bounded");
    }

    #[test]
    fn zero_capacity_still_retains_one_per_stripe() {
        let rec = FlightRecorder::new(0);
        rec.record(trace(1, 5));
        assert_eq!(rec.len(), 1);
    }
}
