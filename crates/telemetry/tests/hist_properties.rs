//! Property-based tests for the log₂ histogram: bucket accounting,
//! quantile ordering/bounds, and the Prometheus text round-trip.

use ftqc_telemetry::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// A mix of small, medium, and pathological magnitudes so every bucket
/// region (including `+Inf`) gets exercised.
fn arb_sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        1u64..100_000,
        (0u32..63).prop_map(|shift| 1u64 << shift),
        Just(u64::MAX),
    ]
}

fn observe(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// Parses the `name_bucket`/`name_sum`/`name_count` lines back out of the
/// exposition text: (cumulative bucket counts with their `le` bounds, sum,
/// count).
fn parse_prometheus(text: &str, name: &str) -> (Vec<(String, u64)>, u64, u64) {
    let mut buckets = Vec::new();
    let mut sum = None;
    let mut count = None;
    for line in text.lines() {
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        let value: u64 = value.parse().expect("numeric value");
        if let Some(rest) = series.strip_prefix(&format!("{name}_bucket{{")) {
            let le = rest
                .trim_end_matches('}')
                .split(',')
                .find_map(|kv| kv.strip_prefix("le="))
                .expect("bucket has an le label")
                .trim_matches('"')
                .to_string();
            buckets.push((le, value));
        } else if series.starts_with(&format!("{name}_sum")) {
            sum = Some(value);
        } else if series.starts_with(&format!("{name}_count")) {
            count = Some(value);
        }
    }
    (buckets, sum.expect("sum line"), count.expect("count line"))
}

proptest! {
    /// Per-bucket counts always sum to the snapshot's `_count`, and the
    /// saturating `_sum` never exceeds (and without saturation equals) the
    /// true total.
    #[test]
    fn bucket_counts_sum_to_count(samples in proptest::collection::vec(arb_sample(), 0..200)) {
        let s = observe(&samples);
        prop_assert_eq!(s.counts.iter().sum::<u64>(), s.count);
        prop_assert_eq!(s.count, samples.len() as u64);
        let true_sum = samples.iter().fold(0u64, |acc, v| acc.saturating_add(*v));
        prop_assert_eq!(s.sum, true_sum);
    }

    /// Quantiles are monotone in q and bounded by the observed min/max.
    #[test]
    fn quantiles_monotone_and_bounded(samples in proptest::collection::vec(arb_sample(), 1..200)) {
        let s = observe(&samples);
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        prop_assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = s.quantile(q);
            prop_assert!(est >= min && est <= max, "q={q} est={est} range=[{min},{max}]");
        }
    }

    /// The Prometheus text exposition parses back to the same totals:
    /// cumulative buckets are non-decreasing, `+Inf` equals `_count`, and
    /// `_sum`/`_count` match the snapshot.
    #[test]
    fn prometheus_text_roundtrips(samples in proptest::collection::vec(arb_sample(), 0..200)) {
        let s = observe(&samples);
        let mut text = String::new();
        s.render_prometheus(&mut text, "ftqc_test_micros", "endpoint=\"x\"");
        let (buckets, sum, count) = parse_prometheus(&text, "ftqc_test_micros");
        prop_assert_eq!(sum, s.sum);
        prop_assert_eq!(count, s.count);
        prop_assert!(!buckets.is_empty());
        prop_assert_eq!(buckets.last().unwrap().0.as_str(), "+Inf");
        prop_assert_eq!(buckets.last().unwrap().1, s.count, "+Inf bucket is the count");
        let mut last = 0u64;
        let mut last_bound = 0u64;
        for (le, cumulative) in &buckets {
            prop_assert!(*cumulative >= last, "cumulative counts never decrease");
            last = *cumulative;
            if le != "+Inf" {
                let bound: u64 = le.parse().expect("finite bound");
                prop_assert!(bound.is_power_of_two() && bound > last_bound || bound == 1);
                // Cumulative count at `bound` equals the samples <= bound.
                let expected = samples.iter().filter(|v| **v <= bound).count() as u64;
                prop_assert_eq!(*cumulative, expected, "le={}", bound);
                last_bound = bound;
            }
        }
    }
}
