//! Bottleneck analysis of compiled schedules.
//!
//! The paper's central quantity is the distillation lower bound
//! `l = n_T · t_MSF / n_MSF` (Eq. 2): a schedule close to `l` is
//! *distillation-bound* and adding routing paths is wasted space, while a
//! schedule far above `l` is *routing/serialisation-bound* and more bus
//! qubits (or a better mapping) buy real time. This module classifies a
//! compiled program so the design-space explorer — and a user staring at
//! one data point — can tell which side of the trade-off they are on.

use crate::pipeline::CompiledProgram;
use ftqc_arch::SurgeryOp;
use std::fmt;

/// Which resource limits the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Execution sits at (≤ ~15% above) the distillation lower bound:
    /// factories are the constraint, extra routing paths are wasted.
    Distillation,
    /// Execution is far above the bound and movement dominates busy time:
    /// routing congestion is the constraint.
    Routing,
    /// Execution is far above the bound with little movement: the circuit's
    /// own dependency chain is the constraint (more resources won't help).
    Serialization,
    /// No single dominant constraint.
    Balanced,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::Distillation => write!(f, "distillation-bound"),
            Bottleneck::Routing => write!(f, "routing-bound"),
            Bottleneck::Serialization => write!(f, "serialization-bound"),
            Bottleneck::Balanced => write!(f, "balanced"),
        }
    }
}

/// Quantitative bottleneck report for one compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    /// Execution time over the distillation lower bound (∞ when the bound
    /// is zero and time is not).
    pub overhead: f64,
    /// Fraction of the makespan during which every factory is producing:
    /// `n_magic · t_MSF / (factories · makespan)`, capped at 1.
    pub factory_utilization: f64,
    /// Movement's share of the schedule's total busy time (0..1).
    pub movement_share: f64,
    /// The busiest qubit's busy time over the makespan (0..1) — high values
    /// mean one serial chain paces the program.
    pub critical_qubit_utilization: f64,
    /// The classification.
    pub bottleneck: Bottleneck,
}

impl fmt::Display for BottleneckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (overhead {:.2}x, factories {:.0}% busy, movement {:.0}% of busy time, critical qubit {:.0}% busy)",
            self.bottleneck,
            self.overhead,
            self.factory_utilization * 100.0,
            self.movement_share * 100.0,
            self.critical_qubit_utilization * 100.0,
        )
    }
}

/// Overhead at or below which a schedule counts as distillation-bound.
const DISTILLATION_SLACK: f64 = 1.15;
/// Movement share above which an above-bound schedule counts as
/// routing-bound.
const ROUTING_SHARE: f64 = 0.35;
/// Critical-qubit utilisation above which an above-bound, low-movement
/// schedule counts as serialisation-bound.
const SERIAL_UTILIZATION: f64 = 0.5;

/// Analyses where a compiled program's time goes.
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
/// use ftqc_compiler::{analysis::diagnose, Compiler, CompilerOptions};
///
/// // 20 T gates through one factory: distillation-bound by construction.
/// let mut c = Circuit::new(4);
/// for i in 0..20 { c.t(i % 4); }
/// let p = Compiler::new(CompilerOptions::default()).compile(&c)?;
/// let report = diagnose(&p);
/// assert_eq!(report.bottleneck.to_string(), "distillation-bound");
/// # Ok::<(), ftqc_compiler::CompileError>(())
/// ```
pub fn diagnose(program: &CompiledProgram) -> BottleneckReport {
    let m = program.metrics();
    let makespan = m.execution_time.as_d();
    let overhead = if m.lower_bound.as_d() > 0.0 {
        makespan / m.lower_bound.as_d()
    } else if makespan > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };

    let factory_utilization = if makespan > 0.0 && m.factories > 0 {
        (m.n_magic_states as f64
            * program
                .compile_options()
                .target
                .timing
                .magic_production
                .as_d()
            / (m.factories as f64 * makespan))
            .min(1.0)
    } else {
        0.0
    };

    let mut movement_busy = 0.0f64;
    let mut total_busy = 0.0f64;
    let n = program.lowered_circuit().num_qubits() as usize;
    let mut per_qubit_busy = vec![0.0f64; n];
    for item in program.schedule().items() {
        let dur = item.duration.as_d();
        total_busy += dur;
        if matches!(
            item.op.op,
            SurgeryOp::Move { .. } | SurgeryOp::DeliverMagic { .. }
        ) {
            movement_busy += dur;
        }
        for &q in &item.op.patches {
            if (q as usize) < n {
                per_qubit_busy[q as usize] += dur;
            }
        }
    }
    let movement_share = if total_busy > 0.0 {
        movement_busy / total_busy
    } else {
        0.0
    };
    let critical_qubit_utilization = if makespan > 0.0 {
        per_qubit_busy.iter().cloned().fold(0.0, f64::max) / makespan
    } else {
        0.0
    };

    let bottleneck = if makespan == 0.0 {
        Bottleneck::Balanced
    } else if overhead <= DISTILLATION_SLACK {
        Bottleneck::Distillation
    } else if movement_share >= ROUTING_SHARE {
        Bottleneck::Routing
    } else if critical_qubit_utilization >= SERIAL_UTILIZATION {
        Bottleneck::Serialization
    } else {
        Bottleneck::Balanced
    };

    BottleneckReport {
        overhead,
        factory_utilization,
        movement_share,
        critical_qubit_utilization,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, CompilerOptions};
    use ftqc_circuit::Circuit;

    fn compile(c: &Circuit, o: CompilerOptions) -> CompiledProgram {
        Compiler::new(o).compile(c).expect("compiles")
    }

    #[test]
    fn t_heavy_single_factory_is_distillation_bound() {
        let mut c = Circuit::new(4);
        for i in 0..24 {
            c.t(i % 4);
        }
        let p = compile(&c, CompilerOptions::default().factories(1));
        let r = diagnose(&p);
        assert_eq!(r.bottleneck, Bottleneck::Distillation);
        assert!(r.factory_utilization > 0.8, "got {}", r.factory_utilization);
        assert!(r.overhead < 1.15);
    }

    #[test]
    fn serial_clifford_chain_is_serialization_bound() {
        let mut c = Circuit::new(2);
        for _ in 0..60 {
            c.h(0);
            c.s(0);
        }
        let p = compile(&c, CompilerOptions::default());
        let r = diagnose(&p);
        assert_eq!(r.bottleneck, Bottleneck::Serialization);
        assert!(r.critical_qubit_utilization > 0.9);
        assert_eq!(r.factory_utilization, 0.0);
    }

    #[test]
    fn long_range_clifford_traffic_is_routing_or_serial() {
        // All-to-all CNOTs on a stingy layout: no T gates, so the bound is
        // zero and the time goes to movement + merges.
        let mut c = Circuit::new(9);
        for a in 0..9u32 {
            c.cnot(a, (a + 4) % 9);
        }
        let p = compile(&c, CompilerOptions::default().routing_paths(2));
        let r = diagnose(&p);
        assert!(r.overhead.is_infinite());
        assert!(matches!(
            r.bottleneck,
            Bottleneck::Routing | Bottleneck::Serialization | Bottleneck::Balanced
        ));
        assert!(r.movement_share > 0.0);
    }

    #[test]
    fn empty_schedule_is_balanced() {
        let c = Circuit::new(3);
        let p = compile(&c, CompilerOptions::default());
        let r = diagnose(&p);
        assert_eq!(r.bottleneck, Bottleneck::Balanced);
        assert_eq!(r.overhead, 1.0);
    }

    #[test]
    fn report_displays_all_fields() {
        let mut c = Circuit::new(2);
        c.t(0).t(1);
        let p = compile(&c, CompilerOptions::default());
        let s = diagnose(&p).to_string();
        assert!(s.contains("overhead"));
        assert!(s.contains("factories"));
        assert!(s.contains("movement"));
    }

    #[test]
    fn more_factories_reduce_factory_utilization() {
        let mut c = Circuit::new(4);
        for i in 0..16 {
            c.t(i % 4);
        }
        let u = |f: u32| {
            diagnose(&compile(&c, CompilerOptions::default().factories(f))).factory_utilization
        };
        assert!(u(4) < u(1));
    }
}
