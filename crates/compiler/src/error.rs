//! Compiler error type.

use ftqc_arch::LayoutError;
use std::error::Error;
use std::fmt;

/// Error produced by [`Compiler::compile`](crate::Compiler::compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The requested layout is invalid for this circuit.
    Layout(LayoutError),
    /// The router could not realise a gate (congestion beyond recovery).
    RoutingFailed {
        /// Index of the gate in the (lowered) circuit.
        gate_index: usize,
        /// Description of the failure.
        reason: String,
    },
    /// The circuit is empty of qubits.
    EmptyRegister,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Layout(e) => write!(f, "layout error: {e}"),
            CompileError::RoutingFailed { gate_index, reason } => {
                write!(f, "routing failed at gate {gate_index}: {reason}")
            }
            CompileError::EmptyRegister => write!(f, "circuit has no qubits"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for CompileError {
    fn from(e: LayoutError) -> Self {
        CompileError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CompileError::EmptyRegister;
        assert_eq!(e.to_string(), "circuit has no qubits");
        let e = CompileError::RoutingFailed {
            gate_index: 7,
            reason: "no path".into(),
        };
        assert!(e.to_string().contains("gate 7"));
        let e: CompileError = LayoutError::NoDataQubits.into();
        assert!(e.to_string().contains("layout error"));
    }

    #[test]
    fn source_chains_layout_errors() {
        let e: CompileError = LayoutError::TooFewRoutingPaths { requested: 0 }.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CompileError::EmptyRegister).is_none());
    }
}
