//! Compiler error type.

use crate::session::Stage;
use ftqc_arch::{LayoutError, TargetError};
use std::error::Error;
use std::fmt;

/// Error produced by [`Compiler::compile`](crate::Compiler::compile) and
/// the staged [`CompileSession`](crate::CompileSession).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The requested layout is invalid for this circuit.
    Layout(LayoutError),
    /// The program violates the hardware target's capabilities (qubit
    /// cap, Clifford-only machine, zero factories).
    Target(TargetError),
    /// The router could not realise a gate (congestion beyond recovery).
    RoutingFailed {
        /// Index of the gate in the (lowered) circuit.
        gate_index: usize,
        /// Description of the failure.
        reason: String,
    },
    /// The circuit is empty of qubits.
    EmptyRegister,
    /// A stage resume was attempted with options that disagree with the
    /// cached artifact's upstream option subsets (the artifact would not
    /// correspond to the requested compilation).
    OptionsDiverged {
        /// The stage whose upstream options diverged.
        stage: Stage,
    },
    /// A pipeline stage failed. Attached by [`CompileSession`] so batch
    /// error lines say *where* a job died; [`Compiler::compile`] strips the
    /// wrapper for backwards compatibility.
    ///
    /// [`CompileSession`]: crate::CompileSession
    /// [`Compiler::compile`]: crate::Compiler::compile
    Stage {
        /// The stage that failed.
        stage: Stage,
        /// Wall-clock microseconds the stage ran before failing.
        micros: u64,
        /// The underlying failure.
        source: Box<CompileError>,
    },
}

impl CompileError {
    /// Wraps an error with the stage it occurred in (idempotent: an error
    /// already carrying a stage is returned unchanged).
    pub fn at_stage(self, stage: Stage, micros: u64) -> Self {
        match self {
            e @ CompileError::Stage { .. } => e,
            source => CompileError::Stage {
                stage,
                micros,
                source: Box::new(source),
            },
        }
    }

    /// The failing stage, when one was attached.
    pub fn stage(&self) -> Option<Stage> {
        match self {
            CompileError::Stage { stage, .. } => Some(*stage),
            _ => None,
        }
    }

    /// The underlying error with any stage wrapper removed.
    pub fn into_root(self) -> Self {
        match self {
            CompileError::Stage { source, .. } => source.into_root(),
            e => e,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Layout(e) => write!(f, "layout error: {e}"),
            CompileError::Target(e) => write!(f, "target error: {e}"),
            CompileError::RoutingFailed { gate_index, reason } => {
                write!(f, "routing failed at gate {gate_index}: {reason}")
            }
            CompileError::EmptyRegister => write!(f, "circuit has no qubits"),
            CompileError::OptionsDiverged { stage } => write!(
                f,
                "cannot resume at the {} stage: options diverge from the cached \
                 artifact's upstream option subsets",
                stage.name()
            ),
            CompileError::Stage {
                stage,
                micros,
                source,
            } => write!(
                f,
                "{} stage failed after {micros}\u{b5}s: {source}",
                stage.name()
            ),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Layout(e) => Some(e),
            CompileError::Target(e) => Some(e),
            CompileError::Stage { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<LayoutError> for CompileError {
    fn from(e: LayoutError) -> Self {
        CompileError::Layout(e)
    }
}

impl From<TargetError> for CompileError {
    fn from(e: TargetError) -> Self {
        CompileError::Target(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CompileError::EmptyRegister;
        assert_eq!(e.to_string(), "circuit has no qubits");
        let e = CompileError::RoutingFailed {
            gate_index: 7,
            reason: "no path".into(),
        };
        assert!(e.to_string().contains("gate 7"));
        let e: CompileError = LayoutError::NoDataQubits.into();
        assert!(e.to_string().contains("layout error"));
    }

    #[test]
    fn source_chains_layout_errors() {
        let e: CompileError = LayoutError::TooFewRoutingPaths {
            requested: 0,
            max: 10,
        }
        .into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CompileError::EmptyRegister).is_none());
    }

    #[test]
    fn target_errors_convert_and_chain() {
        let e: CompileError = TargetError::NoFactories.into();
        assert!(e.to_string().contains("target error"), "got {e}");
        assert!(Error::source(&e).is_some());
        let e: CompileError = TargetError::TooManyQubits { qubits: 16, max: 9 }.into();
        assert!(e.to_string().contains("16"), "got {e}");
    }

    #[test]
    fn stage_wrapper_names_the_stage() {
        let inner = CompileError::RoutingFailed {
            gate_index: 7,
            reason: "no path".into(),
        };
        let e = inner.clone().at_stage(Stage::Map, 123);
        assert_eq!(e.stage(), Some(Stage::Map));
        let text = e.to_string();
        assert!(text.starts_with("map stage failed after 123"), "got {text}");
        assert!(text.contains("gate 7"), "got {text}");
        assert!(Error::source(&e).is_some());
        // Idempotent wrapping and clean unwrapping.
        let rewrapped = e.clone().at_stage(Stage::Schedule, 9);
        assert_eq!(rewrapped.stage(), Some(Stage::Map));
        assert_eq!(e.into_root(), inner);
        assert_eq!(inner.clone().into_root(), inner);
    }
}
