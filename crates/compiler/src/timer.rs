//! The timing stage: greedy list scheduling of a routed-op sequence against
//! per-cell resource timelines, per-qubit ready times and factory
//! production.
//!
//! The same replay runs twice per compilation: once with realistic
//! latencies (Fig 7) for the *execution time* and once with 1d per
//! operation for the paper's *unit cost execution time* (Fig 8). Magic
//! production keeps its real latency in both — the unit-cost metric
//! isolates operation-latency effects while the distillation bottleneck
//! stays, which is exactly what makes it comparable to the lower bound.

use crate::routed::RoutedOp;
use ftqc_arch::{Ticks, TimingModel};
use ftqc_sim::{ResourceTimeline, Schedule};
use serde::{Deserialize, Serialize};

/// Which duration table a replay uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostKind {
    /// Realistic per-op latencies (Fig 7).
    Realistic,
    /// 1d per operation (the unit-cost accounting of Fig 8).
    UnitCost,
}

/// The timing replay's complete mutable state, one op at a time.
///
/// [`time_ops`] drives it front to back; the differential recompile path
/// clones snapshots of it mid-replay and later resumes timing from the
/// first op a circuit edit actually changed — item *i* of the schedule
/// depends only on `ops[0..=i]`, so a resumed replay is byte-identical to
/// a full one over the same prefix.
#[derive(Debug, Clone)]
pub struct Timer {
    timing: TimingModel,
    cost: CostKind,
    unbounded_magic: bool,
    timeline: ResourceTimeline,
    qubit_ready: Vec<Ticks>,
    factory_ready: Vec<Ticks>,
}

impl Timer {
    /// A fresh replay state: every cell free, every qubit ready at 0, the
    /// first state of every factory completing at `magic_production`.
    pub fn new(
        num_qubits: u32,
        num_factories: usize,
        timing: &TimingModel,
        cost: CostKind,
        unbounded_magic: bool,
    ) -> Self {
        Timer {
            timing: *timing,
            cost,
            unbounded_magic,
            timeline: ResourceTimeline::new(),
            qubit_ready: vec![Ticks::ZERO; num_qubits as usize],
            factory_ready: vec![timing.magic_production; num_factories.max(1)],
        }
    }

    /// Times the next op, advancing the replay state; returns its assigned
    /// `(start, duration)`.
    pub fn push(&mut self, routed: &RoutedOp) -> (Ticks, Ticks) {
        let cells = routed.op.cells();
        let dep_ready = routed
            .patches
            .iter()
            .map(|&q| self.qubit_ready[q as usize])
            .fold(Ticks::ZERO, Ticks::max);
        let mut start = self
            .timeline
            .earliest_start(cells.iter().copied(), dep_ready);

        // Any op carrying a factory grant (normally the delivery; the
        // consumption directly when the port is adjacent to the consumer)
        // waits for that factory's next state.
        if let Some(f) = routed.factory {
            let f = f.min(self.factory_ready.len() - 1);
            if !self.unbounded_magic {
                let available = self.factory_ready[f].max(start);
                self.factory_ready[f] = available + self.timing.magic_production;
                start = available;
            }
        }

        let duration = match self.cost {
            CostKind::Realistic => routed.op.duration(&self.timing),
            CostKind::UnitCost => routed.op.unit_duration(&self.timing),
        };
        self.timeline
            .reserve(cells.iter().copied(), start, duration);
        for &q in &routed.patches {
            self.qubit_ready[q as usize] = start + duration;
        }
        (start, duration)
    }
}

/// Replays `ops` in order, assigning each operation the earliest start at
/// which (a) every grid cell it touches is free, (b) every program qubit it
/// involves is ready, and (c) — for magic deliveries — its factory has a
/// state available.
///
/// Factory production is modelled per factory index recorded in the ops:
/// the first state of a factory completes at `production`, and each grant
/// restarts production at the grant instant. `unbounded_magic` makes states
/// always available (the DASCOT supply assumption).
///
/// Returns the timed schedule; its makespan is the execution time.
pub fn time_ops(
    ops: &[RoutedOp],
    num_qubits: u32,
    num_factories: usize,
    timing: &TimingModel,
    cost: CostKind,
    unbounded_magic: bool,
) -> Schedule<RoutedOp> {
    let mut timer = Timer::new(num_qubits, num_factories, timing, cost, unbounded_magic);
    let mut schedule = Schedule::new();
    for routed in ops {
        let (start, duration) = timer.push(routed);
        schedule.push(routed.clone(), start, duration);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_arch::{Coord, SurgeryOp};

    fn mv(from: (i32, i32), to: (i32, i32), q: u32) -> RoutedOp {
        RoutedOp::movement(
            SurgeryOp::Move {
                from: Coord::new(from.0, from.1),
                to: Coord::new(to.0, to.1),
            },
            Some(q),
            0,
        )
    }

    #[test]
    fn disjoint_ops_run_in_parallel() {
        let ops = vec![mv((0, 0), (0, 1), 0), mv((5, 5), (5, 6), 1)];
        let s = time_ops(
            &ops,
            2,
            1,
            &TimingModel::paper(),
            CostKind::Realistic,
            false,
        );
        assert_eq!(s.items()[0].start, Ticks::ZERO);
        assert_eq!(s.items()[1].start, Ticks::ZERO);
        assert_eq!(s.makespan(), Ticks::from_d(1.0));
    }

    #[test]
    fn shared_cell_serialises() {
        let ops = vec![mv((0, 0), (0, 1), 0), mv((0, 1), (0, 2), 1)];
        let s = time_ops(
            &ops,
            2,
            1,
            &TimingModel::paper(),
            CostKind::Realistic,
            false,
        );
        assert_eq!(s.items()[1].start, Ticks::from_d(1.0));
    }

    #[test]
    fn qubit_dependency_serialises() {
        // Same qubit moving twice through disjoint cells still serialises.
        let ops = vec![mv((0, 0), (0, 1), 0), mv((5, 5), (5, 6), 0)];
        let s = time_ops(
            &ops,
            1,
            1,
            &TimingModel::paper(),
            CostKind::Realistic,
            false,
        );
        assert_eq!(s.items()[1].start, Ticks::from_d(1.0));
    }

    #[test]
    fn magic_delivery_waits_for_production() {
        let deliver = RoutedOp {
            op: SurgeryOp::DeliverMagic {
                path: vec![Coord::new(0, 0), Coord::new(0, 1)],
            },
            patches: vec![],
            factory: Some(0),
            gate: Some(0),
        };
        let s = time_ops(
            std::slice::from_ref(&deliver),
            1,
            1,
            &TimingModel::paper(),
            CostKind::Realistic,
            false,
        );
        assert_eq!(s.items()[0].start, Ticks::from_d(11.0));

        // Unbounded supply starts immediately.
        let s = time_ops(
            std::slice::from_ref(&deliver),
            1,
            1,
            &TimingModel::paper(),
            CostKind::Realistic,
            true,
        );
        assert_eq!(s.items()[0].start, Ticks::ZERO);
    }

    #[test]
    fn per_factory_production_pipelines() {
        let d = |f: usize, col: i32| RoutedOp {
            op: SurgeryOp::DeliverMagic {
                path: vec![Coord::new(0, col), Coord::new(1, col)],
            },
            patches: vec![],
            factory: Some(f),
            gate: None,
        };
        // Two factories, four deliveries on disjoint paths.
        let ops = vec![d(0, 0), d(1, 2), d(0, 4), d(1, 6)];
        let s = time_ops(
            &ops,
            1,
            2,
            &TimingModel::paper(),
            CostKind::Realistic,
            false,
        );
        let starts: Vec<f64> = s.items().iter().map(|x| x.start.as_d()).collect();
        assert_eq!(starts, vec![11.0, 11.0, 22.0, 22.0]);
    }

    #[test]
    fn unit_cost_flattens_latencies() {
        let h = RoutedOp::gate_op(
            SurgeryOp::Single {
                kind: ftqc_arch::SingleQubitKind::H,
                cell: Coord::new(0, 0),
                ancilla: Coord::new(0, 1),
            },
            vec![0],
            0,
        );
        let real = time_ops(
            std::slice::from_ref(&h),
            1,
            1,
            &TimingModel::paper(),
            CostKind::Realistic,
            false,
        );
        let unit = time_ops(&[h], 1, 1, &TimingModel::paper(), CostKind::UnitCost, false);
        assert_eq!(real.makespan(), Ticks::from_d(3.0));
        assert_eq!(unit.makespan(), Ticks::from_d(1.0));
    }
}
