//! The compiler façade: lowering → mapping → routing → scheduling.
//!
//! [`Compiler::compile`] is a thin compatibility wrapper over the staged
//! [`CompileSession`] pipeline; use the
//! session directly for stage-level caching, partial runs, and per-stage
//! trace hooks.

use crate::error::CompileError;
use crate::mapping::InitialMapping;
use crate::metrics::Metrics;
use crate::options::CompilerOptions;
use crate::routed::RoutedOp;
use crate::session::CompileSession;
use ftqc_arch::Layout;
use ftqc_circuit::{Circuit, Gate};
use ftqc_sim::Schedule;

/// The compiler. Construct with options, then call
/// [`Compiler::compile`] for each circuit.
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
/// use ftqc_compiler::{Compiler, CompilerOptions};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1).t(1);
/// let compiled = Compiler::new(CompilerOptions::default()).compile(&c)?;
/// println!("{}", compiled.metrics());
/// # Ok::<(), ftqc_compiler::CompileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    options: CompilerOptions,
}

impl Compiler {
    /// Creates a compiler with the given options.
    pub fn new(options: CompilerOptions) -> Self {
        Self { options }
    }

    /// The configured options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Compiles `circuit` to a timed lattice-surgery schedule.
    ///
    /// Equivalent to running the staged
    /// [`CompileSession`] end to end
    /// without a stage cache; stage context is stripped from errors so
    /// callers see the same [`CompileError`] values as before the staged
    /// redesign.
    ///
    /// # Errors
    ///
    /// * [`CompileError::EmptyRegister`] for a zero-qubit circuit.
    /// * [`CompileError::Layout`] when `routing_paths` is out of range for
    ///   the circuit's register.
    /// * [`CompileError::RoutingFailed`] when a gate cannot be realised.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        CompileSession::new(self.options.clone())
            .compile(circuit)
            .map_err(CompileError::into_root)
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new(CompilerOptions::default())
    }
}

/// The front-end preparation [`Compiler::compile`] applies before
/// lowering: the peephole optimisation pre-pass when
/// [`CompilerOptions::optimize`] is set, otherwise the circuit unchanged.
///
/// Public so the semantic verifier can reproduce the exact circuit whose
/// gate indices a schedule refers to.
pub fn prepare(circuit: &Circuit, options: &CompilerOptions) -> Circuit {
    if options.optimize {
        ftqc_circuit::optimize(circuit).0
    } else {
        circuit.clone()
    }
}

/// Lowers the input gate set to the surgery-supported set: `CZ → H·CX·H`,
/// `SWAP → CX·CX·CX`. Everything else passes through.
///
/// [`Compiler::compile`] applies this before routing; it is public so the
/// semantic verifier (and tests) can reproduce the gate indices that
/// [`RoutedOp::gate`] refers to.
pub fn lower(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name());
    for g in circuit.iter() {
        match *g {
            Gate::Cz(a, b) => {
                out.h(b).cnot(a, b).h(b);
            }
            Gate::Swap(a, b) => {
                out.cnot(a, b).cnot(b, a).cnot(a, b);
            }
            g => {
                out.push(g);
            }
        }
    }
    out
}

/// A compiled program: the layout it runs on, the timed schedule, and the
/// evaluation metrics.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    layout: Layout,
    schedule: Schedule<RoutedOp>,
    metrics: Metrics,
    lowered: Circuit,
    initial: InitialMapping,
    options: CompilerOptions,
}

impl CompiledProgram {
    /// Assembles a program from the schedule stage's pieces (the session's
    /// materialisation step).
    pub(crate) fn assemble(
        layout: Layout,
        schedule: Schedule<RoutedOp>,
        metrics: Metrics,
        lowered: Circuit,
        initial: InitialMapping,
        options: CompilerOptions,
    ) -> Self {
        CompiledProgram {
            layout,
            schedule,
            metrics,
            lowered,
            initial,
            options,
        }
    }

    /// The layout the program was compiled for.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The timed schedule (realistic latencies).
    pub fn schedule(&self) -> &Schedule<RoutedOp> {
        &self.schedule
    }

    /// The evaluation metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The lowered circuit the schedule realises; [`RoutedOp::gate`] indices
    /// refer to gates of this circuit (in DAG node order = gate order).
    pub fn lowered_circuit(&self) -> &Circuit {
        &self.lowered
    }

    /// The initial placement of each program qubit on the grid.
    pub fn initial_mapping(&self) -> &InitialMapping {
        &self.initial
    }

    /// The options the program was compiled with.
    pub fn compile_options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Replaces the schedule, keeping layout, metrics and provenance.
    ///
    /// For downstream custom passes (and the verifier-mutation tests): the
    /// returned program should be re-validated with
    /// [`crate::verify()`](crate::verify::verify) and [`crate::check_semantics`] — nothing
    /// re-derives the metrics from the new schedule.
    pub fn with_schedule(mut self, schedule: Schedule<RoutedOp>) -> Self {
        self.schedule = schedule;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_arch::Ticks;

    fn compile(c: &Circuit, options: CompilerOptions) -> CompiledProgram {
        Compiler::new(options).compile(c).expect("compiles")
    }

    #[test]
    fn empty_register_rejected() {
        let c = Circuit::new(0);
        assert_eq!(
            Compiler::default().compile(&c).unwrap_err(),
            CompileError::EmptyRegister
        );
    }

    #[test]
    fn empty_circuit_compiles_to_empty_schedule() {
        let c = Circuit::new(4);
        let p = compile(&c, CompilerOptions::default());
        assert_eq!(p.metrics().execution_time, Ticks::ZERO);
        assert_eq!(p.metrics().n_surgery_ops, 0);
    }

    #[test]
    fn single_t_waits_for_distillation() {
        let mut c = Circuit::new(4);
        c.t(0);
        let p = compile(&c, CompilerOptions::default());
        let m = p.metrics();
        // First state at 11d, delivery 1d, consumption 2.5d.
        assert_eq!(m.lower_bound, Ticks::from_d(11.0));
        assert!(m.execution_time >= Ticks::from_d(14.0));
        assert_eq!(m.n_magic_states, 1);
    }

    #[test]
    fn execution_time_at_least_lower_bound() {
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.t(q);
        }
        for f in 1..=3u32 {
            let p = compile(&c, CompilerOptions::default().routing_paths(4).factories(f));
            let m = p.metrics();
            assert!(
                m.execution_time >= m.lower_bound,
                "exec {} < bound {} at f={f}",
                m.execution_time,
                m.lower_bound
            );
        }
    }

    #[test]
    fn more_factories_never_hurt_time() {
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.t(q);
            c.t(q);
        }
        let t1 = compile(&c, CompilerOptions::default().factories(1))
            .metrics()
            .execution_time;
        let t3 = compile(&c, CompilerOptions::default().factories(3))
            .metrics()
            .execution_time;
        assert!(t3 <= t1, "3 factories {t3} slower than 1 factory {t1}");
    }

    #[test]
    fn unbounded_magic_removes_the_bottleneck() {
        let mut c = Circuit::new(4);
        c.t(0).t(1).t(2).t(3);
        let bounded = compile(&c, CompilerOptions::default());
        let unbounded = compile(&c, CompilerOptions::default().unbounded_magic(true));
        assert!(unbounded.metrics().execution_time < bounded.metrics().execution_time);
        assert_eq!(unbounded.metrics().factory_patches, 0);
    }

    #[test]
    fn cz_and_swap_are_lowered() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).swap(1, 2);
        let p = compile(&c, CompilerOptions::default());
        // 2 H + 1 CNOT + 3 CNOT = at least 6 logical ops in the schedule.
        assert!(p.metrics().n_surgery_ops >= 6);
        // CPI denominator stays the *input* gate count.
        assert_eq!(p.metrics().n_gates, 2);
    }

    #[test]
    fn redundant_elimination_only_removes_moves() {
        let mut c = Circuit::new(16);
        for q in 0..16u32 {
            c.h(q);
        }
        for (a, b) in [(0u32, 1u32), (2, 3), (4, 5), (0, 1), (2, 3)] {
            c.cnot(a, b);
        }
        let with = compile(&c, CompilerOptions::default());
        let without = compile(
            &c,
            CompilerOptions::default().eliminate_redundant_moves(false),
        );
        assert!(with.metrics().n_surgery_ops <= without.metrics().n_surgery_ops);
        assert!(with.metrics().execution_time <= without.metrics().execution_time);
        // Same logical work either way.
        assert_eq!(
            with.metrics().n_magic_states,
            without.metrics().n_magic_states
        );
    }

    #[test]
    fn unit_cost_time_le_execution_time() {
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
            if q % 2 == 0 {
                c.t(q);
            }
        }
        c.cnot(0, 1).cnot(4, 5).cnot(7, 8);
        let p = compile(&c, CompilerOptions::default());
        assert!(p.metrics().unit_cost_time <= p.metrics().execution_time);
    }

    #[test]
    fn deterministic_compilation() {
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
        }
        c.cnot(0, 4).t(4).cnot(4, 8).t(8);
        let a = compile(&c, CompilerOptions::default());
        let b = compile(&c, CompilerOptions::default());
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.schedule().len(), b.schedule().len());
    }

    #[test]
    fn invalid_routing_paths_surface_as_layout_error() {
        let mut c = Circuit::new(4);
        c.h(0);
        let err = Compiler::new(CompilerOptions::default().routing_paths(99))
            .compile(&c)
            .unwrap_err();
        assert!(matches!(err, CompileError::Layout(_)));
    }

    #[test]
    fn schedule_ops_are_valid_and_timed() {
        let mut c = Circuit::new(9);
        c.h(0).cnot(0, 1).t(1).cnot(1, 2).measure(2);
        let p = compile(&c, CompilerOptions::default());
        for item in p.schedule() {
            item.op.op.validate().expect("valid surgery op");
            assert!(item.end() <= p.metrics().execution_time);
        }
    }
}
