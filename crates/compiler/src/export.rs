//! Schedule export and utilisation statistics.
//!
//! `to_csv` dumps a compiled schedule as one row per operation — the format
//! consumed by trace viewers and the regression fixtures in `tests/`.
//! [`UtilizationStats`] summarises how busy the machine is: overall cell
//! utilisation, movement share, and distillation duty cycle — diagnostics
//! behind the paper's observation that small-`r` layouts serialise on the
//! scarce bus cells.

use crate::pipeline::CompiledProgram;
use crate::routed::RoutedOp;
use ftqc_arch::{SurgeryOp, Ticks};
use ftqc_sim::Schedule;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialises the schedule as CSV: `start_d,duration_d,kind,cells,qubits,factory,gate`.
pub fn to_csv(program: &CompiledProgram) -> String {
    let mut out = String::from("start_d,duration_d,kind,cells,qubits,factory,gate\n");
    for item in program.schedule() {
        let cells = item
            .op
            .op
            .cells()
            .iter()
            .map(|c| format!("{}:{}", c.row, c.col))
            .collect::<Vec<_>>()
            .join(";");
        let qubits = item
            .op
            .patches
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            item.start.as_d(),
            item.duration.as_d(),
            kind_name(&item.op.op),
            cells,
            qubits,
            item.op.factory.map_or(String::new(), |f| f.to_string()),
            item.op.gate.map_or(String::new(), |g| g.to_string()),
        );
    }
    out
}

fn kind_name(op: &SurgeryOp) -> &'static str {
    match op {
        SurgeryOp::Move { .. } => "move",
        SurgeryOp::DeliverMagic { .. } => "deliver",
        SurgeryOp::MergeZz { .. } => "mzz",
        SurgeryOp::MergeXx { .. } => "mxx",
        SurgeryOp::Cnot { .. } => "cnot",
        SurgeryOp::Single { .. } => "single",
        SurgeryOp::ConsumeMagic { .. } => "consume",
        SurgeryOp::MeasureZ { .. } => "measure",
        SurgeryOp::PauliFrame { .. } => "frame",
    }
}

/// Machine utilisation summary for a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationStats {
    /// Mean fraction of grid cells busy over the makespan, in `[0, 1]`.
    pub cell_utilization: f64,
    /// Fraction of total busy cell-time spent on movement (moves +
    /// deliveries).
    pub movement_share: f64,
    /// Busy cell-time in qubit·d (the spacetime volume actually *used*).
    pub busy_volume: f64,
    /// Number of operations per kind bucket: (movement, logical, frame).
    pub op_mix: (usize, usize, usize),
}

/// Computes utilisation statistics for a compiled program.
pub fn utilization(program: &CompiledProgram) -> UtilizationStats {
    stats_of(
        program.schedule(),
        program.layout().total_patches(),
        program.metrics().execution_time,
    )
}

fn stats_of(schedule: &Schedule<RoutedOp>, grid_patches: u32, makespan: Ticks) -> UtilizationStats {
    let mut busy_ticks = 0u64;
    let mut movement_ticks = 0u64;
    let mut movement_ops = 0usize;
    let mut frame_ops = 0usize;
    let mut logical_ops = 0usize;
    for item in schedule {
        let cell_ticks = item.duration.raw() * item.op.op.cells().len() as u64;
        busy_ticks += cell_ticks;
        if item.op.op.is_movement() {
            movement_ticks += cell_ticks;
            movement_ops += 1;
        } else if matches!(item.op.op, SurgeryOp::PauliFrame { .. }) {
            frame_ops += 1;
        } else {
            logical_ops += 1;
        }
    }
    let capacity = makespan.raw().max(1) * grid_patches.max(1) as u64;
    UtilizationStats {
        cell_utilization: busy_ticks as f64 / capacity as f64,
        movement_share: if busy_ticks == 0 {
            0.0
        } else {
            movement_ticks as f64 / busy_ticks as f64
        },
        busy_volume: busy_ticks as f64 / ftqc_arch::TICKS_PER_D as f64,
        op_mix: (movement_ops, logical_ops, frame_ops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, CompilerOptions};
    use ftqc_circuit::Circuit;

    fn program() -> CompiledProgram {
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 1).t(1).x(2).measure(1);
        Compiler::new(CompilerOptions::default().routing_paths(4))
            .compile(&c)
            .expect("compiles")
    }

    #[test]
    fn csv_has_one_row_per_op_plus_header() {
        let p = program();
        let csv = to_csv(&p);
        assert_eq!(csv.lines().count(), p.schedule().len() + 1);
        assert!(csv.starts_with("start_d,duration_d,kind"));
        assert!(csv.contains("cnot"));
        assert!(csv.contains("consume"));
        assert!(csv.contains("frame"));
    }

    #[test]
    fn csv_cells_are_parseable() {
        let csv = to_csv(&program());
        for line in csv.lines().skip(1) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 7, "bad row: {line}");
            let start: f64 = fields[0].parse().expect("numeric start");
            assert!(start >= 0.0);
        }
    }

    #[test]
    fn utilization_in_unit_range() {
        let p = program();
        let u = utilization(&p);
        assert!(u.cell_utilization > 0.0 && u.cell_utilization <= 1.0);
        assert!(u.movement_share >= 0.0 && u.movement_share <= 1.0);
        assert!(u.busy_volume > 0.0);
        let (mv, logical, frame) = u.op_mix;
        assert_eq!(mv + logical + frame, p.schedule().len());
        assert_eq!(frame, 1); // the single X gate
    }

    #[test]
    fn movement_dominates_cnot_heavy_programs() {
        // Long-range CNOTs require movement regardless of layout; the
        // movement share must be substantial in both a packed and a roomy
        // layout (the packed one via displacement chains, the roomy one via
        // longer routes).
        let mut c = Circuit::new(9);
        for (a, b) in [(0u32, 4u32), (4, 8), (2, 6), (0, 8)] {
            c.cnot(a, b);
        }
        for r in [2u32, 8] {
            let p = Compiler::new(CompilerOptions::default().routing_paths(r))
                .compile(&c)
                .expect("compiles");
            let u = utilization(&p);
            assert!(
                u.movement_share > 0.2,
                "r={r}: movement share {:.2} unexpectedly low",
                u.movement_share
            );
        }
    }
}
