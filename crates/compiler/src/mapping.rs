//! Initial static mapping of program qubits to layout data cells (paper §V:
//! "We assign an initial static mapping to our grid depending on the 1D/2D
//! programs").
//!
//! Beyond the paper's row-major and snake orders, the
//! [`MappingStrategy::InteractionAware`] extension places qubits by the
//! circuit's two-qubit interaction graph: heavily-interacting pairs are
//! pulled into adjacent cells, trading mapping-time analysis for fewer
//! routed moves at run time (ablated in `--bin ablation`).

use ftqc_arch::{Coord, Layout};
use ftqc_circuit::Circuit;
use serde::{Deserialize, Serialize};

/// How program qubit indices map onto the data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MappingStrategy {
    /// Row-major: qubit `i` at block position `(i / L, i % L)`.
    RowMajor,
    /// Snake (boustrophedon): odd block rows reversed, so consecutive
    /// indices stay nearest-neighbour across row boundaries — "a 1D Ising
    /// model benefits from a snake-like mapping that preserves NN
    /// interactions".
    #[default]
    Snake,
    /// Greedy placement on the circuit's interaction graph: qubits are
    /// placed in order of two-qubit-gate weight, each at the free cell
    /// minimising distance-weighted interaction cost to already-placed
    /// partners. Falls back to [`MappingStrategy::Snake`] when the circuit
    /// is not available.
    InteractionAware,
}

/// The assignment of program qubits to home cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitialMapping {
    cells: Vec<Coord>,
}

impl InitialMapping {
    /// Builds the mapping for `n` qubits on `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the layout's data capacity.
    pub fn new(layout: &Layout, n: u32, strategy: MappingStrategy) -> Self {
        let data = layout.data_cells();
        assert!(
            n as usize <= data.len(),
            "{n} qubits do not fit {} data cells",
            data.len()
        );
        let side = layout.data_side() as usize;
        let cells = (0..n as usize)
            .map(|i| match strategy {
                MappingStrategy::RowMajor => data[i],
                MappingStrategy::Snake | MappingStrategy::InteractionAware => {
                    let (row, col) = (i / side, i % side);
                    let col = if row % 2 == 1 { side - 1 - col } else { col };
                    let j = row * side + col;
                    // The last row may be partial; fall back to the original
                    // slot when the snake-reflected slot does not exist.
                    if j < data.len() {
                        data[j]
                    } else {
                        data[i]
                    }
                }
            })
            .collect();
        Self { cells }
    }

    /// Builds the mapping for `circuit` on `layout`, using the circuit's
    /// interaction graph when `strategy` is
    /// [`MappingStrategy::InteractionAware`].
    ///
    /// # Panics
    ///
    /// Panics if the register exceeds the layout's data capacity.
    pub fn for_circuit(layout: &Layout, circuit: &Circuit, strategy: MappingStrategy) -> Self {
        match strategy {
            MappingStrategy::InteractionAware => Self::interaction_aware(layout, circuit),
            other => Self::new(layout, circuit.num_qubits(), other),
        }
    }

    /// Greedy interaction-graph placement.
    fn interaction_aware(layout: &Layout, circuit: &Circuit) -> Self {
        let n = circuit.num_qubits() as usize;
        let data = layout.data_cells();
        assert!(
            n <= data.len(),
            "{n} qubits do not fit {} data cells",
            data.len()
        );
        // Interaction weights: number of two-qubit gates per pair.
        let mut weight = vec![vec![0u32; n]; n];
        let mut total = vec![0u32; n];
        for g in circuit.iter() {
            let qs: Vec<u32> = g.qubits().collect();
            if qs.len() == 2 {
                let (a, b) = (qs[0] as usize, qs[1] as usize);
                weight[a][b] += 1;
                weight[b][a] += 1;
                total[a] += 1;
                total[b] += 1;
            }
        }

        let mut placed: Vec<Option<Coord>> = vec![None; n];
        let mut free: Vec<Coord> = data.to_vec();
        // Seed: the most-connected qubit at the cell closest to the block
        // centroid.
        let centroid = {
            let (mut r, mut c) = (0i64, 0i64);
            for cell in data {
                r += i64::from(cell.row);
                c += i64::from(cell.col);
            }
            let k = data.len().max(1) as i64;
            Coord::new((r / k) as i32, (c / k) as i32)
        };
        let seed = (0..n)
            .max_by_key(|&q| (total[q], std::cmp::Reverse(q)))
            .unwrap_or(0);
        let seed_cell_idx = (0..free.len())
            .min_by_key(|&i| free[i].manhattan(centroid))
            .expect("layout has data cells");
        placed[seed] = Some(free.swap_remove(seed_cell_idx));

        for _ in 1..n {
            // Next qubit: heaviest total edge weight to the placed set
            // (ties: heaviest overall, then lowest index for determinism).
            let next = (0..n)
                .filter(|&q| placed[q].is_none())
                .max_by_key(|&q| {
                    let attached: u32 = (0..n)
                        .filter(|&p| placed[p].is_some())
                        .map(|p| weight[q][p])
                        .sum();
                    (attached, total[q], std::cmp::Reverse(q))
                })
                .expect("some qubit unplaced");
            // Best cell: minimise distance-weighted cost to placed partners
            // (unattached qubits take the cell nearest the centroid).
            let best = (0..free.len())
                .min_by_key(|&i| {
                    let cost: u64 = (0..n)
                        .filter_map(|p| {
                            placed[p].map(|cell| {
                                u64::from(weight[next][p]) * u64::from(free[i].manhattan(cell))
                            })
                        })
                        .sum();
                    (
                        cost,
                        u64::from(free[i].manhattan(centroid)),
                        free[i].row,
                        free[i].col,
                    )
                })
                .expect("free cell remains");
            placed[next] = Some(free.swap_remove(best));
        }

        Self {
            cells: placed.into_iter().map(|c| c.expect("all placed")).collect(),
        }
    }

    /// Home cell of program qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn cell_of(&self, q: u32) -> Coord {
        self.cells[q as usize]
    }

    /// All home cells, indexed by program qubit.
    pub fn cells(&self) -> &[Coord] {
        &self.cells
    }

    /// Number of mapped qubits.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_arch::Layout;

    #[test]
    fn row_major_follows_data_order() {
        let layout = Layout::with_routing_paths(16, 4);
        let m = InitialMapping::new(&layout, 16, MappingStrategy::RowMajor);
        assert_eq!(m.cells(), layout.data_cells());
    }

    #[test]
    fn snake_reverses_odd_rows() {
        let layout = Layout::with_routing_paths(16, 4);
        let m = InitialMapping::new(&layout, 16, MappingStrategy::Snake);
        let data = layout.data_cells();
        // Row 0 unchanged.
        assert_eq!(m.cell_of(0), data[0]);
        assert_eq!(m.cell_of(3), data[3]);
        // Row 1 reversed: qubit 4 sits where row-major qubit 7 would.
        assert_eq!(m.cell_of(4), data[7]);
        assert_eq!(m.cell_of(7), data[4]);
        // Consecutive qubits 3 and 4 are now vertically adjacent.
        assert!(m.cell_of(3).is_vertical_neighbour(m.cell_of(4)));
    }

    #[test]
    fn snake_is_a_permutation() {
        let layout = Layout::with_routing_paths(36, 6);
        let m = InitialMapping::new(&layout, 36, MappingStrategy::Snake);
        let mut cells = m.cells().to_vec();
        cells.sort();
        cells.dedup();
        assert_eq!(cells.len(), 36, "snake mapping must not collide");
    }

    #[test]
    fn partial_last_row_handled() {
        let layout = Layout::with_routing_paths(10, 4);
        let m = InitialMapping::new(&layout, 10, MappingStrategy::Snake);
        let mut cells = m.cells().to_vec();
        cells.sort();
        cells.dedup();
        assert_eq!(cells.len(), 10);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn overful_mapping_rejected() {
        let layout = Layout::with_routing_paths(4, 4);
        InitialMapping::new(&layout, 9, MappingStrategy::RowMajor);
    }

    #[test]
    fn interaction_aware_is_a_permutation() {
        let mut c = Circuit::new(16);
        for i in 0..16u32 {
            c.cnot(i, (i + 5) % 16);
        }
        let layout = Layout::with_routing_paths(16, 4);
        let m = InitialMapping::for_circuit(&layout, &c, MappingStrategy::InteractionAware);
        let mut cells = m.cells().to_vec();
        cells.sort();
        cells.dedup();
        assert_eq!(cells.len(), 16, "placement must not collide");
    }

    #[test]
    fn interaction_aware_pulls_partners_together() {
        // Pairs (i, i+8) interact heavily; row-major would separate them by
        // two block rows. Interaction-aware placement must do better than
        // row-major on total pair distance.
        let mut c = Circuit::new(16);
        for i in 0..8u32 {
            for _ in 0..4 {
                c.cnot(i, i + 8);
            }
        }
        let layout = Layout::with_routing_paths(16, 4);
        let pair_distance = |m: &InitialMapping| -> u32 {
            (0..8u32)
                .map(|i| m.cell_of(i).manhattan(m.cell_of(i + 8)))
                .sum()
        };
        let aware = InitialMapping::for_circuit(&layout, &c, MappingStrategy::InteractionAware);
        let row = InitialMapping::for_circuit(&layout, &c, MappingStrategy::RowMajor);
        assert!(
            pair_distance(&aware) < pair_distance(&row),
            "aware {} !< row-major {}",
            pair_distance(&aware),
            pair_distance(&row)
        );
    }

    #[test]
    fn interaction_aware_without_two_qubit_gates_is_deterministic() {
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
        }
        let layout = Layout::with_routing_paths(9, 4);
        let a = InitialMapping::for_circuit(&layout, &c, MappingStrategy::InteractionAware);
        let b = InitialMapping::for_circuit(&layout, &c, MappingStrategy::InteractionAware);
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn for_circuit_delegates_for_static_strategies() {
        let c = Circuit::new(16);
        let layout = Layout::with_routing_paths(16, 4);
        let a = InitialMapping::for_circuit(&layout, &c, MappingStrategy::Snake);
        let b = InitialMapping::new(&layout, 16, MappingStrategy::Snake);
        assert_eq!(a, b);
    }
}
