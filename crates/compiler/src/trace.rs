//! Textual execution traces: a one-character-per-timestep activity strip
//! and a per-kind busy-time breakdown.
//!
//! The strip makes the paper's execution structure visible at a glance —
//! long distillation-bound stretches punctuated by delivery/consumption
//! bursts, with movement filling the windows (the latency-hiding behaviour
//! of §V: "we use this window to pack as many qubit movement operations as
//! possible").

use crate::pipeline::CompiledProgram;
use ftqc_arch::{SurgeryOp, TICKS_PER_D};
use serde::{Deserialize, Serialize};

/// Activity classes shown in the strip, in display-priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activity {
    /// A magic state is being consumed (`C`).
    Consume,
    /// A magic state is in transit (`D`).
    Deliver,
    /// A logical gate (CNOT/single/merge/measure) is running (`G`).
    Gate,
    /// Only movement is happening (`m`).
    Move,
    /// Nothing is running (`.`).
    Idle,
}

impl Activity {
    /// The strip glyph.
    pub fn glyph(self) -> char {
        match self {
            Activity::Consume => 'C',
            Activity::Deliver => 'D',
            Activity::Gate => 'G',
            Activity::Move => 'm',
            Activity::Idle => '.',
        }
    }
}

/// Renders the activity strip with one glyph per `bucket_d` timesteps.
/// Each bucket shows its highest-priority activity
/// (consume > deliver > gate > move > idle).
///
/// # Panics
///
/// Panics if `bucket_d` is not a positive multiple of 0.5.
pub fn activity_strip(program: &CompiledProgram, bucket_d: f64) -> String {
    let bucket_ticks = (bucket_d * TICKS_PER_D as f64).round() as u64;
    assert!(
        bucket_ticks > 0 && (bucket_d * TICKS_PER_D as f64 - bucket_ticks as f64).abs() < 1e-9,
        "bucket must be a positive multiple of 0.5d"
    );
    let makespan = program.metrics().execution_time.raw();
    if makespan == 0 {
        return String::new();
    }
    let n_buckets = makespan.div_ceil(bucket_ticks) as usize;
    let mut buckets = vec![Activity::Idle; n_buckets];
    for item in program.schedule() {
        if item.duration.raw() == 0 {
            continue;
        }
        let class = match item.op.op {
            SurgeryOp::ConsumeMagic { .. } => Activity::Consume,
            SurgeryOp::DeliverMagic { .. } => Activity::Deliver,
            SurgeryOp::Move { .. } => Activity::Move,
            _ => Activity::Gate,
        };
        let first = (item.start.raw() / bucket_ticks) as usize;
        let last = ((item.end().raw() - 1) / bucket_ticks) as usize;
        for b in buckets.iter_mut().take(last + 1).skip(first) {
            if priority(class) < priority(*b) {
                *b = class;
            }
        }
    }
    buckets.into_iter().map(Activity::glyph).collect()
}

fn priority(a: Activity) -> u8 {
    match a {
        Activity::Consume => 0,
        Activity::Deliver => 1,
        Activity::Gate => 2,
        Activity::Move => 3,
        Activity::Idle => 4,
    }
}

/// Busy cell-time per operation kind, in qubit·d.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KindBreakdown {
    /// Moves.
    pub moves: f64,
    /// Magic deliveries.
    pub deliveries: f64,
    /// Magic consumptions.
    pub consumes: f64,
    /// CNOTs.
    pub cnots: f64,
    /// Single-patch Cliffords.
    pub singles: f64,
    /// Merges and measurements.
    pub other: f64,
}

impl KindBreakdown {
    /// Total busy volume.
    pub fn total(&self) -> f64 {
        self.moves + self.deliveries + self.consumes + self.cnots + self.singles + self.other
    }
}

/// Computes the busy-time breakdown of a compiled program.
pub fn kind_breakdown(program: &CompiledProgram) -> KindBreakdown {
    let mut b = KindBreakdown::default();
    for item in program.schedule() {
        let vol = item.duration.raw() as f64 * item.op.op.cells().len() as f64 / TICKS_PER_D as f64;
        match item.op.op {
            SurgeryOp::Move { .. } => b.moves += vol,
            SurgeryOp::DeliverMagic { .. } => b.deliveries += vol,
            SurgeryOp::ConsumeMagic { .. } => b.consumes += vol,
            SurgeryOp::Cnot { .. } => b.cnots += vol,
            SurgeryOp::Single { .. } => b.singles += vol,
            _ => b.other += vol,
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, CompilerOptions};
    use ftqc_circuit::Circuit;

    fn program() -> CompiledProgram {
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 1).t(1).measure(1);
        Compiler::new(CompilerOptions::default().routing_paths(4))
            .compile(&c)
            .expect("compiles")
    }

    #[test]
    fn strip_length_matches_makespan() {
        let p = program();
        let strip = activity_strip(&p, 1.0);
        let expected = (p.metrics().execution_time.raw() as f64 / 2.0).ceil() as usize;
        assert_eq!(strip.len(), expected);
    }

    #[test]
    fn strip_contains_distillation_phases() {
        let p = program();
        let strip = activity_strip(&p, 1.0);
        assert!(strip.contains('C'), "consumption visible: {strip}");
        assert!(strip.contains('G'), "gates visible: {strip}");
        // The 11d production window before the first delivery shows
        // idle/move/gate time, never consumption.
        assert!(!strip[..5].contains('C'));
    }

    #[test]
    fn coarse_buckets_shrink_strip() {
        let p = program();
        let fine = activity_strip(&p, 0.5);
        let coarse = activity_strip(&p, 4.0);
        assert!(coarse.len() < fine.len());
    }

    #[test]
    #[should_panic(expected = "multiple of 0.5d")]
    fn bad_bucket_rejected() {
        activity_strip(&program(), 0.3);
    }

    #[test]
    fn empty_program_empty_strip() {
        let p = Compiler::new(CompilerOptions::default())
            .compile(&Circuit::new(4))
            .expect("compiles");
        assert_eq!(activity_strip(&p, 1.0), "");
    }

    #[test]
    fn breakdown_sums_to_busy_volume() {
        let p = program();
        let b = kind_breakdown(&p);
        let u = crate::export::utilization(&p);
        assert!((b.total() - u.busy_volume).abs() < 1e-9);
        assert!(b.consumes > 0.0);
        assert!(b.cnots > 0.0);
    }
}
