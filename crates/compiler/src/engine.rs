//! The greedy routing engine (paper §V).
//!
//! The engine consumes the circuit DAG front layer in earliest-ready order
//! and realises each gate on the grid:
//!
//! * data-qubit relocations are planned with penalty-weighted Dijkstra and
//!   executed one cell per move (1d each, Fig 7(d)), displacing blocking
//!   qubits with space-search push chains when the block is packed;
//! * CNOT configurations come from the gate-dependent move heuristic
//!   (cheapest of the eight diagonal placements when look-ahead is on);
//! * magic states are granted by the earliest-available factory and routed
//!   along a bus corridor to a cell vertically adjacent to the consumer;
//! * single-patch Cliffords borrow the nearest free neighbouring ancilla.
//!
//! The engine emits [`RoutedOp`]s in issue order together with provisional
//! times; the authoritative timing happens in [`crate::timer`] after the
//! redundant-move pass.

use crate::error::CompileError;
use crate::mapping::InitialMapping;
use crate::options::CompilerOptions;
use crate::routed::RoutedOp;
use ftqc_arch::{
    cnot_ancilla, CellKind, Coord, FactoryBank, Grid, Layout, SingleQubitKind, SurgeryOp, Ticks,
};
use ftqc_circuit::{Circuit, Gate};
use ftqc_route::dijkstra::{CostModel, Occupancy};
use ftqc_route::incremental::{blocked_set_digest, RouteCounters, Router, RouterMode, RouterParts};
use ftqc_route::moves::{best_cnot_config_with, Mover};
use ftqc_sim::ResourceTimeline;
use std::collections::{HashMap, HashSet};

/// Occupancy view over the engine's mutable state. The occupancy
/// predicate reads the engine's flat per-cell mirror (`occ_grid`) instead
/// of the `cell -> qubit` hash map: the routing searches call
/// `is_occupied` on every neighbour relaxation, and the O(1) array probe
/// is what keeps the query cost bounded by the search itself.
struct OccView<'a> {
    grid: &'a Grid,
    occ_grid: &'a [bool],
    extra_blocked: &'a HashSet<Coord>,
}

impl OccView<'_> {
    #[inline]
    fn index(&self, c: Coord) -> usize {
        c.row as usize * self.grid.cols() as usize + c.col as usize
    }
}

impl Occupancy for OccView<'_> {
    fn is_blocked(&self, c: Coord) -> bool {
        !self.grid.in_bounds(c) || self.extra_blocked.contains(&c)
    }
    fn is_occupied(&self, c: Coord) -> bool {
        self.grid.in_bounds(c) && self.occ_grid[self.index(c)]
    }
}

/// The routing engine. Create with [`Engine::new`], run with
/// [`Engine::run`], then take the emitted ops with [`Engine::into_ops`].
pub struct Engine<'a> {
    layout: &'a Layout,
    options: &'a CompilerOptions,
    bank: FactoryBank,
    /// The incremental routing facade: cost model, reusable search arena,
    /// digest-keyed path table, and the live occupancy digest (updated on
    /// every claim/release in [`Engine::raw_move`]).
    router: Router,
    /// qubit -> current cell
    pos: Vec<Coord>,
    /// cell -> qubit
    occ: HashMap<Coord, u32>,
    /// Flat row-major mirror of `occ`'s key set — the O(1) occupancy
    /// predicate behind every [`OccView`]. Updated in lock-step with `occ`
    /// by [`Engine::raw_move`].
    occ_grid: Vec<bool>,
    /// Provisional per-cell timeline guiding greedy ordering decisions.
    timeline: ResourceTimeline,
    qubit_ready: Vec<Ticks>,
    ops: Vec<RoutedOp>,
    current_gate: usize,
    /// Cells no operation may enter while the current gate executes
    /// (operand positions).
    protected: HashSet<Coord>,
    /// Cells displacement chains may pass *through* but never park a qubit
    /// in (the planned merge ancilla of the current gate).
    no_park: HashSet<Coord>,
    n_magic_states: u64,
}

impl<'a> Engine<'a> {
    /// Creates an engine over `layout` with qubits placed by `mapping`,
    /// routing through the incremental engine.
    pub fn new(
        layout: &'a Layout,
        mapping: &InitialMapping,
        bank: FactoryBank,
        options: &'a CompilerOptions,
    ) -> Self {
        Self::with_mode(layout, mapping, bank, options, RouterMode::Incremental)
    }

    /// [`Engine::new`] with an explicit [`RouterMode`] — the seam the
    /// differential tests and the bench baseline use to run the exact same
    /// engine over the seed (reference) routing implementations.
    pub fn with_mode(
        layout: &'a Layout,
        mapping: &InitialMapping,
        bank: FactoryBank,
        options: &'a CompilerOptions,
        mode: RouterMode,
    ) -> Self {
        Self::with_parts(layout, mapping, bank, options, mode, RouterParts::default())
    }

    /// [`Engine::with_mode`] seeded with previously warmed [`RouterParts`]
    /// (search arena + path table). Warmth never changes results — path
    /// table entries are pure functions of their digest keys — it only
    /// skips re-deriving paths the previous compile already found.
    pub fn with_parts(
        layout: &'a Layout,
        mapping: &InitialMapping,
        bank: FactoryBank,
        options: &'a CompilerOptions,
        mode: RouterMode,
        parts: RouterParts,
    ) -> Self {
        let pos: Vec<Coord> = mapping.cells().to_vec();
        let occ: HashMap<Coord, u32> = pos
            .iter()
            .enumerate()
            .map(|(q, &c)| (c, q as u32))
            .collect();
        let cost = CostModel {
            penalty_weight: options.penalty_weight,
        };
        let grid = layout.grid();
        let mut router = Router::from_parts(grid, cost, mode, parts);
        let mut occ_grid = vec![false; (grid.rows() * grid.cols()) as usize];
        for &c in occ.keys() {
            router.claim(c);
            occ_grid[c.row as usize * grid.cols() as usize + c.col as usize] = true;
        }
        Self {
            layout,
            options,
            bank,
            router,
            qubit_ready: vec![Ticks::ZERO; pos.len()],
            pos,
            occ,
            occ_grid,
            timeline: ResourceTimeline::new(),
            ops: Vec::new(),
            current_gate: 0,
            protected: HashSet::new(),
            no_park: HashSet::new(),
            n_magic_states: 0,
        }
    }

    /// Reconstructs an engine mid-run from `ckpt`, exactly as it stood when
    /// the checkpoint was captured: gates `0..ckpt.cut` complete,
    /// `prefix_ops` already emitted (the caller passes the first
    /// `ckpt.ops_len` ops of the run that captured the checkpoint — they
    /// are identical by determinism). The router is rebuilt around the
    /// warm `parts` with the checkpoint's occupancy re-claimed. Continue
    /// with [`Engine::run_from`]`(circuit, ckpt.cut, ..)`.
    pub fn resume(
        layout: &'a Layout,
        options: &'a CompilerOptions,
        ckpt: &EngineCheckpoint,
        prefix_ops: Vec<RoutedOp>,
        mode: RouterMode,
        parts: RouterParts,
    ) -> Self {
        debug_assert_eq!(prefix_ops.len(), ckpt.ops_len);
        let cost = CostModel {
            penalty_weight: options.penalty_weight,
        };
        let mut router = Router::from_parts(layout.grid(), cost, mode, parts);
        for &c in ckpt.occ.keys() {
            router.claim(c);
        }
        Self {
            layout,
            options,
            bank: ckpt.bank.clone(),
            router,
            pos: ckpt.pos.clone(),
            occ: ckpt.occ.clone(),
            occ_grid: ckpt.occ_grid.clone(),
            timeline: ckpt.timeline.clone(),
            qubit_ready: ckpt.qubit_ready.clone(),
            ops: prefix_ops,
            current_gate: 0,
            protected: HashSet::new(),
            no_park: HashSet::new(),
            n_magic_states: ckpt.n_magic_states,
        }
    }

    /// A deep snapshot of the engine's mutable state; the caller asserts
    /// the completed-gate set is exactly `0..cut` (a causal cut).
    fn checkpoint(&self, cut: usize) -> EngineCheckpoint {
        EngineCheckpoint {
            cut,
            ops_len: self.ops.len(),
            bank: self.bank.clone(),
            pos: self.pos.clone(),
            occ: self.occ.clone(),
            occ_grid: self.occ_grid.clone(),
            timeline: self.timeline.clone(),
            qubit_ready: self.qubit_ready.clone(),
            n_magic_states: self.n_magic_states,
        }
    }

    /// Routes every gate of `circuit` (already lowered to the surgery gate
    /// set), consuming the DAG front layer in earliest-ready order.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::RoutingFailed`] if a gate cannot be realised.
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), CompileError> {
        self.run_from(circuit, 0, 0, &mut Vec::new())
    }

    /// [`Engine::run`], generalised for the differential recompile path:
    /// gates `0..resume_cut` are marked complete without executing (the
    /// engine state must already reflect them — see [`Engine::resume`]),
    /// and whenever `checkpoint_every > 0`, a deep state snapshot is pushed
    /// onto `checkpoints` each time the completed set grows past a *causal
    /// cut* — an instant where the completed gates are exactly a prefix
    /// `0..c` of the gate sequence. Only causal cuts are snapshotted:
    /// resuming from one replays the remainder byte-identically because no
    /// out-of-prefix gate has influenced the state yet.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::RoutingFailed`] if a gate cannot be realised.
    pub fn run_from(
        &mut self,
        circuit: &Circuit,
        resume_cut: usize,
        checkpoint_every: usize,
        checkpoints: &mut Vec<EngineCheckpoint>,
    ) -> Result<(), CompileError> {
        let dag = circuit.dag();
        let mut tracker = dag.tracker();
        let total = circuit.len();
        // Pre-mark the resumed prefix complete. Ascending order is always
        // legal: every predecessor of a gate has a smaller id.
        for id in 0..resume_cut {
            tracker.complete(id);
        }
        let mut completed = vec![false; total];
        completed[..resume_cut].fill(true);
        // `contiguous` = length of the completed prefix; the completed set
        // is exactly {0..contiguous} iff `done == contiguous`.
        let mut contiguous = resume_cut;
        let mut done = resume_cut;
        let mut last_snap = resume_cut;
        while !tracker.is_done() {
            if checkpoint_every > 0
                && done == contiguous
                && contiguous >= last_snap + checkpoint_every
            {
                checkpoints.push(self.checkpoint(contiguous));
                last_snap = contiguous;
            }
            let &gate_id = tracker
                .ready()
                .iter()
                .min_by_key(|&&id| {
                    let ready = dag
                        .node(id)
                        .gate
                        .qubits()
                        .map(|q| self.qubit_ready[q as usize])
                        .fold(Ticks::ZERO, Ticks::max);
                    (ready, id)
                })
                .expect("tracker not done implies non-empty ready set");
            self.current_gate = gate_id;
            self.schedule_gate(&dag.node(gate_id).gate)?;
            tracker.complete(gate_id);
            completed[gate_id] = true;
            done += 1;
            while contiguous < total && completed[contiguous] {
                contiguous += 1;
            }
        }
        Ok(())
    }

    /// The emitted operations, in issue order.
    pub fn into_ops(self) -> (Vec<RoutedOp>, u64) {
        (self.ops, self.n_magic_states)
    }

    /// [`Engine::into_ops`] that also detaches the router's warm parts for
    /// the next differential recompile.
    pub fn into_ops_and_parts(self) -> (Vec<RoutedOp>, u64, RouterParts) {
        (self.ops, self.n_magic_states, self.router.into_parts())
    }

    /// The incremental router's activity counters so far.
    pub fn route_counters(&self) -> RouteCounters {
        self.router.counters()
    }

    fn grid(&self) -> &Grid {
        self.layout.grid()
    }

    /// Digest pinning the full routing-relevant state of a query whose
    /// view blocks `extra` on top of the live occupancy.
    fn query_digest(&self, extra: &HashSet<Coord>) -> u128 {
        self.router.state_digest() ^ blocked_set_digest(extra)
    }

    fn fail(&self, reason: impl Into<String>) -> CompileError {
        CompileError::RoutingFailed {
            gate_index: self.current_gate,
            reason: reason.into(),
        }
    }

    /// Emits an op: assigns a provisional start (per-cell timeline + qubit
    /// readiness + `extra_dep`), reserves resources, updates qubit clocks.
    fn emit(
        &mut self,
        op: SurgeryOp,
        patches: Vec<u32>,
        factory: Option<usize>,
        extra_dep: Ticks,
    ) -> Ticks {
        debug_assert!(op.validate().is_ok(), "emitting invalid op {op}");
        let cells = op.cells();
        let dep = patches
            .iter()
            .map(|&q| self.qubit_ready[q as usize])
            .fold(extra_dep, Ticks::max);
        let start = self.timeline.earliest_start(cells.iter().copied(), dep);
        let duration = op.duration(&self.options.target.timing);
        self.timeline
            .reserve(cells.iter().copied(), start, duration);
        let end = start + duration;
        for &q in &patches {
            self.qubit_ready[q as usize] = end;
        }
        self.ops.push(RoutedOp {
            op,
            patches,
            factory,
            gate: Some(self.current_gate),
        });
        end
    }

    /// Moves the qubit occupying `from` one step to `to` (must be free).
    fn raw_move(&mut self, from: Coord, to: Coord) {
        let q = *self
            .occ
            .get(&from)
            .unwrap_or_else(|| panic!("raw move from empty cell {from}"));
        debug_assert!(!self.occ.contains_key(&to), "raw move into occupied {to}");
        self.emit(SurgeryOp::Move { from, to }, vec![q], None, Ticks::ZERO);
        self.occ.remove(&from);
        self.occ.insert(to, q);
        let cols = self.layout.grid().cols() as usize;
        self.occ_grid[from.row as usize * cols + from.col as usize] = false;
        self.occ_grid[to.row as usize * cols + to.col as usize] = true;
        self.router.release(from);
        self.router.claim(to);
        self.pos[q as usize] = to;
    }

    /// Frees `cell` (if occupied) by pushing its occupant — and any chain of
    /// occupants — toward the nearest free cell, never entering `avoid`
    /// cells or protected operand cells.
    fn ensure_free(&mut self, cell: Coord, avoid: &HashSet<Coord>) -> Result<(), CompileError> {
        if !self.occ.contains_key(&cell) {
            return Ok(());
        }
        let mut strict: HashSet<Coord> = avoid.clone();
        strict.extend(self.protected.iter().copied());
        strict.extend(self.no_park.iter().copied());
        strict.remove(&cell);
        // Preferred: keep the planned ancilla (no_park) clear. If that boxes
        // the occupant in, allow parking there — the ancilla gets its own
        // clearing pass before the merge, so this is recoverable.
        let mut relaxed: HashSet<Coord> = avoid.clone();
        relaxed.extend(self.protected.iter().copied());
        relaxed.remove(&cell);
        let plan = {
            let grid = self.layout.grid();
            let none = HashSet::new();
            let view = OccView {
                grid,
                occ_grid: &self.occ_grid,
                extra_blocked: &none,
            };
            self.router
                .clear_cell_plan(grid, &view, cell, &strict)
                .or_else(|| self.router.clear_cell_plan(grid, &view, cell, &relaxed))
        };
        match plan {
            Some(moves) => {
                for (f, t) in moves {
                    self.raw_move(f, t);
                }
                Ok(())
            }
            None => Err(self.fail(format!("cannot clear cell {cell}"))),
        }
    }

    /// Walks qubit `q` to `dest` along a planned path, displacing blockers
    /// on the way. The path is committed to (no per-step re-planning, which
    /// can oscillate under displacement churn); re-planning happens only
    /// when a blocker cannot be displaced, with that cell banned. Protected
    /// cells are never entered.
    fn relocate(&mut self, q: u32, dest: Coord) -> Result<(), CompileError> {
        let budget = (self.grid().num_cells() as usize) * 8;
        let mut steps = 0usize;
        let mut banned: HashSet<Coord> = HashSet::new();
        'replan: while self.pos[q as usize] != dest {
            let from = self.pos[q as usize];
            let path = {
                let mut blocked = self.protected.clone();
                blocked.extend(banned.iter().copied());
                let grid = self.layout.grid();
                let digest = self.query_digest(&blocked);
                let view = OccView {
                    grid,
                    occ_grid: &self.occ_grid,
                    extra_blocked: &blocked,
                };
                self.router.find_path(grid, &view, digest, from, dest)
            }
            .ok_or_else(|| self.fail(format!("no path from {from} to {dest}")))?;
            for i in 1..path.cells.len() {
                steps += 1;
                if steps > budget {
                    return Err(self.fail(format!("relocation of q{q} to {dest} did not converge")));
                }
                let here = self.pos[q as usize];
                let next = path.cells[i];
                if self.occ.contains_key(&next) {
                    let mut avoid = HashSet::new();
                    avoid.insert(here);
                    if self.ensure_free(next, &avoid).is_err() {
                        if next == dest {
                            // The destination itself cannot be cleared:
                            // this relocation target is infeasible.
                            return Err(
                                self.fail(format!("destination {dest} cannot be cleared for q{q}"))
                            );
                        }
                        // The occupant of `next` is boxed in: ban the cell
                        // and route around it.
                        banned.insert(next);
                        continue 'replan;
                    }
                }
                self.raw_move(here, next);
            }
        }
        Ok(())
    }

    /// Finds (clearing if necessary) a free ancilla adjacent to `cell`.
    fn acquire_ancilla(&mut self, cell: Coord) -> Result<Coord, CompileError> {
        let plan = {
            let grid = self.layout.grid();
            let view = OccView {
                grid,
                occ_grid: &self.occ_grid,
                extra_blocked: &self.protected,
            };
            self.router.space_search(grid, &view, cell)
        };
        match plan {
            Some(p) => {
                for (f, t) in p.clearing_moves {
                    self.raw_move(f, t);
                }
                Ok(p.ancilla)
            }
            None => Err(self.fail(format!("no ancilla available near {cell}"))),
        }
    }

    fn schedule_gate(&mut self, gate: &Gate) -> Result<(), CompileError> {
        match *gate {
            Gate::X(q) | Gate::Y(q) | Gate::Z(q) => {
                let cell = self.pos[q as usize];
                self.emit(SurgeryOp::PauliFrame { cell }, vec![q], None, Ticks::ZERO);
                Ok(())
            }
            Gate::H(q) => self.exec_single(q, SingleQubitKind::H),
            Gate::S(q) => self.exec_single(q, SingleQubitKind::S),
            Gate::Sdg(q) => self.exec_single(q, SingleQubitKind::Sdg),
            Gate::Sx(q) => self.exec_single(q, SingleQubitKind::Sx),
            Gate::Sxdg(q) => self.exec_single(q, SingleQubitKind::Sxdg),
            Gate::Rz(q, a) if a.is_clifford() => {
                // Rz(kπ/2): k≡0,2 are frame updates; k≡1,3 are S/S†.
                let halves = (a.turns_of_pi() * 2.0).round() as i64;
                match halves.rem_euclid(4) {
                    0 | 2 => {
                        let cell = self.pos[q as usize];
                        self.emit(SurgeryOp::PauliFrame { cell }, vec![q], None, Ticks::ZERO);
                        Ok(())
                    }
                    1 => self.exec_single(q, SingleQubitKind::S),
                    _ => self.exec_single(q, SingleQubitKind::Sdg),
                }
            }
            Gate::T(q) | Gate::Tdg(q) => {
                let n = self.options.t_state_policy.states_per_t.max(1);
                self.exec_magic(q, n)
            }
            Gate::Rz(q, _) => {
                let n = self.options.t_state_policy.states_per_rz.max(1);
                self.exec_magic(q, n)
            }
            Gate::Cnot { control, target } => self.exec_cnot(control, target),
            Gate::Measure(q) => {
                let cell = self.pos[q as usize];
                self.emit(SurgeryOp::MeasureZ { cell }, vec![q], None, Ticks::ZERO);
                Ok(())
            }
            Gate::Cz(_, _) | Gate::Swap(_, _) => {
                Err(self
                    .fail("CZ/SWAP must be lowered before routing (Compiler::compile does this)"))
            }
        }
    }

    fn exec_single(&mut self, q: u32, kind: SingleQubitKind) -> Result<(), CompileError> {
        self.protected = [self.pos[q as usize]].into_iter().collect();
        let cell = self.pos[q as usize];
        let ancilla = self.acquire_ancilla(cell)?;
        self.emit(
            SurgeryOp::Single {
                kind,
                cell,
                ancilla,
            },
            vec![q],
            None,
            Ticks::ZERO,
        );
        self.protected.clear();
        self.no_park.clear();
        Ok(())
    }

    fn exec_magic(&mut self, q: u32, states: u32) -> Result<(), CompileError> {
        for _ in 0..states {
            self.protected = [self.pos[q as usize]].into_iter().collect();
            let tq = self.pos[q as usize];
            // Delivery cell: vertical neighbour (M_ZZ constraint), preferring
            // a free one, then the cheaper to clear.
            let candidates: Vec<Coord> = [
                Coord::new(tq.row - 1, tq.col),
                Coord::new(tq.row + 1, tq.col),
            ]
            .into_iter()
            .filter(|&c| self.grid().in_bounds(c))
            .collect();
            if candidates.is_empty() {
                return Err(self.fail(format!("no vertical neighbour for magic at {tq}")));
            }
            let dest = candidates
                .iter()
                .copied()
                .min_by_key(|&c| {
                    let occupied = self.occ.contains_key(&c);
                    let bus_bias = match self.grid().kind(c) {
                        CellKind::Bus => 0,
                        CellKind::Data => 1,
                    };
                    (occupied as u32, bus_bias, c.row, c.col)
                })
                .expect("candidates non-empty");
            let avoid: HashSet<Coord> = [tq].into_iter().collect();
            self.ensure_free(dest, &avoid)?;

            let grant = self.bank.acquire(self.qubit_ready[q as usize]);
            let path = {
                let grid = self.layout.grid();
                let digest = self.query_digest(&self.protected);
                let view = OccView {
                    grid,
                    occ_grid: &self.occ_grid,
                    extra_blocked: &self.protected,
                };
                self.router.find_path(grid, &view, digest, grant.port, dest)
            }
            .ok_or_else(|| self.fail(format!("no delivery path {} -> {dest}", grant.port)))?;
            self.n_magic_states += 1;
            if path.cells.len() >= 2 {
                self.emit(
                    SurgeryOp::DeliverMagic { path: path.cells },
                    vec![],
                    Some(grant.factory),
                    grant.available,
                );
                self.emit(
                    SurgeryOp::ConsumeMagic {
                        target: tq,
                        magic: dest,
                    },
                    vec![q],
                    None,
                    Ticks::ZERO,
                );
            } else {
                // The factory port *is* the delivery cell: the state appears
                // in place and the consumption carries the grant itself.
                self.emit(
                    SurgeryOp::ConsumeMagic {
                        target: tq,
                        magic: dest,
                    },
                    vec![q],
                    Some(grant.factory),
                    grant.available,
                );
            }
            self.protected.clear();
            self.no_park.clear();
        }
        Ok(())
    }

    /// Whether the occupant of `ancilla` (if any) can escape once the
    /// operands sit at `cp`/`tp`: it needs at least one in-bounds neighbour
    /// that is not an operand cell. Prevents committing to boxed-corner
    /// configurations whose ancilla can never be cleared.
    fn ancilla_clearable(&self, ancilla: Coord, cp: Coord, tp: Coord) -> bool {
        if !self.occ.contains_key(&ancilla) {
            return true;
        }
        ancilla
            .neighbours()
            .into_iter()
            .any(|n| self.grid().in_bounds(n) && n != cp && n != tp)
    }

    fn exec_cnot(&mut self, control: u32, target: u32) -> Result<(), CompileError> {
        let (c_pos, t_pos) = (self.pos[control as usize], self.pos[target as usize]);
        self.protected = [c_pos, t_pos].into_iter().collect();

        // Preferred: the gate-dependent move heuristic over free cells.
        let cfg = {
            let grid = self.layout.grid();
            let digest = self.router.state_digest();
            let none = HashSet::new();
            let view = OccView {
                grid,
                occ_grid: &self.occ_grid,
                extra_blocked: &none,
            };
            best_cnot_config_with(
                &mut self.router,
                grid,
                &view,
                digest,
                c_pos,
                t_pos,
                self.options.lookahead,
            )
        }
        .filter(|cfg| self.ancilla_clearable(cfg.ancilla, cfg.control, cfg.target));

        let (mover, dest) = match cfg {
            Some(cfg) => match cfg.mover {
                Mover::None => (None, None),
                Mover::Control => (Some(control), Some(cfg.control)),
                Mover::Target => (Some(target), Some(cfg.target)),
            },
            None => {
                // Packed block (or the heuristic's pick was a boxed corner):
                // allow occupied destinations, scored by distance plus a
                // clearing estimate.
                let mut best: Option<(u32, Coord, u32)> = None;
                for (mq, anchor, from) in [(control, t_pos, c_pos), (target, c_pos, t_pos)] {
                    for d in anchor.diagonals() {
                        if !self.grid().in_bounds(d) || d == from || d == anchor {
                            continue;
                        }
                        let (cp, tp) = if mq == control {
                            (d, t_pos)
                        } else {
                            (c_pos, d)
                        };
                        let anc = match cnot_ancilla(cp, tp) {
                            Some(a) => a,
                            None => continue,
                        };
                        if !self.grid().in_bounds(anc) || anc == cp || anc == tp {
                            continue;
                        }
                        if !self.ancilla_clearable(anc, cp, tp) {
                            continue;
                        }
                        let est = from.manhattan(d)
                            + 2 * self.occ.contains_key(&d) as u32
                            + 2 * self.occ.contains_key(&anc) as u32;
                        if best.is_none_or(|(_, _, b)| est < b) {
                            best = Some((mq, d, est));
                        }
                    }
                }
                let (mq, d, _) =
                    best.ok_or_else(|| self.fail("no CNOT configuration reachable"))?;
                (Some(mq), Some(d))
            }
        };

        if let (Some(mq), Some(d)) = (mover, dest) {
            // Protect the anchor operand and the *planned* ancilla cell so
            // displacement chains never park a qubit where the merge must
            // happen; the mover itself walks freely.
            self.protected.remove(&self.pos[mq as usize]);
            let planned = if mq == control {
                cnot_ancilla(d, t_pos)
            } else {
                cnot_ancilla(c_pos, d)
            };
            if let Some(a) = planned {
                if !self.occ.contains_key(&a) {
                    // Only freeze it when free — a pre-existing occupant
                    // still needs to escape through normal clearing. The
                    // mover may pass through; nothing may park there.
                    self.no_park.insert(a);
                }
            }
            let avoid: HashSet<Coord> = HashSet::new();
            self.ensure_free(d, &avoid)?;
            self.relocate(mq, d)?;
            self.protected.insert(d);
        }

        let (cp, tp) = (self.pos[control as usize], self.pos[target as usize]);
        let ancilla = cnot_ancilla(cp, tp)
            .ok_or_else(|| self.fail("operands not diagonal after relocation"))?;
        self.protected = [cp, tp].into_iter().collect();
        let avoid: HashSet<Coord> = HashSet::new();
        self.ensure_free(ancilla, &avoid)?;
        self.emit(
            SurgeryOp::Cnot {
                control: cp,
                target: tp,
                ancilla,
            },
            vec![control, target],
            None,
            Ticks::ZERO,
        );
        self.protected.clear();
        self.no_park.clear();
        Ok(())
    }
}

/// A deep snapshot of the routing engine's mutable state at a *causal
/// cut* — an instant where the completed-gate set is exactly the prefix
/// `0..cut` of the lowered gate sequence. Captured by
/// [`Engine::run_from`], restored by [`Engine::resume`].
///
/// The emitted ops themselves are not stored: the first `ops_len` ops of
/// the run that captured the checkpoint are identical in any resumed run
/// (the engine is deterministic), so the caller re-supplies them.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    /// Gates `0..cut` are complete, nothing else has run.
    pub cut: usize,
    /// Ops emitted so far when the snapshot was taken.
    pub ops_len: usize,
    bank: FactoryBank,
    pos: Vec<Coord>,
    occ: HashMap<Coord, u32>,
    occ_grid: Vec<bool>,
    timeline: ResourceTimeline,
    qubit_ready: Vec<Ticks>,
    n_magic_states: u64,
}

/// Everything the map stage produces for a lowered circuit: the layout,
/// the initial placement, the routed operation sequence, and the routing
/// engine's activity counters.
#[derive(Debug, Clone)]
pub struct RoutedProgram {
    /// The layout the circuit was routed on.
    pub layout: Layout,
    /// The initial qubit placement.
    pub mapping: InitialMapping,
    /// Logical patches consumed by the factory bank.
    pub factory_patches: u32,
    /// The routed operations, in issue order.
    pub ops: Vec<RoutedOp>,
    /// Magic states the routed program consumes.
    pub n_magic_states: u64,
    /// The incremental router's counters for this compile.
    pub route: RouteCounters,
}

/// Runs the map stage — target validation, layout construction, initial
/// placement, factory docking, and greedy routing — over an already
/// *lowered* circuit, with an explicit [`RouterMode`].
///
/// [`RouterMode::Incremental`] is what the pipeline uses;
/// [`RouterMode::Reference`] re-routes through the seed (allocation-heavy)
/// implementations and is the baseline of `tests/route_differential.rs`
/// and the `bench_session` speedup measurement. Both modes produce
/// byte-identical routed programs.
///
/// # Errors
///
/// [`CompileError::Target`], [`CompileError::Layout`], or
/// [`CompileError::RoutingFailed`] — exactly as the map stage reports
/// them (untagged; [`CompileSession`](crate::CompileSession) adds the
/// stage tag).
pub fn route_circuit(
    lowered: &Circuit,
    options: &CompilerOptions,
    mode: RouterMode,
) -> Result<RoutedProgram, CompileError> {
    let target = &options.target;
    target.validate(lowered.num_qubits(), lowered.t_count() as u64)?;
    let layout = target.build_layout(lowered.num_qubits())?;
    let mapping = InitialMapping::for_circuit(&layout, lowered, options.mapping);
    let bank = target.factory_bank(&layout);
    let factory_patches = bank.total_tiles();
    let mut engine = Engine::with_mode(&layout, &mapping, bank, options, mode);
    engine.run(lowered)?;
    let route = engine.route_counters();
    let (ops, n_magic_states) = engine.into_ops();
    Ok(RoutedProgram {
        layout,
        mapping,
        factory_patches,
        ops,
        n_magic_states,
        route,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingStrategy;
    use ftqc_circuit::Circuit;

    fn run_engine(circuit: &Circuit, r: u32, factories: u32) -> (Vec<RoutedOp>, u64) {
        let options = CompilerOptions::default()
            .routing_paths(r)
            .factories(factories);
        let layout = Layout::with_routing_paths(circuit.num_qubits(), r);
        let mapping = InitialMapping::new(&layout, circuit.num_qubits(), MappingStrategy::Snake);
        let bank = FactoryBank::dock(&layout, factories, options.target.timing.magic_production);
        let mut engine = Engine::new(&layout, &mapping, bank, &options);
        engine.run(circuit).expect("engine routes the circuit");
        engine.into_ops()
    }

    #[test]
    fn hadamard_emits_single_with_ancilla() {
        let mut c = Circuit::new(4);
        c.h(0);
        let (ops, magic) = run_engine(&c, 4, 1);
        assert_eq!(magic, 0);
        assert!(ops.iter().any(|o| matches!(
            o.op,
            SurgeryOp::Single {
                kind: SingleQubitKind::H,
                ..
            }
        )));
        for o in &ops {
            o.op.validate().expect("all emitted ops valid");
        }
    }

    #[test]
    fn pauli_gates_are_frame_updates() {
        let mut c = Circuit::new(4);
        c.x(0).y(1).z(2);
        let (ops, _) = run_engine(&c, 4, 1);
        assert_eq!(ops.len(), 3);
        assert!(ops
            .iter()
            .all(|o| matches!(o.op, SurgeryOp::PauliFrame { .. })));
    }

    #[test]
    fn t_gate_delivers_and_consumes() {
        let mut c = Circuit::new(4);
        c.t(0);
        let (ops, magic) = run_engine(&c, 4, 1);
        assert_eq!(magic, 1);
        let deliver = ops
            .iter()
            .find(|o| matches!(o.op, SurgeryOp::DeliverMagic { .. }))
            .expect("delivery emitted");
        assert_eq!(deliver.factory, Some(0));
        let consume = ops
            .iter()
            .find(|o| matches!(o.op, SurgeryOp::ConsumeMagic { .. }))
            .expect("consumption emitted");
        assert_eq!(consume.patches, vec![0]);
        // Delivery ends at the consume's magic cell.
        if let (SurgeryOp::DeliverMagic { path }, SurgeryOp::ConsumeMagic { magic, .. }) =
            (&deliver.op, &consume.op)
        {
            assert_eq!(path.last(), Some(magic));
        }
    }

    #[test]
    fn clifford_rz_needs_no_magic() {
        let mut c = Circuit::new(4);
        c.rz_pi(0, 0.5).rz_pi(1, 1.0).rz_pi(2, -0.5).rz_pi(3, 2.0);
        let (ops, magic) = run_engine(&c, 4, 1);
        assert_eq!(magic, 0);
        // S, frame, Sdg, frame.
        let singles = ops
            .iter()
            .filter(|o| matches!(o.op, SurgeryOp::Single { .. }))
            .count();
        let frames = ops
            .iter()
            .filter(|o| matches!(o.op, SurgeryOp::PauliFrame { .. }))
            .count();
        assert_eq!(singles, 2);
        assert_eq!(frames, 2);
    }

    #[test]
    fn synthesis_policy_multiplies_states() {
        let mut c = Circuit::new(4);
        c.rz_pi(0, 0.1);
        let options = CompilerOptions::default()
            .routing_paths(4)
            .t_state_policy(crate::options::TStatePolicy::synthesis(3));
        let layout = Layout::with_routing_paths(4, 4);
        let mapping = InitialMapping::new(&layout, 4, MappingStrategy::Snake);
        let bank = FactoryBank::dock(&layout, 1, options.target.timing.magic_production);
        let mut engine = Engine::new(&layout, &mapping, bank, &options);
        engine.run(&c).unwrap();
        let (_, magic) = engine.into_ops();
        assert_eq!(magic, 3);
    }

    #[test]
    fn adjacent_cnot_requires_one_move() {
        // Snake mapping on 2x2: qubits 0,1 horizontally adjacent.
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        let (ops, _) = run_engine(&c, 6, 1);
        let moves = ops.iter().filter(|o| o.is_movement()).count();
        assert!(moves >= 1, "horizontal pair needs at least one move");
        assert!(ops.iter().any(|o| matches!(o.op, SurgeryOp::Cnot { .. })));
        for o in &ops {
            o.op.validate().expect("valid ops");
        }
    }

    #[test]
    fn cnot_in_packed_block_displaces() {
        // 3x3 fully packed, r=2 (top+left bus only): interior CNOTs force
        // displacement chains.
        let mut c = Circuit::new(9);
        c.cnot(4, 7).cnot(1, 4).cnot(3, 4);
        let (ops, _) = run_engine(&c, 2, 1);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o.op, SurgeryOp::Cnot { .. }))
                .count(),
            3
        );
        for o in &ops {
            o.op.validate().expect("valid ops");
        }
    }

    #[test]
    fn measure_emits_measure_op() {
        let mut c = Circuit::new(4);
        c.h(0).measure(0);
        let (ops, _) = run_engine(&c, 4, 1);
        assert!(ops
            .iter()
            .any(|o| matches!(o.op, SurgeryOp::MeasureZ { .. })));
    }

    #[test]
    fn engine_positions_stay_consistent() {
        // A busy little program: every op must stay valid, implying the
        // internal position/occupancy maps never diverge.
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
        }
        for (a, b) in [(0u32, 1u32), (3, 4), (7, 8), (2, 5), (4, 7)] {
            c.cnot(a, b);
        }
        for q in [0u32, 4, 8] {
            c.t(q);
        }
        let (ops, magic) = run_engine(&c, 4, 2);
        assert_eq!(magic, 3);
        for o in &ops {
            o.op.validate()
                .unwrap_or_else(|e| panic!("invalid op {}: {e}", o.op));
        }
    }

    #[test]
    fn two_factories_split_deliveries() {
        let mut c = Circuit::new(16);
        for q in 0..8 {
            c.t(q);
        }
        let (ops, _) = run_engine(&c, 4, 2);
        let mut used: Vec<usize> = ops.iter().filter_map(|o| o.factory).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used, vec![0, 1], "both factories used");
    }
}
