//! The greedy routing engine (paper §V).
//!
//! The engine consumes the circuit DAG front layer in earliest-ready order
//! and realises each gate on the grid:
//!
//! * data-qubit relocations are planned with penalty-weighted Dijkstra and
//!   executed one cell per move (1d each, Fig 7(d)), displacing blocking
//!   qubits with space-search push chains when the block is packed;
//! * CNOT configurations come from the gate-dependent move heuristic
//!   (cheapest of the eight diagonal placements when look-ahead is on);
//! * magic states are granted by the earliest-available factory and routed
//!   along a bus corridor to a cell vertically adjacent to the consumer;
//! * single-patch Cliffords borrow the nearest free neighbouring ancilla.
//!
//! The engine emits [`RoutedOp`]s in issue order together with provisional
//! times; the authoritative timing happens in [`crate::timer`] after the
//! redundant-move pass.
//!
//! # Speculative parallel CNOT routing
//!
//! When [`route_workers`] ≥ 2 the engine additionally routes ready CNOTs
//! *speculatively* on worker threads, each against a snapshot of the
//! engine state with its own warm [`RouterParts`] (per-thread
//! `SearchArena`). The serial gate-selection loop is left untouched — it
//! still picks exactly the gate a serial run would pick — but when the
//! picked CNOT has a speculation whose recorded *read footprint* (every
//! cell whose occupancy or timeline the speculative execution probed) is
//! disjoint from everything written since the snapshot, the speculation's
//! recorded emissions are replayed instead of re-routing. Conflicted or
//! failed speculations fall back to the normal serial path. Because a
//! deterministic routine re-run over unchanged inputs produces unchanged
//! outputs, the committed schedule is byte-identical to the serial one —
//! the property `tests/route_differential.rs` pins across presets.

use crate::error::CompileError;
use crate::mapping::InitialMapping;
use crate::options::CompilerOptions;
use crate::routed::RoutedOp;
use ftqc_arch::{
    cnot_ancilla, CellKind, Coord, FactoryBank, Grid, Layout, SingleQubitKind, SurgeryOp, Ticks,
};
use ftqc_circuit::{Circuit, Gate};
use ftqc_route::dijkstra::{CostModel, Occupancy};
use ftqc_route::incremental::{blocked_set_digest, RouteCounters, Router, RouterMode, RouterParts};
use ftqc_route::moves::{best_cnot_config_with, Mover};
use ftqc_sim::ResourceTimeline;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

/// The process-wide parallel-routing knob: `FTQC_ROUTE_WORKERS` when set
/// to an integer ≥ 2 enables speculative CNOT routing on that many worker
/// threads; absent, unparsable, 0 or 1 means serial. Parallelism never
/// changes routed output (see the module docs), only wall-clock.
pub fn route_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("FTQC_ROUTE_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.clamp(1, 64))
            .unwrap_or(1)
    })
}

/// Occupancy view over the engine's mutable state. The occupancy
/// predicate reads the engine's flat per-cell mirror (`occ_grid`) instead
/// of the `cell -> qubit` hash map: the routing searches call
/// `is_occupied` on every neighbour relaxation, and the O(1) array probe
/// is what keeps the query cost bounded by the search itself.
struct OccView<'a> {
    grid: &'a Grid,
    occ_grid: &'a [bool],
    extra_blocked: &'a HashSet<Coord>,
    /// Read-probe recorder for speculative execution (`None` in the serial
    /// engine). `is_blocked` is a function of the static grid and the
    /// gate-local `extra_blocked` set only, so occupancy probes are the
    /// sole global reads a search makes through this view.
    probes: Option<&'a RefCell<ProbeSet>>,
}

impl OccView<'_> {
    #[inline]
    fn index(&self, c: Coord) -> usize {
        c.row as usize * self.grid.cols() as usize + c.col as usize
    }
}

impl Occupancy for OccView<'_> {
    fn is_blocked(&self, c: Coord) -> bool {
        !self.grid.in_bounds(c) || self.extra_blocked.contains(&c)
    }
    fn is_occupied(&self, c: Coord) -> bool {
        if !self.grid.in_bounds(c) {
            return false;
        }
        if let Some(p) = self.probes {
            p.borrow_mut().record(c);
        }
        self.occ_grid[self.index(c)]
    }
}

/// The deduplicated set of cells a speculative execution has read, as flat
/// row-major indexes. A speculation is safe to commit iff none of these
/// cells was written between its snapshot and the commit point.
struct ProbeSet {
    rows: i32,
    cols: i32,
    seen: Vec<bool>,
    list: Vec<u32>,
}

impl ProbeSet {
    fn new(grid: &Grid) -> Self {
        Self {
            rows: grid.rows() as i32,
            cols: grid.cols() as i32,
            seen: vec![false; (grid.rows() * grid.cols()) as usize],
            list: Vec::new(),
        }
    }

    fn record(&mut self, c: Coord) {
        if c.row < 0 || c.row >= self.rows || c.col < 0 || c.col >= self.cols {
            return; // out-of-bounds probes read nothing mutable
        }
        let i = (c.row * self.cols + c.col) as usize;
        if !self.seen[i] {
            self.seen[i] = true;
            self.list.push(i as u32);
        }
    }
}

/// One recorded [`Engine::emit`] call, replayable on the main engine.
/// Provisional times are not stored: `emit` re-derives them from the
/// committing engine's timeline, which footprint-disjointness guarantees
/// agrees with the speculative one on every relevant cell.
struct EmitRecord {
    op: SurgeryOp,
    patches: Vec<u32>,
    factory: Option<usize>,
    extra_dep: Ticks,
}

/// A speculative routing job: route the ready CNOT `gate_id` against the
/// shared snapshot.
struct SpecJob {
    gate_id: usize,
    control: u32,
    target: u32,
    ckpt: Arc<EngineCheckpoint>,
}

/// What a worker hands back: the recorded emissions and read footprint, or
/// `None` when the speculative routing failed (the serial path decides).
struct SpecResult {
    gate_id: usize,
    outcome: Option<SpecOutcome>,
}

struct SpecOutcome {
    emits: Vec<EmitRecord>,
    reads: Vec<u32>,
}

/// Handles into the scoped worker pool, owned by the drive loop.
struct SpecPool {
    job_tx: mpsc::Sender<SpecJob>,
    res_rx: mpsc::Receiver<SpecResult>,
    workers: usize,
}

/// The routing engine. Create with [`Engine::new`], run with
/// [`Engine::run`], then take the emitted ops with [`Engine::into_ops`].
pub struct Engine<'a> {
    layout: &'a Layout,
    options: &'a CompilerOptions,
    bank: FactoryBank,
    /// The incremental routing facade: cost model, reusable search arena,
    /// digest-keyed path table, and the live occupancy digest (updated on
    /// every claim/release in [`Engine::raw_move`]).
    router: Router,
    /// qubit -> current cell
    pos: Vec<Coord>,
    /// cell -> qubit
    occ: HashMap<Coord, u32>,
    /// Flat row-major mirror of `occ`'s key set — the O(1) occupancy
    /// predicate behind every [`OccView`]. Updated in lock-step with `occ`
    /// by [`Engine::raw_move`].
    occ_grid: Vec<bool>,
    /// Provisional per-cell timeline guiding greedy ordering decisions.
    timeline: ResourceTimeline,
    qubit_ready: Vec<Ticks>,
    ops: Vec<RoutedOp>,
    current_gate: usize,
    /// Cells no operation may enter while the current gate executes
    /// (operand positions).
    protected: HashSet<Coord>,
    /// Cells displacement chains may pass *through* but never park a qubit
    /// in (the planned merge ancilla of the current gate).
    no_park: HashSet<Coord>,
    n_magic_states: u64,
    /// Worker threads for speculative CNOT routing; ≤ 1 means serial.
    workers: usize,
    /// Speculations committed (clean footprint) / rejected (conflicted or
    /// failed) by the drive loop. Observability only — never decisions.
    spec_adopted: u64,
    spec_rejected: u64,
    /// When speculating: every occupancy/timeline cell this engine reads.
    probes: Option<RefCell<ProbeSet>>,
    /// When speculating: every `emit` call, for replay on the main engine.
    emit_log: Option<Vec<EmitRecord>>,
}

impl<'a> Engine<'a> {
    /// Creates an engine over `layout` with qubits placed by `mapping`,
    /// routing through the incremental engine.
    pub fn new(
        layout: &'a Layout,
        mapping: &InitialMapping,
        bank: FactoryBank,
        options: &'a CompilerOptions,
    ) -> Self {
        Self::with_mode(layout, mapping, bank, options, RouterMode::Incremental)
    }

    /// [`Engine::new`] with an explicit [`RouterMode`] — the seam the
    /// differential tests and the bench baseline use to run the exact same
    /// engine over the seed (reference) routing implementations.
    pub fn with_mode(
        layout: &'a Layout,
        mapping: &InitialMapping,
        bank: FactoryBank,
        options: &'a CompilerOptions,
        mode: RouterMode,
    ) -> Self {
        Self::with_parts(layout, mapping, bank, options, mode, RouterParts::default())
    }

    /// [`Engine::with_mode`] seeded with previously warmed [`RouterParts`]
    /// (search arena + path table). Warmth never changes results — path
    /// table entries are pure functions of their digest keys — it only
    /// skips re-deriving paths the previous compile already found.
    pub fn with_parts(
        layout: &'a Layout,
        mapping: &InitialMapping,
        bank: FactoryBank,
        options: &'a CompilerOptions,
        mode: RouterMode,
        parts: RouterParts,
    ) -> Self {
        let pos: Vec<Coord> = mapping.cells().to_vec();
        let occ: HashMap<Coord, u32> = pos
            .iter()
            .enumerate()
            .map(|(q, &c)| (c, q as u32))
            .collect();
        let cost = CostModel {
            penalty_weight: options.penalty_weight,
        };
        let grid = layout.grid();
        let mut router = Router::from_parts(grid, cost, mode, parts);
        let mut occ_grid = vec![false; (grid.rows() * grid.cols()) as usize];
        for &c in occ.keys() {
            router.claim(c);
            occ_grid[c.row as usize * grid.cols() as usize + c.col as usize] = true;
        }
        Self {
            layout,
            options,
            bank,
            router,
            qubit_ready: vec![Ticks::ZERO; pos.len()],
            pos,
            occ,
            occ_grid,
            timeline: ResourceTimeline::new(),
            ops: Vec::new(),
            current_gate: 0,
            protected: HashSet::new(),
            no_park: HashSet::new(),
            n_magic_states: 0,
            workers: route_workers(),
            spec_adopted: 0,
            spec_rejected: 0,
            probes: None,
            emit_log: None,
        }
    }

    /// Reconstructs an engine mid-run from `ckpt`, exactly as it stood when
    /// the checkpoint was captured: gates `0..ckpt.cut` complete,
    /// `prefix_ops` already emitted (the caller passes the first
    /// `ckpt.ops_len` ops of the run that captured the checkpoint — they
    /// are identical by determinism). The router is rebuilt around the
    /// warm `parts` with the checkpoint's occupancy re-claimed. Continue
    /// with [`Engine::run_from`]`(circuit, ckpt.cut, ..)`.
    pub fn resume(
        layout: &'a Layout,
        options: &'a CompilerOptions,
        ckpt: &EngineCheckpoint,
        prefix_ops: Vec<RoutedOp>,
        mode: RouterMode,
        parts: RouterParts,
    ) -> Self {
        debug_assert_eq!(prefix_ops.len(), ckpt.ops_len);
        let cost = CostModel {
            penalty_weight: options.penalty_weight,
        };
        let mut router = Router::from_parts(layout.grid(), cost, mode, parts);
        for &c in ckpt.occ.keys() {
            router.claim(c);
        }
        Self {
            layout,
            options,
            bank: ckpt.bank.clone(),
            router,
            pos: ckpt.pos.clone(),
            occ: ckpt.occ.clone(),
            occ_grid: ckpt.occ_grid.clone(),
            timeline: ckpt.timeline.clone(),
            qubit_ready: ckpt.qubit_ready.clone(),
            ops: prefix_ops,
            current_gate: 0,
            protected: HashSet::new(),
            no_park: HashSet::new(),
            n_magic_states: ckpt.n_magic_states,
            workers: route_workers(),
            spec_adopted: 0,
            spec_rejected: 0,
            probes: None,
            emit_log: None,
        }
    }

    /// `(adopted, rejected)` speculation counts for this run: how many
    /// CNOTs committed a worker's speculative route versus re-routed
    /// serially after a footprint conflict or speculative failure.
    pub fn speculation_stats(&self) -> (u64, u64) {
        (self.spec_adopted, self.spec_rejected)
    }

    /// Overrides the speculative-routing worker count for this engine (the
    /// process default comes from [`route_workers`]). Any value ≤ 1 routes
    /// serially. The routed output is identical either way.
    pub fn set_route_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// A deep snapshot of the engine's mutable state; the caller asserts
    /// the completed-gate set is exactly `0..cut` (a causal cut).
    fn checkpoint(&self, cut: usize) -> EngineCheckpoint {
        EngineCheckpoint {
            cut,
            ops_len: self.ops.len(),
            bank: self.bank.clone(),
            pos: self.pos.clone(),
            occ: self.occ.clone(),
            occ_grid: self.occ_grid.clone(),
            timeline: self.timeline.clone(),
            qubit_ready: self.qubit_ready.clone(),
            n_magic_states: self.n_magic_states,
        }
    }

    /// Routes every gate of `circuit` (already lowered to the surgery gate
    /// set), consuming the DAG front layer in earliest-ready order.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::RoutingFailed`] if a gate cannot be realised.
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), CompileError> {
        self.run_from(circuit, 0, 0, &mut Vec::new())
    }

    /// [`Engine::run`], generalised for the differential recompile path:
    /// gates `0..resume_cut` are marked complete without executing (the
    /// engine state must already reflect them — see [`Engine::resume`]),
    /// and whenever `checkpoint_every > 0`, a deep state snapshot is pushed
    /// onto `checkpoints` each time the completed set grows past a *causal
    /// cut* — an instant where the completed gates are exactly a prefix
    /// `0..c` of the gate sequence. Only causal cuts are snapshotted:
    /// resuming from one replays the remainder byte-identically because no
    /// out-of-prefix gate has influenced the state yet.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::RoutingFailed`] if a gate cannot be realised.
    pub fn run_from(
        &mut self,
        circuit: &Circuit,
        resume_cut: usize,
        checkpoint_every: usize,
        checkpoints: &mut Vec<EngineCheckpoint>,
    ) -> Result<(), CompileError> {
        let workers = self.workers;
        let speculable = workers >= 2
            && (resume_cut..circuit.len())
                .filter(|&id| matches!(circuit.dag().node(id).gate, Gate::Cnot { .. }))
                .count()
                >= 2;
        if !speculable {
            return self.drive(circuit, resume_cut, checkpoint_every, checkpoints, None);
        }
        let layout = self.layout;
        let options = self.options;
        let mode = self.router.mode();
        std::thread::scope(|scope| {
            let (job_tx, job_rx) = mpsc::channel::<SpecJob>();
            let job_rx = Arc::new(Mutex::new(job_rx));
            let (res_tx, res_rx) = mpsc::channel::<SpecResult>();
            for _ in 0..workers {
                let job_rx = Arc::clone(&job_rx);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    // Each worker keeps its own warm RouterParts across
                    // jobs. Warmth never changes results: path-table
                    // entries are pure functions of their digest keys and
                    // are re-validated against the snapshot's occupancy.
                    let mut parts = RouterParts::default();
                    loop {
                        let job = match job_rx.lock() {
                            Ok(rx) => rx.recv(),
                            Err(_) => break,
                        };
                        let Ok(job) = job else { break };
                        let gate_id = job.gate_id;
                        // A panic inside a speculation must not strand the
                        // drive loop waiting for a result; it degrades to
                        // the serial path instead.
                        let (result, returned) = catch_unwind(AssertUnwindSafe(|| {
                            speculate_cnot(layout, options, mode, parts, &job)
                        }))
                        .unwrap_or_else(|_| {
                            (
                                SpecResult {
                                    gate_id,
                                    outcome: None,
                                },
                                RouterParts::default(),
                            )
                        });
                        parts = returned;
                        if res_tx.send(result).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            let mut pool = SpecPool {
                job_tx,
                res_rx,
                workers,
            };
            self.drive(
                circuit,
                resume_cut,
                checkpoint_every,
                checkpoints,
                Some(&mut pool),
            )
            // Dropping `pool` closes the job channel; every worker's
            // `recv` errors out and the scope joins them.
        })
    }

    /// The serial gate loop, optionally assisted by a speculation pool.
    /// The gate *selection* is identical with and without the pool — only
    /// how an already-selected CNOT's ops get produced differs (replayed
    /// from a clean speculation vs routed in place), and a clean replay is
    /// byte-identical by determinism over unchanged read cells.
    fn drive(
        &mut self,
        circuit: &Circuit,
        resume_cut: usize,
        checkpoint_every: usize,
        checkpoints: &mut Vec<EngineCheckpoint>,
        mut pool: Option<&mut SpecPool>,
    ) -> Result<(), CompileError> {
        let dag = circuit.dag();
        let mut tracker = dag.tracker();
        let total = circuit.len();
        // Pre-mark the resumed prefix complete. Ascending order is always
        // legal: every predecessor of a gate has a smaller id.
        for id in 0..resume_cut {
            tracker.complete(id);
        }
        let mut completed = vec![false; total];
        completed[..resume_cut].fill(true);
        // `contiguous` = length of the completed prefix; the completed set
        // is exactly {0..contiguous} iff `done == contiguous`.
        let mut contiguous = resume_cut;
        let mut done = resume_cut;
        let mut last_snap = resume_cut;
        // Stamp-based dirty set: cell i was written since the pending
        // speculations' snapshot iff `dirty[i] == epoch`. A new snapshot
        // bumps the epoch, clearing the set in O(1).
        let cols = self.grid().cols() as usize;
        let mut dirty = vec![0u32; (self.grid().rows() as usize) * cols];
        let mut epoch = 0u32;
        let mut pending: HashMap<usize, Option<SpecOutcome>> = HashMap::new();
        while !tracker.is_done() {
            if checkpoint_every > 0
                && done == contiguous
                && contiguous >= last_snap + checkpoint_every
            {
                checkpoints.push(self.checkpoint(contiguous));
                last_snap = contiguous;
            }
            if let Some(pool) = pool.as_deref_mut() {
                if pending.is_empty() {
                    // Refill: speculate the ready CNOTs most likely to be
                    // selected next, all against one fresh snapshot.
                    let mut cands: Vec<(Ticks, usize, u32, u32)> = tracker
                        .ready()
                        .iter()
                        .filter_map(|&id| match dag.node(id).gate {
                            Gate::Cnot { control, target } => {
                                let ready = self.qubit_ready[control as usize]
                                    .max(self.qubit_ready[target as usize]);
                                Some((ready, id, control, target))
                            }
                            _ => None,
                        })
                        .collect();
                    if cands.len() >= 2 {
                        cands.sort_unstable();
                        cands.truncate(pool.workers * 2);
                        let ckpt = Arc::new(self.spec_snapshot());
                        for &(_, id, c, t) in &cands {
                            pool.job_tx
                                .send(SpecJob {
                                    gate_id: id,
                                    control: c,
                                    target: t,
                                    ckpt: Arc::clone(&ckpt),
                                })
                                .expect("speculation workers outlive the drive loop");
                        }
                        for _ in 0..cands.len() {
                            let r = pool
                                .res_rx
                                .recv()
                                .expect("every speculation job yields a result");
                            pending.insert(r.gate_id, r.outcome);
                        }
                        epoch = epoch.wrapping_add(1);
                        if epoch == 0 {
                            dirty.fill(0);
                            epoch = 1;
                        }
                    }
                }
            }
            let &gate_id = tracker
                .ready()
                .iter()
                .min_by_key(|&&id| {
                    let ready = dag
                        .node(id)
                        .gate
                        .qubits()
                        .map(|q| self.qubit_ready[q as usize])
                        .fold(Ticks::ZERO, Ticks::max);
                    (ready, id)
                })
                .expect("tracker not done implies non-empty ready set");
            self.current_gate = gate_id;
            let ops_before = self.ops.len();
            let speculated = pending.remove(&gate_id);
            let was_pending = speculated.is_some();
            let clean = speculated
                .flatten()
                .filter(|o| o.reads.iter().all(|&i| dirty[i as usize] != epoch));
            match clean {
                Some(outcome) => {
                    self.spec_adopted += 1;
                    self.commit_speculation(outcome);
                }
                None => {
                    if was_pending {
                        self.spec_rejected += 1;
                    }
                    self.schedule_gate(&dag.node(gate_id).gate)?;
                }
            }
            if !pending.is_empty() {
                // Everything this gate wrote invalidates overlapping
                // speculations still in flight.
                for i in ops_before..self.ops.len() {
                    for c in self.ops[i].op.cells() {
                        dirty[c.row as usize * cols + c.col as usize] = epoch;
                    }
                }
            }
            tracker.complete(gate_id);
            completed[gate_id] = true;
            done += 1;
            while contiguous < total && completed[contiguous] {
                contiguous += 1;
            }
        }
        Ok(())
    }

    /// A checkpoint-shaped snapshot for speculation (no causal-cut claim,
    /// no prefix ops: speculative engines start with an empty op list and
    /// only their recorded emissions matter).
    fn spec_snapshot(&self) -> EngineCheckpoint {
        let mut ckpt = self.checkpoint(0);
        ckpt.ops_len = 0;
        ckpt
    }

    /// Replays a clean speculation's recorded emissions. Moves go through
    /// [`Engine::raw_move`] so occupancy, the flat mirror, the router's
    /// region digests, and positions all advance exactly as a serial
    /// execution would have advanced them.
    fn commit_speculation(&mut self, outcome: SpecOutcome) {
        for rec in outcome.emits {
            match rec.op {
                SurgeryOp::Move { from, to } => self.raw_move(from, to),
                op => {
                    self.emit(op, rec.patches, rec.factory, rec.extra_dep);
                }
            }
        }
    }

    /// The emitted operations, in issue order.
    pub fn into_ops(self) -> (Vec<RoutedOp>, u64) {
        (self.ops, self.n_magic_states)
    }

    /// [`Engine::into_ops`] that also detaches the router's warm parts for
    /// the next differential recompile.
    pub fn into_ops_and_parts(self) -> (Vec<RoutedOp>, u64, RouterParts) {
        (self.ops, self.n_magic_states, self.router.into_parts())
    }

    /// The incremental router's activity counters so far.
    pub fn route_counters(&self) -> RouteCounters {
        self.router.counters()
    }

    fn grid(&self) -> &Grid {
        self.layout.grid()
    }

    /// Records `c` in the speculation read footprint (no-op when serial).
    #[inline]
    fn probe_cell(&self, c: Coord) {
        if let Some(p) = &self.probes {
            p.borrow_mut().record(c);
        }
    }

    /// Occupancy-map membership, recorded as a read probe. Every direct
    /// occupancy read on a speculatable code path must go through here (or
    /// through a probing [`OccView`]) so the footprint stays complete.
    #[inline]
    fn occ_has(&self, c: Coord) -> bool {
        self.probe_cell(c);
        self.occ.contains_key(&c)
    }

    /// Digest pinning the full routing-relevant state of a query whose
    /// view blocks `extra` on top of the live occupancy.
    fn query_digest(&self, extra: &HashSet<Coord>) -> u128 {
        self.router.state_digest() ^ blocked_set_digest(extra)
    }

    fn fail(&self, reason: impl Into<String>) -> CompileError {
        CompileError::RoutingFailed {
            gate_index: self.current_gate,
            reason: reason.into(),
        }
    }

    /// Emits an op: assigns a provisional start (per-cell timeline + qubit
    /// readiness + `extra_dep`), reserves resources, updates qubit clocks.
    fn emit(
        &mut self,
        op: SurgeryOp,
        patches: Vec<u32>,
        factory: Option<usize>,
        extra_dep: Ticks,
    ) -> Ticks {
        debug_assert!(op.validate().is_ok(), "emitting invalid op {op}");
        let cells = op.cells();
        if let Some(p) = &self.probes {
            // Reserving cells reads their timelines; a write to any of
            // them between snapshot and commit shifts this op's start.
            let mut p = p.borrow_mut();
            for &c in &cells {
                p.record(c);
            }
        }
        if let Some(log) = self.emit_log.as_mut() {
            log.push(EmitRecord {
                op: op.clone(),
                patches: patches.clone(),
                factory,
                extra_dep,
            });
        }
        let dep = patches
            .iter()
            .map(|&q| self.qubit_ready[q as usize])
            .fold(extra_dep, Ticks::max);
        let start = self.timeline.earliest_start(cells.iter().copied(), dep);
        let duration = op.duration(&self.options.target.timing);
        self.timeline
            .reserve(cells.iter().copied(), start, duration);
        let end = start + duration;
        for &q in &patches {
            self.qubit_ready[q as usize] = end;
        }
        self.ops.push(RoutedOp {
            op,
            patches,
            factory,
            gate: Some(self.current_gate),
        });
        end
    }

    /// Moves the qubit occupying `from` one step to `to` (must be free).
    fn raw_move(&mut self, from: Coord, to: Coord) {
        let q = *self
            .occ
            .get(&from)
            .unwrap_or_else(|| panic!("raw move from empty cell {from}"));
        debug_assert!(!self.occ.contains_key(&to), "raw move into occupied {to}");
        self.emit(SurgeryOp::Move { from, to }, vec![q], None, Ticks::ZERO);
        self.occ.remove(&from);
        self.occ.insert(to, q);
        let cols = self.layout.grid().cols() as usize;
        self.occ_grid[from.row as usize * cols + from.col as usize] = false;
        self.occ_grid[to.row as usize * cols + to.col as usize] = true;
        self.router.release(from);
        self.router.claim(to);
        self.pos[q as usize] = to;
    }

    /// Frees `cell` (if occupied) by pushing its occupant — and any chain of
    /// occupants — toward the nearest free cell, never entering `avoid`
    /// cells or protected operand cells.
    fn ensure_free(&mut self, cell: Coord, avoid: &HashSet<Coord>) -> Result<(), CompileError> {
        if !self.occ_has(cell) {
            return Ok(());
        }
        let mut strict: HashSet<Coord> = avoid.clone();
        strict.extend(self.protected.iter().copied());
        strict.extend(self.no_park.iter().copied());
        strict.remove(&cell);
        // Preferred: keep the planned ancilla (no_park) clear. If that boxes
        // the occupant in, allow parking there — the ancilla gets its own
        // clearing pass before the merge, so this is recoverable.
        let mut relaxed: HashSet<Coord> = avoid.clone();
        relaxed.extend(self.protected.iter().copied());
        relaxed.remove(&cell);
        let plan = {
            let grid = self.layout.grid();
            let none = HashSet::new();
            let view = OccView {
                grid,
                occ_grid: &self.occ_grid,
                extra_blocked: &none,
                probes: self.probes.as_ref(),
            };
            self.router
                .clear_cell_plan(grid, &view, cell, &strict)
                .or_else(|| self.router.clear_cell_plan(grid, &view, cell, &relaxed))
        };
        match plan {
            Some(moves) => {
                for (f, t) in moves {
                    self.raw_move(f, t);
                }
                Ok(())
            }
            None => Err(self.fail(format!("cannot clear cell {cell}"))),
        }
    }

    /// Walks qubit `q` to `dest` along a planned path, displacing blockers
    /// on the way. The path is committed to (no per-step re-planning, which
    /// can oscillate under displacement churn); re-planning happens only
    /// when a blocker cannot be displaced, with that cell banned. Protected
    /// cells are never entered.
    fn relocate(&mut self, q: u32, dest: Coord) -> Result<(), CompileError> {
        let budget = (self.grid().num_cells() as usize) * 8;
        let mut steps = 0usize;
        let mut banned: HashSet<Coord> = HashSet::new();
        'replan: while self.pos[q as usize] != dest {
            let from = self.pos[q as usize];
            let path = {
                let mut blocked = self.protected.clone();
                blocked.extend(banned.iter().copied());
                let grid = self.layout.grid();
                let digest = self.query_digest(&blocked);
                let view = OccView {
                    grid,
                    occ_grid: &self.occ_grid,
                    extra_blocked: &blocked,
                    probes: self.probes.as_ref(),
                };
                self.router.find_path(grid, &view, digest, from, dest)
            }
            .ok_or_else(|| self.fail(format!("no path from {from} to {dest}")))?;
            for i in 1..path.cells.len() {
                steps += 1;
                if steps > budget {
                    return Err(self.fail(format!("relocation of q{q} to {dest} did not converge")));
                }
                let here = self.pos[q as usize];
                let next = path.cells[i];
                if self.occ_has(next) {
                    let mut avoid = HashSet::new();
                    avoid.insert(here);
                    if self.ensure_free(next, &avoid).is_err() {
                        if next == dest {
                            // The destination itself cannot be cleared:
                            // this relocation target is infeasible.
                            return Err(
                                self.fail(format!("destination {dest} cannot be cleared for q{q}"))
                            );
                        }
                        // The occupant of `next` is boxed in: ban the cell
                        // and route around it.
                        banned.insert(next);
                        continue 'replan;
                    }
                }
                self.raw_move(here, next);
            }
        }
        Ok(())
    }

    /// Finds (clearing if necessary) a free ancilla adjacent to `cell`.
    fn acquire_ancilla(&mut self, cell: Coord) -> Result<Coord, CompileError> {
        let plan = {
            let grid = self.layout.grid();
            let view = OccView {
                grid,
                occ_grid: &self.occ_grid,
                extra_blocked: &self.protected,
                probes: self.probes.as_ref(),
            };
            self.router.space_search(grid, &view, cell)
        };
        match plan {
            Some(p) => {
                for (f, t) in p.clearing_moves {
                    self.raw_move(f, t);
                }
                Ok(p.ancilla)
            }
            None => Err(self.fail(format!("no ancilla available near {cell}"))),
        }
    }

    fn schedule_gate(&mut self, gate: &Gate) -> Result<(), CompileError> {
        match *gate {
            Gate::X(q) | Gate::Y(q) | Gate::Z(q) => {
                let cell = self.pos[q as usize];
                self.emit(SurgeryOp::PauliFrame { cell }, vec![q], None, Ticks::ZERO);
                Ok(())
            }
            Gate::H(q) => self.exec_single(q, SingleQubitKind::H),
            Gate::S(q) => self.exec_single(q, SingleQubitKind::S),
            Gate::Sdg(q) => self.exec_single(q, SingleQubitKind::Sdg),
            Gate::Sx(q) => self.exec_single(q, SingleQubitKind::Sx),
            Gate::Sxdg(q) => self.exec_single(q, SingleQubitKind::Sxdg),
            Gate::Rz(q, a) if a.is_clifford() => {
                // Rz(kπ/2): k≡0,2 are frame updates; k≡1,3 are S/S†.
                let halves = (a.turns_of_pi() * 2.0).round() as i64;
                match halves.rem_euclid(4) {
                    0 | 2 => {
                        let cell = self.pos[q as usize];
                        self.emit(SurgeryOp::PauliFrame { cell }, vec![q], None, Ticks::ZERO);
                        Ok(())
                    }
                    1 => self.exec_single(q, SingleQubitKind::S),
                    _ => self.exec_single(q, SingleQubitKind::Sdg),
                }
            }
            Gate::T(q) | Gate::Tdg(q) => {
                let n = self.options.t_state_policy.states_per_t.max(1);
                self.exec_magic(q, n)
            }
            Gate::Rz(q, _) => {
                let n = self.options.t_state_policy.states_per_rz.max(1);
                self.exec_magic(q, n)
            }
            Gate::Cnot { control, target } => self.exec_cnot(control, target),
            Gate::Measure(q) => {
                let cell = self.pos[q as usize];
                self.emit(SurgeryOp::MeasureZ { cell }, vec![q], None, Ticks::ZERO);
                Ok(())
            }
            Gate::Cz(_, _) | Gate::Swap(_, _) => {
                Err(self
                    .fail("CZ/SWAP must be lowered before routing (Compiler::compile does this)"))
            }
        }
    }

    fn exec_single(&mut self, q: u32, kind: SingleQubitKind) -> Result<(), CompileError> {
        self.protected = [self.pos[q as usize]].into_iter().collect();
        let cell = self.pos[q as usize];
        let ancilla = self.acquire_ancilla(cell)?;
        self.emit(
            SurgeryOp::Single {
                kind,
                cell,
                ancilla,
            },
            vec![q],
            None,
            Ticks::ZERO,
        );
        self.protected.clear();
        self.no_park.clear();
        Ok(())
    }

    fn exec_magic(&mut self, q: u32, states: u32) -> Result<(), CompileError> {
        for _ in 0..states {
            self.protected = [self.pos[q as usize]].into_iter().collect();
            let tq = self.pos[q as usize];
            // Delivery cell: vertical neighbour (M_ZZ constraint), preferring
            // a free one, then the cheaper to clear.
            let candidates: Vec<Coord> = [
                Coord::new(tq.row - 1, tq.col),
                Coord::new(tq.row + 1, tq.col),
            ]
            .into_iter()
            .filter(|&c| self.grid().in_bounds(c))
            .collect();
            if candidates.is_empty() {
                return Err(self.fail(format!("no vertical neighbour for magic at {tq}")));
            }
            let dest = candidates
                .iter()
                .copied()
                .min_by_key(|&c| {
                    let occupied = self.occ_has(c);
                    let bus_bias = match self.grid().kind(c) {
                        CellKind::Bus => 0,
                        CellKind::Data => 1,
                    };
                    (occupied as u32, bus_bias, c.row, c.col)
                })
                .expect("candidates non-empty");
            let avoid: HashSet<Coord> = [tq].into_iter().collect();
            self.ensure_free(dest, &avoid)?;

            let grant = self.bank.acquire(self.qubit_ready[q as usize]);
            let path = {
                let grid = self.layout.grid();
                let digest = self.query_digest(&self.protected);
                let view = OccView {
                    grid,
                    occ_grid: &self.occ_grid,
                    extra_blocked: &self.protected,
                    probes: self.probes.as_ref(),
                };
                self.router.find_path(grid, &view, digest, grant.port, dest)
            }
            .ok_or_else(|| self.fail(format!("no delivery path {} -> {dest}", grant.port)))?;
            self.n_magic_states += 1;
            if path.cells.len() >= 2 {
                self.emit(
                    SurgeryOp::DeliverMagic { path: path.cells },
                    vec![],
                    Some(grant.factory),
                    grant.available,
                );
                self.emit(
                    SurgeryOp::ConsumeMagic {
                        target: tq,
                        magic: dest,
                    },
                    vec![q],
                    None,
                    Ticks::ZERO,
                );
            } else {
                // The factory port *is* the delivery cell: the state appears
                // in place and the consumption carries the grant itself.
                self.emit(
                    SurgeryOp::ConsumeMagic {
                        target: tq,
                        magic: dest,
                    },
                    vec![q],
                    Some(grant.factory),
                    grant.available,
                );
            }
            self.protected.clear();
            self.no_park.clear();
        }
        Ok(())
    }

    /// Whether the occupant of `ancilla` (if any) can escape once the
    /// operands sit at `cp`/`tp`: it needs at least one in-bounds neighbour
    /// that is not an operand cell. Prevents committing to boxed-corner
    /// configurations whose ancilla can never be cleared.
    fn ancilla_clearable(&self, ancilla: Coord, cp: Coord, tp: Coord) -> bool {
        if !self.occ_has(ancilla) {
            return true;
        }
        ancilla
            .neighbours()
            .into_iter()
            .any(|n| self.grid().in_bounds(n) && n != cp && n != tp)
    }

    fn exec_cnot(&mut self, control: u32, target: u32) -> Result<(), CompileError> {
        let (c_pos, t_pos) = (self.pos[control as usize], self.pos[target as usize]);
        self.protected = [c_pos, t_pos].into_iter().collect();

        // Preferred: the gate-dependent move heuristic over free cells.
        let cfg = {
            let grid = self.layout.grid();
            let digest = self.router.state_digest();
            let none = HashSet::new();
            let view = OccView {
                grid,
                occ_grid: &self.occ_grid,
                extra_blocked: &none,
                probes: self.probes.as_ref(),
            };
            best_cnot_config_with(
                &mut self.router,
                grid,
                &view,
                digest,
                c_pos,
                t_pos,
                self.options.lookahead,
            )
        }
        .filter(|cfg| self.ancilla_clearable(cfg.ancilla, cfg.control, cfg.target));

        let (mover, dest) = match cfg {
            Some(cfg) => match cfg.mover {
                Mover::None => (None, None),
                Mover::Control => (Some(control), Some(cfg.control)),
                Mover::Target => (Some(target), Some(cfg.target)),
            },
            None => {
                // Packed block (or the heuristic's pick was a boxed corner):
                // allow occupied destinations, scored by distance plus a
                // clearing estimate.
                let mut best: Option<(u32, Coord, u32)> = None;
                for (mq, anchor, from) in [(control, t_pos, c_pos), (target, c_pos, t_pos)] {
                    for d in anchor.diagonals() {
                        if !self.grid().in_bounds(d) || d == from || d == anchor {
                            continue;
                        }
                        let (cp, tp) = if mq == control {
                            (d, t_pos)
                        } else {
                            (c_pos, d)
                        };
                        let anc = match cnot_ancilla(cp, tp) {
                            Some(a) => a,
                            None => continue,
                        };
                        if !self.grid().in_bounds(anc) || anc == cp || anc == tp {
                            continue;
                        }
                        if !self.ancilla_clearable(anc, cp, tp) {
                            continue;
                        }
                        let est = from.manhattan(d)
                            + 2 * self.occ_has(d) as u32
                            + 2 * self.occ_has(anc) as u32;
                        if best.is_none_or(|(_, _, b)| est < b) {
                            best = Some((mq, d, est));
                        }
                    }
                }
                let (mq, d, _) =
                    best.ok_or_else(|| self.fail("no CNOT configuration reachable"))?;
                (Some(mq), Some(d))
            }
        };

        if let (Some(mq), Some(d)) = (mover, dest) {
            // Protect the anchor operand and the *planned* ancilla cell so
            // displacement chains never park a qubit where the merge must
            // happen; the mover itself walks freely.
            self.protected.remove(&self.pos[mq as usize]);
            let planned = if mq == control {
                cnot_ancilla(d, t_pos)
            } else {
                cnot_ancilla(c_pos, d)
            };
            if let Some(a) = planned {
                if !self.occ_has(a) {
                    // Only freeze it when free — a pre-existing occupant
                    // still needs to escape through normal clearing. The
                    // mover may pass through; nothing may park there.
                    self.no_park.insert(a);
                }
            }
            let avoid: HashSet<Coord> = HashSet::new();
            self.ensure_free(d, &avoid)?;
            self.relocate(mq, d)?;
            self.protected.insert(d);
        }

        let (cp, tp) = (self.pos[control as usize], self.pos[target as usize]);
        let ancilla = cnot_ancilla(cp, tp)
            .ok_or_else(|| self.fail("operands not diagonal after relocation"))?;
        self.protected = [cp, tp].into_iter().collect();
        let avoid: HashSet<Coord> = HashSet::new();
        self.ensure_free(ancilla, &avoid)?;
        self.emit(
            SurgeryOp::Cnot {
                control: cp,
                target: tp,
                ancilla,
            },
            vec![control, target],
            None,
            Ticks::ZERO,
        );
        self.protected.clear();
        self.no_park.clear();
        Ok(())
    }
}

/// Routes one ready CNOT against a snapshot, recording its read footprint
/// and emissions. Runs on a speculation worker thread; `parts` is the
/// worker's warm router state and is always handed back for the next job.
fn speculate_cnot(
    layout: &Layout,
    options: &CompilerOptions,
    mode: RouterMode,
    parts: RouterParts,
    job: &SpecJob,
) -> (SpecResult, RouterParts) {
    let mut eng = Engine::resume(layout, options, &job.ckpt, Vec::new(), mode, parts);
    eng.current_gate = job.gate_id;
    eng.probes = Some(RefCell::new(ProbeSet::new(layout.grid())));
    eng.emit_log = Some(Vec::new());
    // The operand cells themselves are reads: if either operand qubit is
    // displaced after the snapshot, its old cell shows up as a write and
    // this speculation must not commit.
    eng.probe_cell(eng.pos[job.control as usize]);
    eng.probe_cell(eng.pos[job.target as usize]);
    let routed = eng.exec_cnot(job.control, job.target).is_ok();
    let outcome = routed.then(|| SpecOutcome {
        emits: eng.emit_log.take().unwrap_or_default(),
        reads: eng
            .probes
            .take()
            .map(|p| p.into_inner().list)
            .unwrap_or_default(),
    });
    let parts = eng.router.into_parts();
    (
        SpecResult {
            gate_id: job.gate_id,
            outcome,
        },
        parts,
    )
}

/// A deep snapshot of the routing engine's mutable state at a *causal
/// cut* — an instant where the completed-gate set is exactly the prefix
/// `0..cut` of the lowered gate sequence. Captured by
/// [`Engine::run_from`], restored by [`Engine::resume`].
///
/// The emitted ops themselves are not stored: the first `ops_len` ops of
/// the run that captured the checkpoint are identical in any resumed run
/// (the engine is deterministic), so the caller re-supplies them.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    /// Gates `0..cut` are complete, nothing else has run.
    pub cut: usize,
    /// Ops emitted so far when the snapshot was taken.
    pub ops_len: usize,
    bank: FactoryBank,
    pos: Vec<Coord>,
    occ: HashMap<Coord, u32>,
    occ_grid: Vec<bool>,
    timeline: ResourceTimeline,
    qubit_ready: Vec<Ticks>,
    n_magic_states: u64,
}

/// Everything the map stage produces for a lowered circuit: the layout,
/// the initial placement, the routed operation sequence, and the routing
/// engine's activity counters.
#[derive(Debug, Clone)]
pub struct RoutedProgram {
    /// The layout the circuit was routed on.
    pub layout: Layout,
    /// The initial qubit placement.
    pub mapping: InitialMapping,
    /// Logical patches consumed by the factory bank.
    pub factory_patches: u32,
    /// The routed operations, in issue order.
    pub ops: Vec<RoutedOp>,
    /// Magic states the routed program consumes.
    pub n_magic_states: u64,
    /// The incremental router's counters for this compile.
    pub route: RouteCounters,
    /// CNOT speculations adopted by the parallel routing pool (always 0
    /// when the worker count is ≤ 1).
    pub spec_adopted: u64,
    /// CNOT speculations rejected (conflicting or failed) and re-routed
    /// serially.
    pub spec_rejected: u64,
}

/// Runs the map stage — target validation, layout construction, initial
/// placement, factory docking, and greedy routing — over an already
/// *lowered* circuit, with an explicit [`RouterMode`].
///
/// [`RouterMode::Incremental`] is what the pipeline uses;
/// [`RouterMode::Reference`] re-routes through the seed (allocation-heavy)
/// implementations and is the baseline of `tests/route_differential.rs`
/// and the `bench_session` speedup measurement. Both modes produce
/// byte-identical routed programs.
///
/// # Errors
///
/// [`CompileError::Target`], [`CompileError::Layout`], or
/// [`CompileError::RoutingFailed`] — exactly as the map stage reports
/// them (untagged; [`CompileSession`](crate::CompileSession) adds the
/// stage tag).
pub fn route_circuit(
    lowered: &Circuit,
    options: &CompilerOptions,
    mode: RouterMode,
) -> Result<RoutedProgram, CompileError> {
    route_circuit_with_workers(lowered, options, mode, route_workers())
}

/// [`route_circuit`] with an explicit speculative-routing worker count
/// instead of the [`route_workers`] process default. `workers ≤ 1` routes
/// serially; any value produces the identical routed program — the knob
/// only trades threads for map-stage wall-clock.
pub fn route_circuit_with_workers(
    lowered: &Circuit,
    options: &CompilerOptions,
    mode: RouterMode,
    workers: usize,
) -> Result<RoutedProgram, CompileError> {
    let target = &options.target;
    target.validate(lowered.num_qubits(), lowered.t_count() as u64)?;
    let layout = target.build_layout(lowered.num_qubits())?;
    let mapping = InitialMapping::for_circuit(&layout, lowered, options.mapping);
    let bank = target.factory_bank(&layout);
    let factory_patches = bank.total_tiles();
    let mut engine = Engine::with_mode(&layout, &mapping, bank, options, mode);
    engine.set_route_workers(workers);
    engine.run(lowered)?;
    let route = engine.route_counters();
    let (spec_adopted, spec_rejected) = engine.speculation_stats();
    let (ops, n_magic_states) = engine.into_ops();
    Ok(RoutedProgram {
        layout,
        mapping,
        factory_patches,
        ops,
        n_magic_states,
        route,
        spec_adopted,
        spec_rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingStrategy;
    use ftqc_circuit::Circuit;

    fn run_engine(circuit: &Circuit, r: u32, factories: u32) -> (Vec<RoutedOp>, u64) {
        let options = CompilerOptions::default()
            .routing_paths(r)
            .factories(factories);
        let layout = Layout::with_routing_paths(circuit.num_qubits(), r);
        let mapping = InitialMapping::new(&layout, circuit.num_qubits(), MappingStrategy::Snake);
        let bank = FactoryBank::dock(&layout, factories, options.target.timing.magic_production);
        let mut engine = Engine::new(&layout, &mapping, bank, &options);
        engine.run(circuit).expect("engine routes the circuit");
        engine.into_ops()
    }

    #[test]
    fn hadamard_emits_single_with_ancilla() {
        let mut c = Circuit::new(4);
        c.h(0);
        let (ops, magic) = run_engine(&c, 4, 1);
        assert_eq!(magic, 0);
        assert!(ops.iter().any(|o| matches!(
            o.op,
            SurgeryOp::Single {
                kind: SingleQubitKind::H,
                ..
            }
        )));
        for o in &ops {
            o.op.validate().expect("all emitted ops valid");
        }
    }

    #[test]
    fn pauli_gates_are_frame_updates() {
        let mut c = Circuit::new(4);
        c.x(0).y(1).z(2);
        let (ops, _) = run_engine(&c, 4, 1);
        assert_eq!(ops.len(), 3);
        assert!(ops
            .iter()
            .all(|o| matches!(o.op, SurgeryOp::PauliFrame { .. })));
    }

    #[test]
    fn t_gate_delivers_and_consumes() {
        let mut c = Circuit::new(4);
        c.t(0);
        let (ops, magic) = run_engine(&c, 4, 1);
        assert_eq!(magic, 1);
        let deliver = ops
            .iter()
            .find(|o| matches!(o.op, SurgeryOp::DeliverMagic { .. }))
            .expect("delivery emitted");
        assert_eq!(deliver.factory, Some(0));
        let consume = ops
            .iter()
            .find(|o| matches!(o.op, SurgeryOp::ConsumeMagic { .. }))
            .expect("consumption emitted");
        assert_eq!(consume.patches, vec![0]);
        // Delivery ends at the consume's magic cell.
        if let (SurgeryOp::DeliverMagic { path }, SurgeryOp::ConsumeMagic { magic, .. }) =
            (&deliver.op, &consume.op)
        {
            assert_eq!(path.last(), Some(magic));
        }
    }

    #[test]
    fn clifford_rz_needs_no_magic() {
        let mut c = Circuit::new(4);
        c.rz_pi(0, 0.5).rz_pi(1, 1.0).rz_pi(2, -0.5).rz_pi(3, 2.0);
        let (ops, magic) = run_engine(&c, 4, 1);
        assert_eq!(magic, 0);
        // S, frame, Sdg, frame.
        let singles = ops
            .iter()
            .filter(|o| matches!(o.op, SurgeryOp::Single { .. }))
            .count();
        let frames = ops
            .iter()
            .filter(|o| matches!(o.op, SurgeryOp::PauliFrame { .. }))
            .count();
        assert_eq!(singles, 2);
        assert_eq!(frames, 2);
    }

    #[test]
    fn synthesis_policy_multiplies_states() {
        let mut c = Circuit::new(4);
        c.rz_pi(0, 0.1);
        let options = CompilerOptions::default()
            .routing_paths(4)
            .t_state_policy(crate::options::TStatePolicy::synthesis(3));
        let layout = Layout::with_routing_paths(4, 4);
        let mapping = InitialMapping::new(&layout, 4, MappingStrategy::Snake);
        let bank = FactoryBank::dock(&layout, 1, options.target.timing.magic_production);
        let mut engine = Engine::new(&layout, &mapping, bank, &options);
        engine.run(&c).unwrap();
        let (_, magic) = engine.into_ops();
        assert_eq!(magic, 3);
    }

    #[test]
    fn adjacent_cnot_requires_one_move() {
        // Snake mapping on 2x2: qubits 0,1 horizontally adjacent.
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        let (ops, _) = run_engine(&c, 6, 1);
        let moves = ops.iter().filter(|o| o.is_movement()).count();
        assert!(moves >= 1, "horizontal pair needs at least one move");
        assert!(ops.iter().any(|o| matches!(o.op, SurgeryOp::Cnot { .. })));
        for o in &ops {
            o.op.validate().expect("valid ops");
        }
    }

    #[test]
    fn cnot_in_packed_block_displaces() {
        // 3x3 fully packed, r=2 (top+left bus only): interior CNOTs force
        // displacement chains.
        let mut c = Circuit::new(9);
        c.cnot(4, 7).cnot(1, 4).cnot(3, 4);
        let (ops, _) = run_engine(&c, 2, 1);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o.op, SurgeryOp::Cnot { .. }))
                .count(),
            3
        );
        for o in &ops {
            o.op.validate().expect("valid ops");
        }
    }

    #[test]
    fn measure_emits_measure_op() {
        let mut c = Circuit::new(4);
        c.h(0).measure(0);
        let (ops, _) = run_engine(&c, 4, 1);
        assert!(ops
            .iter()
            .any(|o| matches!(o.op, SurgeryOp::MeasureZ { .. })));
    }

    #[test]
    fn engine_positions_stay_consistent() {
        // A busy little program: every op must stay valid, implying the
        // internal position/occupancy maps never diverge.
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
        }
        for (a, b) in [(0u32, 1u32), (3, 4), (7, 8), (2, 5), (4, 7)] {
            c.cnot(a, b);
        }
        for q in [0u32, 4, 8] {
            c.t(q);
        }
        let (ops, magic) = run_engine(&c, 4, 2);
        assert_eq!(magic, 3);
        for o in &ops {
            o.op.validate()
                .unwrap_or_else(|e| panic!("invalid op {}: {e}", o.op));
        }
    }

    /// A wide layer structure: CNOTs on disjoint qubit pairs whose rows
    /// sit far apart, so concurrently-ready gates rarely touch the same
    /// cells and most speculations commit.
    fn wide_cnot_circuit(n: u32, layers: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for layer in 0..layers {
            let off = (layer % 2) as u32;
            let mut q = off;
            while q + 1 < n {
                c.cnot(q, q + 1);
                q += 2;
            }
        }
        c
    }

    #[test]
    fn parallel_routing_is_byte_identical_to_serial() {
        let circuit = wide_cnot_circuit(12, 4);
        let options = CompilerOptions::default().routing_paths(4);
        for mode in [RouterMode::Incremental, RouterMode::Reference] {
            let serial =
                route_circuit_with_workers(&circuit, &options, mode, 1).expect("serial maps");
            let parallel =
                route_circuit_with_workers(&circuit, &options, mode, 4).expect("parallel maps");
            assert_eq!(serial.ops, parallel.ops, "{mode:?}: ops diverge");
            assert_eq!(serial.n_magic_states, parallel.n_magic_states);
            assert_eq!(serial.factory_patches, parallel.factory_patches);
        }
    }

    #[test]
    fn wide_circuits_adopt_speculations() {
        let circuit = wide_cnot_circuit(16, 4);
        let options = CompilerOptions::default().routing_paths(4);
        let layout = Layout::with_routing_paths(16, 4);
        let mapping = InitialMapping::new(&layout, 16, MappingStrategy::Snake);
        let bank = FactoryBank::dock(&layout, 1, options.target.timing.magic_production);
        let mut engine = Engine::new(&layout, &mapping, bank, &options);
        engine.set_route_workers(4);
        engine.run(&circuit).expect("parallel engine routes");
        let (adopted, _) = engine.speculation_stats();
        assert!(adopted > 0, "no speculation committed on a wide circuit");
    }

    #[test]
    fn serial_engine_never_speculates() {
        let circuit = wide_cnot_circuit(9, 3);
        let options = CompilerOptions::default().routing_paths(4);
        let layout = Layout::with_routing_paths(9, 4);
        let mapping = InitialMapping::new(&layout, 9, MappingStrategy::Snake);
        let bank = FactoryBank::dock(&layout, 1, options.target.timing.magic_production);
        let mut engine = Engine::new(&layout, &mapping, bank, &options);
        engine.set_route_workers(1);
        engine.run(&circuit).expect("serial engine routes");
        assert_eq!(engine.speculation_stats(), (0, 0));
    }

    #[test]
    #[ignore]
    fn profile_speculation_costs() {
        use std::time::Instant;
        let circuit = wide_cnot_circuit(128, 12);
        let options = CompilerOptions::default();
        let layout = options.target.build_layout(128).expect("layout");
        let mapping = InitialMapping::for_circuit(&layout, &circuit, options.mapping);
        let bank = options.target.factory_bank(&layout);
        let mut engine =
            Engine::with_mode(&layout, &mapping, bank, &options, RouterMode::Incremental);
        engine.run(&circuit).expect("serial run");
        let n = 2000u32;

        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(engine.spec_snapshot());
        }
        println!("snapshot      : {:?}/iter", t.elapsed() / n);

        let ckpt = Arc::new(engine.spec_snapshot());
        let t = Instant::now();
        for _ in 0..n {
            let e = Engine::resume(
                &layout,
                &options,
                &ckpt,
                Vec::new(),
                RouterMode::Incremental,
                RouterParts::default(),
            );
            std::hint::black_box(&e);
        }
        println!("resume (cold) : {:?}/iter", t.elapsed() / n);

        let mut parts = RouterParts::default();
        let t = Instant::now();
        for _ in 0..n {
            let e = Engine::resume(
                &layout,
                &options,
                &ckpt,
                Vec::new(),
                RouterMode::Incremental,
                parts,
            );
            parts = e.router.into_parts();
        }
        println!("resume (warm) : {:?}/iter", t.elapsed() / n);

        let t = Instant::now();
        for _ in 0..n {
            let job = SpecJob {
                gate_id: 0,
                control: 40,
                target: 41,
                ckpt: Arc::clone(&ckpt),
            };
            let (r, p) = speculate_cnot(&layout, &options, RouterMode::Incremental, parts, &job);
            std::hint::black_box(&r);
            parts = p;
        }
        println!("speculate     : {:?}/iter", t.elapsed() / n);

        for workers in [1usize, 2, 4] {
            let t = Instant::now();
            let r =
                route_circuit_with_workers(&circuit, &options, RouterMode::Incremental, workers)
                    .expect("routes");
            println!(
                "route workers={workers}: {:?} (adopted {}, rejected {})",
                t.elapsed(),
                r.spec_adopted,
                r.spec_rejected
            );
        }
    }

    #[test]
    fn two_factories_split_deliveries() {
        let mut c = Circuit::new(16);
        for q in 0..8 {
            c.t(q);
        }
        let (ops, _) = run_engine(&c, 4, 2);
        let mut used: Vec<usize> = ops.iter().filter_map(|o| o.factory).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used, vec![0, 1], "both factories used");
    }
}
