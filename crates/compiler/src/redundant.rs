//! Redundant-move elimination (paper §V.D).
//!
//! Greedy routing makes locally optimal placement decisions, so a qubit is
//! often moved `A → B` and later straight back `B → A` with nothing
//! observing the intermediate position. Such pairs compose to the identity
//! (`U†_{ri→rj} U_{rj→ri} = I`) and are cancelled in the scheduling stage.
//!
//! The cancellation is conservative: a pair is removed only when no
//! operation between the two moves touches the moved qubit, cell `A`, or
//! cell `B` — guaranteeing the reduced sequence is resource- and
//! dependency-equivalent to the original for every other operation.

use crate::routed::RoutedOp;
use ftqc_arch::{Coord, SurgeryOp};

/// Cancels inverse move pairs in place; returns the number of *ops removed*
/// (twice the number of cancelled pairs).
///
/// Runs to a fixed point: cancelling one pair can expose another
/// (`A→B, B→C, C→B, B→A` collapses completely in two rounds).
pub fn eliminate_redundant_moves(ops: &mut Vec<RoutedOp>) -> usize {
    let before = ops.len();
    loop {
        let removed = eliminate_once(ops);
        if removed == 0 {
            break;
        }
    }
    before - ops.len()
}

fn eliminate_once(ops: &mut Vec<RoutedOp>) -> usize {
    let mut cancel = vec![false; ops.len()];
    let mut cancelled = 0usize;
    'outer: for i in 0..ops.len() {
        if cancel[i] {
            continue;
        }
        let (q, from, to) = match move_parts(&ops[i]) {
            Some(parts) => parts,
            None => continue,
        };
        // Find the next op that involves this qubit or either cell. Index
        // iteration is intentional: the cancel set is consulted per index.
        #[allow(clippy::needless_range_loop)]
        for j in i + 1..ops.len() {
            if cancel[j] {
                continue;
            }
            let touches = touches_cell(&ops[j].op, from, to) || ops[j].patches.contains(&q);
            if !touches {
                continue;
            }
            if let Some((q2, from2, to2)) = move_parts(&ops[j]) {
                if q2 == q && from2 == to && to2 == from {
                    cancel[i] = true;
                    cancel[j] = true;
                    cancelled += 2;
                    continue 'outer;
                }
            }
            // First observer is not the inverse move: pair not cancellable.
            continue 'outer;
        }
    }
    if cancelled == 0 {
        return 0;
    }
    let mut idx = 0;
    ops.retain(|_| {
        let keep = !cancel[idx];
        idx += 1;
        keep
    });
    cancelled
}

/// Whether `op` uses cell `a` or `b` — [`SurgeryOp::cells`] without the
/// per-call allocation (this predicate runs for every op between every
/// candidate move pair, squarely on the recompile hot path).
fn touches_cell(op: &SurgeryOp, a: Coord, b: Coord) -> bool {
    let hit = |c: Coord| c == a || c == b;
    match op {
        SurgeryOp::Move { from, to } => hit(*from) || hit(*to),
        SurgeryOp::DeliverMagic { path } => path.iter().any(|&c| hit(c)),
        SurgeryOp::MergeZz { a: x, b: y } | SurgeryOp::MergeXx { a: x, b: y } => hit(*x) || hit(*y),
        SurgeryOp::Cnot {
            control,
            target,
            ancilla,
        } => hit(*control) || hit(*target) || hit(*ancilla),
        SurgeryOp::Single { cell, ancilla, .. } => hit(*cell) || hit(*ancilla),
        SurgeryOp::ConsumeMagic { target, magic } => hit(*target) || hit(*magic),
        SurgeryOp::MeasureZ { cell } | SurgeryOp::PauliFrame { cell } => hit(*cell),
    }
}

fn move_parts(op: &RoutedOp) -> Option<(u32, ftqc_arch::Coord, ftqc_arch::Coord)> {
    match op.op {
        SurgeryOp::Move { from, to } => {
            let q = *op.patches.first()?;
            Some((q, from, to))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_arch::Coord;

    fn mv(q: u32, from: (i32, i32), to: (i32, i32)) -> RoutedOp {
        RoutedOp::movement(
            SurgeryOp::Move {
                from: Coord::new(from.0, from.1),
                to: Coord::new(to.0, to.1),
            },
            Some(q),
            0,
        )
    }

    fn measure(q: u32, cell: (i32, i32)) -> RoutedOp {
        RoutedOp::gate_op(
            SurgeryOp::MeasureZ {
                cell: Coord::new(cell.0, cell.1),
            },
            vec![q],
            0,
        )
    }

    #[test]
    fn cancels_immediate_inverse_pair() {
        let mut ops = vec![mv(0, (0, 0), (0, 1)), mv(0, (0, 1), (0, 0))];
        assert_eq!(eliminate_redundant_moves(&mut ops), 2);
        assert!(ops.is_empty());
    }

    #[test]
    fn cancels_pair_with_unrelated_ops_between() {
        let mut ops = vec![
            mv(0, (0, 0), (0, 1)),
            measure(1, (5, 5)), // far away, different qubit
            mv(0, (0, 1), (0, 0)),
        ];
        assert_eq!(eliminate_redundant_moves(&mut ops), 2);
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn keeps_pair_when_qubit_observed_between() {
        let mut ops = vec![
            mv(0, (0, 0), (0, 1)),
            measure(0, (0, 1)), // the moved qubit is used at B
            mv(0, (0, 1), (0, 0)),
        ];
        assert_eq!(eliminate_redundant_moves(&mut ops), 0);
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn keeps_pair_when_cell_reused_between() {
        let mut ops = vec![
            mv(0, (0, 0), (0, 1)),
            measure(1, (0, 0)), // another qubit measured in the vacated cell
            mv(0, (0, 1), (0, 0)),
        ];
        assert_eq!(eliminate_redundant_moves(&mut ops), 0);
    }

    #[test]
    fn keeps_non_inverse_moves() {
        let mut ops = vec![mv(0, (0, 0), (0, 1)), mv(0, (0, 1), (0, 2))];
        assert_eq!(eliminate_redundant_moves(&mut ops), 0);
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn different_qubits_do_not_cancel() {
        // Swap-like dance of two qubits: not an identity for either.
        let mut ops = vec![mv(0, (0, 0), (0, 1)), mv(1, (0, 1), (0, 0))];
        assert_eq!(eliminate_redundant_moves(&mut ops), 0);
    }

    #[test]
    fn fixed_point_collapses_nested_pairs() {
        let mut ops = vec![
            mv(0, (0, 0), (0, 1)),
            mv(0, (0, 1), (0, 2)),
            mv(0, (0, 2), (0, 1)),
            mv(0, (0, 1), (0, 0)),
        ];
        assert_eq!(eliminate_redundant_moves(&mut ops), 4);
        assert!(ops.is_empty());
    }

    #[test]
    fn delivery_between_pair_blocks_cancellation() {
        let deliver = RoutedOp {
            op: SurgeryOp::DeliverMagic {
                path: vec![Coord::new(0, 1), Coord::new(1, 1)],
            },
            patches: vec![],
            factory: Some(0),
            gate: None,
        };
        let mut ops = vec![mv(0, (0, 0), (0, 1)), deliver, mv(0, (0, 1), (0, 0))];
        assert_eq!(eliminate_redundant_moves(&mut ops), 0);
    }
}
