//! JSON codec for [`CompilerOptions`] and [`Metrics`] — the concrete
//! instantiation of `ftqc-service`'s generic wire format.
//!
//! These impls make the compiler's types usable as the `O` / `M`
//! parameters of `ftqc_service::BatchService` and as payloads of the
//! file-backed compile-cache tier. Encoding choices:
//!
//! * Durations travel as **raw ticks** (`u64`, 1 tick = 0.5 d): exact, and
//!   canonical for fingerprinting.
//! * Enum knobs travel as lowercase strings (`"snake"`, `"spread"`, …),
//!   matching the CLI's flag values.
//! * `CompilerOptions::from_json` treats every missing field as its
//!   default, so a jobs.jsonl line only names the knobs it changes —
//!   `{"routing_paths": 6, "factories": 2}` is a complete options object.

use crate::metrics::Metrics;
use crate::options::{CompilerOptions, TStatePolicy};
use crate::MappingStrategy;
use ftqc_arch::{PortPlacement, Ticks, TimingModel};
use ftqc_service::json::{self, FromJson, JsonError, ToJson, Value};
use ftqc_service::CacheStats;

fn num(v: u64) -> Value {
    Value::Num(v as f64)
}

fn ticks_field(value: &Value, key: &str, default: Ticks) -> Result<Ticks, JsonError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(Ticks)
            .ok_or_else(|| JsonError::schema(format!("field {key:?} must be raw ticks"))),
    }
}

fn u32_field(value: &Value, key: &str, default: u32) -> Result<u32, JsonError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| JsonError::schema(format!("field {key:?} must be a u32"))),
    }
}

fn bool_field(value: &Value, key: &str, default: bool) -> Result<bool, JsonError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| JsonError::schema(format!("field {key:?} must be a boolean"))),
    }
}

/// Canonical JSON rendering of a timing model — shared by the options
/// codec and the session's schedule-stage fingerprint.
pub(crate) fn timing_to_json(t: &TimingModel) -> Value {
    Value::Obj(vec![
        ("move_op".into(), num(t.move_op.raw())),
        ("merge".into(), num(t.merge.raw())),
        ("cnot".into(), num(t.cnot.raw())),
        ("hadamard".into(), num(t.hadamard.raw())),
        ("phase".into(), num(t.phase.raw())),
        ("t_consume".into(), num(t.t_consume.raw())),
        ("measure".into(), num(t.measure.raw())),
        ("magic_production".into(), num(t.magic_production.raw())),
        ("ppr_compact".into(), num(t.ppr_compact.raw())),
        ("ppr_fast".into(), num(t.ppr_fast.raw())),
        ("unit".into(), num(t.unit.raw())),
    ])
}

fn timing_from_json(t: &Value, defaults: &TimingModel) -> Result<TimingModel, JsonError> {
    Ok(TimingModel {
        move_op: ticks_field(t, "move_op", defaults.move_op)?,
        merge: ticks_field(t, "merge", defaults.merge)?,
        cnot: ticks_field(t, "cnot", defaults.cnot)?,
        hadamard: ticks_field(t, "hadamard", defaults.hadamard)?,
        phase: ticks_field(t, "phase", defaults.phase)?,
        t_consume: ticks_field(t, "t_consume", defaults.t_consume)?,
        measure: ticks_field(t, "measure", defaults.measure)?,
        magic_production: ticks_field(t, "magic_production", defaults.magic_production)?,
        ppr_compact: ticks_field(t, "ppr_compact", defaults.ppr_compact)?,
        ppr_fast: ticks_field(t, "ppr_fast", defaults.ppr_fast)?,
        unit: ticks_field(t, "unit", defaults.unit)?,
    })
}

impl ToJson for CompilerOptions {
    fn to_json(&self) -> Value {
        let timing = timing_to_json(&self.timing);
        let mapping = match self.mapping {
            MappingStrategy::RowMajor => "row-major",
            MappingStrategy::Snake => "snake",
            MappingStrategy::InteractionAware => "interaction",
        };
        let port_placement = match self.port_placement {
            PortPlacement::Spread => "spread",
            PortPlacement::Clustered => "clustered",
        };
        let mut doc = Value::Obj(vec![
            ("routing_paths".into(), num(u64::from(self.routing_paths))),
            ("factories".into(), num(u64::from(self.factories))),
            ("timing".into(), timing),
            ("penalty_weight".into(), num(self.penalty_weight)),
            ("lookahead".into(), Value::Bool(self.lookahead)),
            (
                "eliminate_redundant_moves".into(),
                Value::Bool(self.eliminate_redundant_moves),
            ),
            ("mapping".into(), Value::Str(mapping.into())),
            (
                "t_state_policy".into(),
                Value::Obj(vec![
                    (
                        "states_per_t".into(),
                        num(u64::from(self.t_state_policy.states_per_t)),
                    ),
                    (
                        "states_per_rz".into(),
                        num(u64::from(self.t_state_policy.states_per_rz)),
                    ),
                ]),
            ),
            ("optimize".into(), Value::Bool(self.optimize)),
            ("port_placement".into(), Value::Str(port_placement.into())),
            ("unbounded_magic".into(), Value::Bool(self.unbounded_magic)),
        ]);
        // Omitted when None: the default rendering (and thus every
        // pre-existing fingerprint and cache file) is unchanged.
        if let (Value::Obj(fields), Some(st)) = (&mut doc, &self.schedule_timing) {
            fields.push(("schedule_timing".into(), timing_to_json(st)));
        }
        doc
    }
}

impl FromJson for CompilerOptions {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        if value.as_obj().is_none() {
            return Err(JsonError::schema("options must be a JSON object"));
        }
        let defaults = CompilerOptions::default();
        let dt = defaults.timing;
        let timing = match value.get("timing") {
            None => dt,
            Some(t) => timing_from_json(t, &dt)?,
        };
        // Missing fields of a schedule_timing override default to the
        // *router* timing, so `{"schedule_timing":{"cnot":2}}` means "as
        // routed, but re-time CNOTs at 1d".
        let schedule_timing = match value.get("schedule_timing") {
            None => None,
            Some(t) => Some(timing_from_json(t, &timing)?),
        };
        let mapping = match value.get("mapping") {
            None => defaults.mapping,
            Some(m) => match m.as_str() {
                Some("row-major") => MappingStrategy::RowMajor,
                Some("snake") => MappingStrategy::Snake,
                Some("interaction") => MappingStrategy::InteractionAware,
                _ => {
                    return Err(JsonError::schema(
                        "mapping must be \"snake\", \"row-major\" or \"interaction\"",
                    ))
                }
            },
        };
        let port_placement = match value.get("port_placement") {
            None => defaults.port_placement,
            Some(p) => match p.as_str() {
                Some("spread") => PortPlacement::Spread,
                Some("clustered") => PortPlacement::Clustered,
                _ => {
                    return Err(JsonError::schema(
                        "port_placement must be \"spread\" or \"clustered\"",
                    ))
                }
            },
        };
        let t_state_policy = match value.get("t_state_policy") {
            None => defaults.t_state_policy,
            Some(p) => TStatePolicy {
                states_per_t: u32_field(p, "states_per_t", defaults.t_state_policy.states_per_t)?,
                states_per_rz: u32_field(
                    p,
                    "states_per_rz",
                    defaults.t_state_policy.states_per_rz,
                )?,
            },
        };
        let penalty_weight = match value.get("penalty_weight") {
            None => defaults.penalty_weight,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| JsonError::schema("penalty_weight must be a u64"))?,
        };
        Ok(CompilerOptions {
            routing_paths: u32_field(value, "routing_paths", defaults.routing_paths)?,
            factories: u32_field(value, "factories", defaults.factories)?,
            timing,
            penalty_weight,
            lookahead: bool_field(value, "lookahead", defaults.lookahead)?,
            eliminate_redundant_moves: bool_field(
                value,
                "eliminate_redundant_moves",
                defaults.eliminate_redundant_moves,
            )?,
            mapping,
            t_state_policy,
            optimize: bool_field(value, "optimize", defaults.optimize)?,
            port_placement,
            unbounded_magic: bool_field(value, "unbounded_magic", defaults.unbounded_magic)?,
            schedule_timing,
        })
    }
}

impl ToJson for crate::session::StageCacheStats {
    fn to_json(&self) -> Value {
        Value::Obj(
            crate::session::Stage::ALL
                .iter()
                .map(|s| (s.name().to_string(), self.for_stage(*s).to_json()))
                .collect(),
        )
    }
}

impl FromJson for crate::session::StageCacheStats {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(crate::session::StageCacheStats {
            prepare: CacheStats::from_json(json::require(value, "prepare")?)?,
            lower: CacheStats::from_json(json::require(value, "lower")?)?,
            map: CacheStats::from_json(json::require(value, "map")?)?,
            schedule: CacheStats::from_json(json::require(value, "schedule")?)?,
        })
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("execution_time".into(), num(self.execution_time.raw())),
            ("unit_cost_time".into(), num(self.unit_cost_time.raw())),
            ("lower_bound".into(), num(self.lower_bound.raw())),
            ("grid_patches".into(), num(u64::from(self.grid_patches))),
            (
                "factory_patches".into(),
                num(u64::from(self.factory_patches)),
            ),
            ("routing_paths".into(), num(u64::from(self.routing_paths))),
            ("factories".into(), num(u64::from(self.factories))),
            ("n_gates".into(), num(self.n_gates as u64)),
            ("n_surgery_ops".into(), num(self.n_surgery_ops as u64)),
            ("n_moves".into(), num(self.n_moves as u64)),
            (
                "n_moves_eliminated".into(),
                num(self.n_moves_eliminated as u64),
            ),
            ("n_magic_states".into(), num(self.n_magic_states)),
        ])
    }
}

impl FromJson for Metrics {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let u32_of = |key: &str| -> Result<u32, JsonError> {
            json::require_u64(value, key).and_then(|n| {
                u32::try_from(n).map_err(|_| JsonError::schema(format!("{key} overflows u32")))
            })
        };
        Ok(Metrics {
            execution_time: Ticks(json::require_u64(value, "execution_time")?),
            unit_cost_time: Ticks(json::require_u64(value, "unit_cost_time")?),
            lower_bound: Ticks(json::require_u64(value, "lower_bound")?),
            grid_patches: u32_of("grid_patches")?,
            factory_patches: u32_of("factory_patches")?,
            routing_paths: u32_of("routing_paths")?,
            factories: u32_of("factories")?,
            n_gates: json::require_u64(value, "n_gates")? as usize,
            n_surgery_ops: json::require_u64(value, "n_surgery_ops")? as usize,
            n_moves: json::require_u64(value, "n_moves")? as usize,
            n_moves_eliminated: json::require_u64(value, "n_moves_eliminated")? as usize,
            n_magic_states: json::require_u64(value, "n_magic_states")?,
        })
    }
}

impl ToJson for crate::DesignPoint {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("routing_paths".into(), num(u64::from(self.routing_paths))),
            ("factories".into(), num(u64::from(self.factories))),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }
}

impl FromJson for crate::DesignPoint {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let u32_of = |key: &str| -> Result<u32, JsonError> {
            json::require_u64(value, key).and_then(|n| {
                u32::try_from(n).map_err(|_| JsonError::schema(format!("{key} overflows u32")))
            })
        };
        Ok(crate::DesignPoint {
            routing_paths: u32_of("routing_paths")?,
            factories: u32_of("factories")?,
            metrics: Metrics::from_json(json::require(value, "metrics")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_service::fingerprint::fingerprint_value;

    #[test]
    fn options_roundtrip() {
        let o = CompilerOptions::default()
            .routing_paths(7)
            .factories(3)
            .penalty_weight(2)
            .lookahead(false)
            .mapping(MappingStrategy::InteractionAware)
            .port_placement(PortPlacement::Clustered)
            .magic_production(Ticks::from_d(5.0))
            .unbounded_magic(true);
        let back = CompilerOptions::from_json(&o.to_json()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn sparse_options_fill_defaults() {
        let v = Value::parse(r#"{"routing_paths":6,"factories":2}"#).unwrap();
        let o = CompilerOptions::from_json(&v).unwrap();
        assert_eq!(o.routing_paths, 6);
        assert_eq!(o.factories, 2);
        assert_eq!(o.timing, TimingModel::paper());
        assert!(o.lookahead);
        let empty = CompilerOptions::from_json(&Value::parse("{}").unwrap()).unwrap();
        assert_eq!(empty, CompilerOptions::default());
    }

    #[test]
    fn schedule_timing_roundtrip_and_defaults() {
        let o = CompilerOptions::default().schedule_timing(TimingModel {
            cnot: Ticks::from_d(1.0),
            ..TimingModel::paper()
        });
        let rendered = o.to_json();
        let back = CompilerOptions::from_json(&rendered).unwrap();
        assert_eq!(back, o);
        // None is omitted from the rendering, keeping old fingerprints.
        let plain = CompilerOptions::default().to_json().render();
        assert!(!plain.contains("schedule_timing"));
        // Sparse overrides inherit the router timing's other latencies.
        let v = Value::parse(r#"{"timing":{"cnot":8},"schedule_timing":{"move_op":6}}"#).unwrap();
        let o = CompilerOptions::from_json(&v).unwrap();
        let st = o.schedule_timing.unwrap();
        assert_eq!(st.move_op, Ticks(6));
        assert_eq!(st.cnot, Ticks(8), "inherits the router's cnot latency");
    }

    #[test]
    fn stage_cache_stats_roundtrip() {
        use crate::session::{StageCache, StageCacheStats};
        let cache = StageCache::new(4);
        let stats = cache.stats();
        let back = StageCacheStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(back, stats);
        let rendered = stats.to_json().render();
        for name in ["prepare", "lower", "map", "schedule"] {
            assert!(rendered.contains(name), "missing {name} in {rendered}");
        }
    }

    #[test]
    fn bad_enum_values_rejected() {
        let v = Value::parse(r#"{"mapping":"banana"}"#).unwrap();
        assert!(CompilerOptions::from_json(&v).is_err());
        let v = Value::parse(r#"{"port_placement":"banana"}"#).unwrap();
        assert!(CompilerOptions::from_json(&v).is_err());
        assert!(CompilerOptions::from_json(&Value::Num(3.0)).is_err());
    }

    #[test]
    fn metrics_roundtrip() {
        let m = Metrics {
            execution_time: Ticks::from_d(120.0),
            unit_cost_time: Ticks::from_d(110.0),
            lower_bound: Ticks::from_d(100.0),
            grid_patches: 144,
            factory_patches: 11,
            routing_paths: 4,
            factories: 1,
            n_gates: 60,
            n_surgery_ops: 150,
            n_moves: 40,
            n_moves_eliminated: 6,
            n_magic_states: 10,
        };
        let back = Metrics::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn design_point_roundtrip() {
        let p = crate::DesignPoint {
            routing_paths: 4,
            factories: 2,
            metrics: Metrics {
                execution_time: Ticks::from_d(120.0),
                unit_cost_time: Ticks::from_d(110.0),
                lower_bound: Ticks::from_d(100.0),
                grid_patches: 144,
                factory_patches: 11,
                routing_paths: 4,
                factories: 2,
                n_gates: 60,
                n_surgery_ops: 150,
                n_moves: 40,
                n_moves_eliminated: 6,
                n_magic_states: 10,
            },
        };
        let back = crate::DesignPoint::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        assert!(crate::DesignPoint::from_json(&Value::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn metrics_missing_field_is_an_error() {
        let mut v = m_json();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "n_moves");
        }
        assert!(Metrics::from_json(&v).is_err());

        fn m_json() -> Value {
            Metrics {
                execution_time: Ticks(1),
                unit_cost_time: Ticks(1),
                lower_bound: Ticks(1),
                grid_patches: 1,
                factory_patches: 0,
                routing_paths: 2,
                factories: 1,
                n_gates: 1,
                n_surgery_ops: 1,
                n_moves: 0,
                n_moves_eliminated: 0,
                n_magic_states: 0,
            }
            .to_json()
        }
    }

    #[test]
    fn option_fingerprints_distinguish_single_field_changes() {
        let base = CompilerOptions::default();
        let variants = [
            base.clone().routing_paths(5),
            base.clone().factories(2),
            base.clone().penalty_weight(6),
            base.clone().lookahead(false),
            base.clone().eliminate_redundant_moves(false),
            base.clone().mapping(MappingStrategy::RowMajor),
            base.clone().optimize(true),
            base.clone().unbounded_magic(true),
            base.clone().port_placement(PortPlacement::Clustered),
            base.clone().magic_production(Ticks::from_d(9.0)),
            base.clone().t_state_policy(TStatePolicy::synthesis(3)),
        ];
        let base_fp = fingerprint_value(&base.to_json());
        let mut seen = vec![base_fp];
        for v in &variants {
            let fp = fingerprint_value(&v.to_json());
            assert!(
                !seen.contains(&fp),
                "fingerprint collision for variant {v:?}"
            );
            seen.push(fp);
        }
    }
}
