//! JSON codec for [`CompilerOptions`], [`TargetSpec`] and [`Metrics`] —
//! the concrete instantiation of `ftqc-service`'s generic wire format.
//!
//! These impls make the compiler's types usable as the `O` / `M`
//! parameters of `ftqc_service::BatchService` and as payloads of the
//! file-backed compile-cache tier. Encoding choices:
//!
//! * Durations travel as **raw ticks** (`u64`, 1 tick = 0.5 d): exact, and
//!   canonical for fingerprinting.
//! * Enum knobs travel as lowercase strings (`"snake"`, `"spread"`, …),
//!   matching the CLI's flag values.
//! * `CompilerOptions::from_json` treats every missing field as its
//!   default, so a jobs.jsonl line only names the knobs it changes —
//!   `{"routing_paths": 6, "factories": 2}` is a complete options object.
//! * The machine half of the options (now [`CompilerOptions::target`])
//!   keeps rendering as the **flat legacy fields** (`routing_paths`,
//!   `factories`, `timing`, `port_placement`, `unbounded_magic`); only
//!   what the legacy fields cannot express — explicit bus masks,
//!   non-default capability flags — is appended under a `"target"` key.
//!   A legacy-expressible target therefore renders byte-identically to
//!   the pre-target codec, keeping every existing fingerprint and cache
//!   file valid.

use crate::metrics::Metrics;
use crate::options::{CompilerOptions, TStatePolicy};
use crate::MappingStrategy;
use ftqc_arch::{BusSpec, Capabilities, PortPlacement, TargetSpec, Ticks, TimingModel};
use ftqc_service::json::{self, FromJson, JsonError, ToJson, Value};
use ftqc_service::{fingerprint, CacheStats};

fn num(v: u64) -> Value {
    Value::Num(v as f64)
}

fn ticks_field(value: &Value, key: &str, default: Ticks) -> Result<Ticks, JsonError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(Ticks)
            .ok_or_else(|| JsonError::schema(format!("field {key:?} must be raw ticks"))),
    }
}

fn u32_field(value: &Value, key: &str, default: u32) -> Result<u32, JsonError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| JsonError::schema(format!("field {key:?} must be a u32"))),
    }
}

fn bool_field(value: &Value, key: &str, default: bool) -> Result<bool, JsonError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| JsonError::schema(format!("field {key:?} must be a boolean"))),
    }
}

/// Canonical JSON rendering of a timing model — shared by the options
/// codec and the session's schedule-stage fingerprint.
pub(crate) fn timing_to_json(t: &TimingModel) -> Value {
    Value::Obj(vec![
        ("move_op".into(), num(t.move_op.raw())),
        ("merge".into(), num(t.merge.raw())),
        ("cnot".into(), num(t.cnot.raw())),
        ("hadamard".into(), num(t.hadamard.raw())),
        ("phase".into(), num(t.phase.raw())),
        ("t_consume".into(), num(t.t_consume.raw())),
        ("measure".into(), num(t.measure.raw())),
        ("magic_production".into(), num(t.magic_production.raw())),
        ("ppr_compact".into(), num(t.ppr_compact.raw())),
        ("ppr_fast".into(), num(t.ppr_fast.raw())),
        ("unit".into(), num(t.unit.raw())),
    ])
}

fn timing_from_json(t: &Value, defaults: &TimingModel) -> Result<TimingModel, JsonError> {
    Ok(TimingModel {
        move_op: ticks_field(t, "move_op", defaults.move_op)?,
        merge: ticks_field(t, "merge", defaults.merge)?,
        cnot: ticks_field(t, "cnot", defaults.cnot)?,
        hadamard: ticks_field(t, "hadamard", defaults.hadamard)?,
        phase: ticks_field(t, "phase", defaults.phase)?,
        t_consume: ticks_field(t, "t_consume", defaults.t_consume)?,
        measure: ticks_field(t, "measure", defaults.measure)?,
        magic_production: ticks_field(t, "magic_production", defaults.magic_production)?,
        ppr_compact: ticks_field(t, "ppr_compact", defaults.ppr_compact)?,
        ppr_fast: ticks_field(t, "ppr_fast", defaults.ppr_fast)?,
        unit: ticks_field(t, "unit", defaults.unit)?,
    })
}

fn port_placement_str(p: PortPlacement) -> &'static str {
    match p {
        PortPlacement::Spread => "spread",
        PortPlacement::Clustered => "clustered",
    }
}

fn port_placement_from(value: &Value, default: PortPlacement) -> Result<PortPlacement, JsonError> {
    match value.get("port_placement") {
        None => Ok(default),
        Some(p) => match p.as_str() {
            Some("spread") => Ok(PortPlacement::Spread),
            Some("clustered") => Ok(PortPlacement::Clustered),
            _ => Err(JsonError::schema(
                "port_placement must be \"spread\" or \"clustered\"",
            )),
        },
    }
}

/// Renders a gap list verbatim (positions may be `-1`). Callers hand in
/// gaps from [`BusSpec::canonical`], so equivalent masks render — and
/// therefore digest — identically however they were constructed.
fn gaps_to_json(gaps: &[i32]) -> Value {
    Value::Arr(gaps.iter().map(|g| Value::Num(f64::from(*g))).collect())
}

fn gaps_from_json(value: &Value, key: &str) -> Result<Vec<i32>, JsonError> {
    let items = value
        .get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| JsonError::schema(format!("bus mask needs an array {key:?}")))?;
    items
        .iter()
        .map(|item| {
            let n = item
                .as_f64()
                .filter(|n| n.fract() == 0.0 && (-1e9..=1e9).contains(n))
                .ok_or_else(|| {
                    JsonError::schema(format!("{key:?} entries must be integer gap positions"))
                })?;
            Ok(n as i32)
        })
        .collect()
}

/// Decodes a `"bus"` mask object into the canonical explicit form — the
/// one place the wire meets [`BusSpec::canonical`], so the
/// sorted/deduplicated rule lives in `ftqc_arch` alone.
fn bus_from_json(bus: &Value) -> Result<BusSpec, JsonError> {
    Ok(BusSpec::Explicit {
        rows: gaps_from_json(bus, "rows")?,
        cols: gaps_from_json(bus, "cols")?,
    }
    .canonical())
}

/// The extension object covering what the flat legacy fields cannot say:
/// explicit bus masks and non-default capability flags. `None` when the
/// target is fully legacy-expressible — the codec then omits the
/// `"target"` key and the rendering (hence the fingerprint) is identical
/// to the pre-target format.
fn target_extension(spec: &TargetSpec) -> Option<Value> {
    if matches!(spec.bus, BusSpec::RoutingPaths(_)) && spec.capabilities.is_default() {
        return None;
    }
    let mut fields = Vec::new();
    if let BusSpec::Explicit { rows, cols } = spec.bus.canonical() {
        fields.push((
            "bus".to_string(),
            Value::Obj(vec![
                ("rows".into(), gaps_to_json(&rows)),
                ("cols".into(), gaps_to_json(&cols)),
            ]),
        ));
    }
    let caps = spec.capabilities;
    if let Some(max) = caps.max_qubits {
        fields.push(("max_qubits".into(), num(u64::from(max))));
    }
    if !caps.magic_states {
        fields.push(("magic_states".into(), Value::Bool(false)));
    }
    if caps.fixed_bus {
        fields.push(("fixed_bus".into(), Value::Bool(true)));
    }
    if fields.is_empty() {
        None
    } else {
        Some(Value::Obj(fields))
    }
}

/// Applies a `"target"` extension object over an already-decoded spec.
fn apply_target_extension(spec: &mut TargetSpec, ext: &Value) -> Result<(), JsonError> {
    if ext.as_obj().is_none() {
        return Err(JsonError::schema("\"target\" must be a JSON object"));
    }
    if let Some(bus) = ext.get("bus") {
        spec.bus = bus_from_json(bus)?;
    }
    if let Some(max) = ext.get("max_qubits") {
        let max = max
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| JsonError::schema("\"max_qubits\" must be a u32"))?;
        spec.capabilities.max_qubits = Some(max);
    }
    spec.capabilities.magic_states =
        bool_field(ext, "magic_states", spec.capabilities.magic_states)?;
    spec.capabilities.fixed_bus = bool_field(ext, "fixed_bus", spec.capabilities.fixed_bus)?;
    Ok(())
}

/// Canonical standalone rendering of a [`TargetSpec`] — the document
/// `GET /v1/targets` serves, `ftqc targets show` prints, and inline job
/// targets decode from. The rendering is canonical (fixed field order,
/// defaults always materialised except `bus`/`max_qubits`, which appear
/// iff set), so [`target_digest`] is stable across field order and
/// default omission on the way in.
pub fn target_to_json(spec: &TargetSpec) -> Value {
    let mut fields = vec![(
        "routing_paths".to_string(),
        num(u64::from(spec.routing_paths())),
    )];
    if let BusSpec::Explicit { rows, cols } = spec.bus.canonical() {
        fields.push((
            "bus".into(),
            Value::Obj(vec![
                ("rows".into(), gaps_to_json(&rows)),
                ("cols".into(), gaps_to_json(&cols)),
            ]),
        ));
    }
    fields.push(("factories".into(), num(u64::from(spec.factories))));
    fields.push(("timing".into(), timing_to_json(&spec.timing)));
    fields.push((
        "port_placement".into(),
        Value::Str(port_placement_str(spec.port_placement).into()),
    ));
    fields.push(("unbounded_magic".into(), Value::Bool(spec.unbounded_magic)));
    if let Some(max) = spec.capabilities.max_qubits {
        fields.push(("max_qubits".into(), num(u64::from(max))));
    }
    fields.push((
        "magic_states".into(),
        Value::Bool(spec.capabilities.magic_states),
    ));
    fields.push(("fixed_bus".into(), Value::Bool(spec.capabilities.fixed_bus)));
    Value::Obj(fields)
}

/// Decodes a standalone target document. Missing fields default to the
/// paper machine, so `{"routing_paths": 2}` is a complete spec; a
/// `"bus"` object (explicit mask) wins over `"routing_paths"`.
///
/// # Errors
///
/// A schema error naming the offending field.
pub fn target_from_json(value: &Value) -> Result<TargetSpec, JsonError> {
    if value.as_obj().is_none() {
        return Err(JsonError::schema("target spec must be a JSON object"));
    }
    let defaults = TargetSpec::paper();
    let bus = match value.get("bus") {
        Some(bus) => bus_from_json(bus)?,
        None => BusSpec::RoutingPaths(u32_field(value, "routing_paths", defaults.routing_paths())?),
    };
    let timing = match value.get("timing") {
        None => defaults.timing,
        Some(t) => timing_from_json(t, &defaults.timing)?,
    };
    let max_qubits = match value.get("max_qubits") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::schema("\"max_qubits\" must be a u32"))?,
        ),
    };
    Ok(TargetSpec {
        bus,
        factories: u32_field(value, "factories", defaults.factories)?,
        timing,
        port_placement: port_placement_from(value, defaults.port_placement)?,
        unbounded_magic: bool_field(value, "unbounded_magic", defaults.unbounded_magic)?,
        capabilities: Capabilities {
            max_qubits,
            magic_states: bool_field(value, "magic_states", true)?,
            fixed_bus: bool_field(value, "fixed_bus", false)?,
        },
    })
}

/// The canonical 64-bit digest of a target: the fingerprint of its
/// canonical rendering. Two specs digest equally iff they describe the
/// same machine, regardless of how their JSON arrived (field order,
/// omitted defaults).
pub fn target_digest(spec: &TargetSpec) -> u64 {
    fingerprint::fingerprint_value(&target_to_json(spec))
}

impl ToJson for CompilerOptions {
    fn to_json(&self) -> Value {
        let target = &self.target;
        let timing = timing_to_json(&target.timing);
        let mapping = match self.mapping {
            MappingStrategy::RowMajor => "row-major",
            MappingStrategy::Snake => "snake",
            MappingStrategy::InteractionAware => "interaction",
        };
        let mut doc = Value::Obj(vec![
            (
                "routing_paths".into(),
                num(u64::from(target.routing_paths())),
            ),
            ("factories".into(), num(u64::from(target.factories))),
            ("timing".into(), timing),
            ("penalty_weight".into(), num(self.penalty_weight)),
            ("lookahead".into(), Value::Bool(self.lookahead)),
            (
                "eliminate_redundant_moves".into(),
                Value::Bool(self.eliminate_redundant_moves),
            ),
            ("mapping".into(), Value::Str(mapping.into())),
            (
                "t_state_policy".into(),
                Value::Obj(vec![
                    (
                        "states_per_t".into(),
                        num(u64::from(self.t_state_policy.states_per_t)),
                    ),
                    (
                        "states_per_rz".into(),
                        num(u64::from(self.t_state_policy.states_per_rz)),
                    ),
                ]),
            ),
            ("optimize".into(), Value::Bool(self.optimize)),
            (
                "port_placement".into(),
                Value::Str(port_placement_str(target.port_placement).into()),
            ),
            (
                "unbounded_magic".into(),
                Value::Bool(target.unbounded_magic),
            ),
        ]);
        // Omitted when absent/default: the default rendering (and thus
        // every pre-existing fingerprint and cache file) is unchanged.
        if let Value::Obj(fields) = &mut doc {
            if let Some(st) = &self.schedule_timing {
                fields.push(("schedule_timing".into(), timing_to_json(st)));
            }
            if let Some(ext) = target_extension(target) {
                fields.push(("target".into(), ext));
            }
        }
        doc
    }
}

impl FromJson for CompilerOptions {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        if value.as_obj().is_none() {
            return Err(JsonError::schema("options must be a JSON object"));
        }
        let defaults = CompilerOptions::default();
        let dt = defaults.target.timing;
        let timing = match value.get("timing") {
            None => dt,
            Some(t) => timing_from_json(t, &dt)?,
        };
        // Missing fields of a schedule_timing override default to the
        // *router* timing, so `{"schedule_timing":{"cnot":2}}` means "as
        // routed, but re-time CNOTs at 1d".
        let schedule_timing = match value.get("schedule_timing") {
            None => None,
            Some(t) => Some(timing_from_json(t, &timing)?),
        };
        let mapping = match value.get("mapping") {
            None => defaults.mapping,
            Some(m) => match m.as_str() {
                Some("row-major") => MappingStrategy::RowMajor,
                Some("snake") => MappingStrategy::Snake,
                Some("interaction") => MappingStrategy::InteractionAware,
                _ => {
                    return Err(JsonError::schema(
                        "mapping must be \"snake\", \"row-major\" or \"interaction\"",
                    ))
                }
            },
        };
        let t_state_policy = match value.get("t_state_policy") {
            None => defaults.t_state_policy,
            Some(p) => TStatePolicy {
                states_per_t: u32_field(p, "states_per_t", defaults.t_state_policy.states_per_t)?,
                states_per_rz: u32_field(
                    p,
                    "states_per_rz",
                    defaults.t_state_policy.states_per_rz,
                )?,
            },
        };
        let penalty_weight = match value.get("penalty_weight") {
            None => defaults.penalty_weight,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| JsonError::schema("penalty_weight must be a u64"))?,
        };
        let mut target = TargetSpec {
            bus: BusSpec::RoutingPaths(u32_field(
                value,
                "routing_paths",
                defaults.target.routing_paths(),
            )?),
            factories: u32_field(value, "factories", defaults.target.factories)?,
            timing,
            port_placement: port_placement_from(value, defaults.target.port_placement)?,
            unbounded_magic: bool_field(value, "unbounded_magic", defaults.target.unbounded_magic)?,
            capabilities: Capabilities::default(),
        };
        if let Some(ext) = value.get("target") {
            apply_target_extension(&mut target, ext)?;
        }
        Ok(CompilerOptions {
            target,
            penalty_weight,
            lookahead: bool_field(value, "lookahead", defaults.lookahead)?,
            eliminate_redundant_moves: bool_field(
                value,
                "eliminate_redundant_moves",
                defaults.eliminate_redundant_moves,
            )?,
            mapping,
            t_state_policy,
            optimize: bool_field(value, "optimize", defaults.optimize)?,
            schedule_timing,
        })
    }
}

impl ToJson for crate::session::StageCacheStats {
    fn to_json(&self) -> Value {
        Value::Obj(
            crate::session::Stage::ALL
                .iter()
                .map(|s| (s.name().to_string(), self.for_stage(*s).to_json()))
                .collect(),
        )
    }
}

impl FromJson for crate::session::StageCacheStats {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(crate::session::StageCacheStats {
            prepare: CacheStats::from_json(json::require(value, "prepare")?)?,
            lower: CacheStats::from_json(json::require(value, "lower")?)?,
            map: CacheStats::from_json(json::require(value, "map")?)?,
            schedule: CacheStats::from_json(json::require(value, "schedule")?)?,
        })
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("execution_time".into(), num(self.execution_time.raw())),
            ("unit_cost_time".into(), num(self.unit_cost_time.raw())),
            ("lower_bound".into(), num(self.lower_bound.raw())),
            ("grid_patches".into(), num(u64::from(self.grid_patches))),
            (
                "factory_patches".into(),
                num(u64::from(self.factory_patches)),
            ),
            ("routing_paths".into(), num(u64::from(self.routing_paths))),
            ("factories".into(), num(u64::from(self.factories))),
            ("n_gates".into(), num(self.n_gates as u64)),
            ("n_surgery_ops".into(), num(self.n_surgery_ops as u64)),
            ("n_moves".into(), num(self.n_moves as u64)),
            (
                "n_moves_eliminated".into(),
                num(self.n_moves_eliminated as u64),
            ),
            ("n_magic_states".into(), num(self.n_magic_states)),
            ("route".into(), route_counters_to_json(&self.route)),
        ])
    }
}

/// Renders [`ftqc_route::RouteCounters`] as a canonical JSON object (the
/// `"route"` member of the metrics document and of `/v1/cache/stats`).
pub fn route_counters_to_json(c: &ftqc_route::RouteCounters) -> Value {
    Value::Obj(vec![
        ("arena_reuses".into(), num(c.arena_reuses)),
        ("table_hits".into(), num(c.table_hits)),
        ("table_misses".into(), num(c.table_misses)),
        // Legacy aggregate (= invalidated_by_claim + flushes), kept for
        // wire compatibility; the split fields are additive, so no
        // WIRE_VERSION bump.
        ("table_invalidations".into(), num(c.table_invalidations)),
        (
            "table_invalidated_by_claim".into(),
            num(c.table_invalidated_by_claim),
        ),
        ("table_flushes".into(), num(c.table_flushes)),
    ])
}

/// Decodes the object written by [`route_counters_to_json`]. The split
/// invalidation fields default to zero when absent (documents written
/// before the spatial occupancy index).
///
/// # Errors
///
/// [`JsonError`] when a legacy counter field is missing or not a `u64`.
pub fn route_counters_from_json(value: &Value) -> Result<ftqc_route::RouteCounters, JsonError> {
    let optional_u64 = |key: &str| -> Result<u64, JsonError> {
        match value.get(key) {
            None => Ok(0),
            Some(_) => json::require_u64(value, key),
        }
    };
    Ok(ftqc_route::RouteCounters {
        arena_reuses: json::require_u64(value, "arena_reuses")?,
        table_hits: json::require_u64(value, "table_hits")?,
        table_misses: json::require_u64(value, "table_misses")?,
        table_invalidations: json::require_u64(value, "table_invalidations")?,
        table_invalidated_by_claim: optional_u64("table_invalidated_by_claim")?,
        table_flushes: optional_u64("table_flushes")?,
    })
}

impl FromJson for Metrics {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let u32_of = |key: &str| -> Result<u32, JsonError> {
            json::require_u64(value, key).and_then(|n| {
                u32::try_from(n).map_err(|_| JsonError::schema(format!("{key} overflows u32")))
            })
        };
        Ok(Metrics {
            execution_time: Ticks(json::require_u64(value, "execution_time")?),
            unit_cost_time: Ticks(json::require_u64(value, "unit_cost_time")?),
            lower_bound: Ticks(json::require_u64(value, "lower_bound")?),
            grid_patches: u32_of("grid_patches")?,
            factory_patches: u32_of("factory_patches")?,
            routing_paths: u32_of("routing_paths")?,
            factories: u32_of("factories")?,
            n_gates: json::require_u64(value, "n_gates")? as usize,
            n_surgery_ops: json::require_u64(value, "n_surgery_ops")? as usize,
            n_moves: json::require_u64(value, "n_moves")? as usize,
            n_moves_eliminated: json::require_u64(value, "n_moves_eliminated")? as usize,
            n_magic_states: json::require_u64(value, "n_magic_states")?,
            // Absent in documents written before the incremental router
            // (old cache files, older peers): default counters.
            route: match value.get("route") {
                None => ftqc_route::RouteCounters::default(),
                Some(v) => route_counters_from_json(v)?,
            },
        })
    }
}

impl ToJson for crate::DesignPoint {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("routing_paths".into(), num(u64::from(self.routing_paths))),
            ("factories".into(), num(u64::from(self.factories))),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }
}

impl FromJson for crate::DesignPoint {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let u32_of = |key: &str| -> Result<u32, JsonError> {
            json::require_u64(value, key).and_then(|n| {
                u32::try_from(n).map_err(|_| JsonError::schema(format!("{key} overflows u32")))
            })
        };
        Ok(crate::DesignPoint {
            routing_paths: u32_of("routing_paths")?,
            factories: u32_of("factories")?,
            metrics: Metrics::from_json(json::require(value, "metrics")?)?,
        })
    }
}

impl ToJson for crate::TargetSweep {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("target".into(), Value::Str(self.name.clone())),
            (
                "digest".into(),
                Value::Str(fingerprint::to_hex(self.digest)),
            ),
            (
                "points".into(),
                Value::Arr(self.points.iter().map(ToJson::to_json).collect()),
            ),
            (
                "front".into(),
                Value::Arr(self.front.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for crate::TargetSweep {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let points_of = |key: &str| -> Result<Vec<crate::DesignPoint>, JsonError> {
            json::require(value, key)?
                .as_arr()
                .ok_or_else(|| JsonError::schema(format!("{key:?} must be an array")))?
                .iter()
                .map(crate::DesignPoint::from_json)
                .collect()
        };
        Ok(crate::TargetSweep {
            name: json::require_str(value, "target")?.to_string(),
            digest: fingerprint::from_hex(json::require_str(value, "digest")?)
                .ok_or_else(|| JsonError::schema("\"digest\" must be 16 hex digits"))?,
            points: points_of("points")?,
            front: points_of("front")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_service::fingerprint::fingerprint_value;

    #[test]
    fn options_roundtrip() {
        let o = CompilerOptions::default()
            .routing_paths(7)
            .factories(3)
            .penalty_weight(2)
            .lookahead(false)
            .mapping(MappingStrategy::InteractionAware)
            .port_placement(PortPlacement::Clustered)
            .magic_production(Ticks::from_d(5.0))
            .unbounded_magic(true);
        let back = CompilerOptions::from_json(&o.to_json()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn sparse_options_fill_defaults() {
        let v = Value::parse(r#"{"routing_paths":6,"factories":2}"#).unwrap();
        let o = CompilerOptions::from_json(&v).unwrap();
        assert_eq!(o.target.routing_paths(), 6);
        assert_eq!(o.target.factories, 2);
        assert_eq!(o.target.timing, TimingModel::paper());
        assert!(o.lookahead);
        let empty = CompilerOptions::from_json(&Value::parse("{}").unwrap()).unwrap();
        assert_eq!(empty, CompilerOptions::default());
    }

    #[test]
    fn legacy_rendering_is_byte_stable() {
        // The default options must render exactly as the pre-target codec
        // did — this pins every existing fingerprint and cache file.
        let rendered = CompilerOptions::default().to_json().render();
        assert_eq!(
            rendered,
            "{\"routing_paths\":4,\"factories\":1,\"timing\":{\"move_op\":2,\"merge\":2,\
             \"cnot\":4,\"hadamard\":6,\"phase\":3,\"t_consume\":5,\"measure\":2,\
             \"magic_production\":22,\"ppr_compact\":8,\"ppr_fast\":6,\"unit\":2},\
             \"penalty_weight\":5,\"lookahead\":true,\"eliminate_redundant_moves\":true,\
             \"mapping\":\"snake\",\"t_state_policy\":{\"states_per_t\":1,\"states_per_rz\":1},\
             \"optimize\":false,\"port_placement\":\"spread\",\"unbounded_magic\":false}"
        );
        // Fingerprints pinned before the target redesign.
        assert_eq!(
            fingerprint_value(&CompilerOptions::default().to_json()),
            0x6854_2c0e_d2b8_e030
        );
        let variant = CompilerOptions::default()
            .routing_paths(2)
            .factories(2)
            .port_placement(PortPlacement::Clustered);
        assert_eq!(fingerprint_value(&variant.to_json()), 0x8986_9481_7a9c_3b7f);
        // Legacy-expressible targets never emit the extension key.
        assert!(!rendered.contains("\"target\""));
    }

    #[test]
    fn target_extension_roundtrips() {
        let o = CompilerOptions::default().target(TargetSpec {
            bus: BusSpec::Explicit {
                rows: vec![-1, 1],
                cols: vec![-1],
            },
            capabilities: Capabilities {
                max_qubits: Some(64),
                magic_states: false,
                fixed_bus: true,
            },
            ..TargetSpec::paper()
        });
        let rendered = o.to_json().render();
        assert!(rendered.contains("\"target\""), "got {rendered}");
        assert!(rendered.contains("\"rows\":[-1,1]"), "got {rendered}");
        let back = CompilerOptions::from_json(&o.to_json()).unwrap();
        assert_eq!(back, o);

        // The sparse preset (pinned r=2, clustered) renders its flag.
        let o = CompilerOptions::default().target(TargetSpec::sparse());
        let rendered = o.to_json().render();
        assert!(rendered.contains("\"fixed_bus\":true"), "got {rendered}");
        assert_eq!(CompilerOptions::from_json(&o.to_json()).unwrap(), o);
    }

    #[test]
    fn standalone_target_codec_roundtrips() {
        for spec in [
            TargetSpec::paper(),
            TargetSpec::sparse(),
            TargetSpec::fast_d(),
            TargetSpec {
                bus: BusSpec::Explicit {
                    rows: vec![-1],
                    cols: vec![-1, 2],
                },
                factories: 3,
                unbounded_magic: true,
                capabilities: Capabilities {
                    max_qubits: Some(32),
                    magic_states: true,
                    fixed_bus: false,
                },
                ..TargetSpec::paper()
            },
        ] {
            let back = target_from_json(&target_to_json(&spec)).unwrap();
            assert_eq!(back, spec);
            assert_eq!(target_digest(&back), target_digest(&spec));
        }
    }

    #[test]
    fn equivalent_masks_digest_identically() {
        // Duplicate/unsorted gap lists describe the machine the layout
        // actually builds; they must not split the cache.
        let messy = TargetSpec {
            bus: BusSpec::Explicit {
                rows: vec![3, -1, -1],
                cols: vec![1, 1],
            },
            ..TargetSpec::paper()
        };
        let clean = TargetSpec {
            bus: BusSpec::Explicit {
                rows: vec![-1, 3],
                cols: vec![1],
            },
            ..TargetSpec::paper()
        };
        assert_eq!(target_digest(&messy), target_digest(&clean));
        assert_eq!(
            target_to_json(&messy).render(),
            target_to_json(&clean).render()
        );
        // Decoding canonicalises too.
        let back = target_from_json(&target_to_json(&messy)).unwrap();
        assert_eq!(back.bus, clean.bus);
        assert_eq!(messy.routing_paths(), 3);
    }

    #[test]
    fn target_digest_stable_across_omission_and_order() {
        // A partial document and the canonical full form digest equally.
        let partial = Value::parse(r#"{"routing_paths":2}"#).unwrap();
        let full = target_to_json(&TargetSpec {
            bus: BusSpec::RoutingPaths(2),
            ..TargetSpec::paper()
        });
        assert_eq!(
            target_digest(&target_from_json(&partial).unwrap()),
            fingerprint_value(&full)
        );
        // Field order on the way in does not matter.
        let shuffled =
            Value::parse(r#"{"factories":2,"routing_paths":3,"unbounded_magic":false}"#).unwrap();
        let ordered =
            Value::parse(r#"{"routing_paths":3,"unbounded_magic":false,"factories":2}"#).unwrap();
        assert_eq!(
            target_digest(&target_from_json(&shuffled).unwrap()),
            target_digest(&target_from_json(&ordered).unwrap())
        );
        // Distinct machines digest differently.
        assert_ne!(
            target_digest(&TargetSpec::paper()),
            target_digest(&TargetSpec::sparse())
        );
        assert_ne!(
            target_digest(&TargetSpec::paper()),
            target_digest(&TargetSpec::fast_d())
        );
    }

    #[test]
    fn bad_target_documents_rejected() {
        for text in [
            r#"{"bus":{"rows":"x","cols":[]}}"#,
            r#"{"bus":{"rows":[0.5],"cols":[]}}"#,
            r#"{"bus":{"cols":[]}}"#,
            r#"{"max_qubits":"many"}"#,
            r#"{"port_placement":"banana"}"#,
            r#"3"#,
        ] {
            let v = Value::parse(text).unwrap();
            assert!(target_from_json(&v).is_err(), "accepted {text}");
        }
        let v = Value::parse(r#"{"target":3}"#).unwrap();
        assert!(CompilerOptions::from_json(&v).is_err());
    }

    #[test]
    fn schedule_timing_roundtrip_and_defaults() {
        let o = CompilerOptions::default().schedule_timing(TimingModel {
            cnot: Ticks::from_d(1.0),
            ..TimingModel::paper()
        });
        let rendered = o.to_json();
        let back = CompilerOptions::from_json(&rendered).unwrap();
        assert_eq!(back, o);
        // None is omitted from the rendering, keeping old fingerprints.
        let plain = CompilerOptions::default().to_json().render();
        assert!(!plain.contains("schedule_timing"));
        // Sparse overrides inherit the router timing's other latencies.
        let v = Value::parse(r#"{"timing":{"cnot":8},"schedule_timing":{"move_op":6}}"#).unwrap();
        let o = CompilerOptions::from_json(&v).unwrap();
        let st = o.schedule_timing.unwrap();
        assert_eq!(st.move_op, Ticks(6));
        assert_eq!(st.cnot, Ticks(8), "inherits the router's cnot latency");
    }

    #[test]
    fn stage_cache_stats_roundtrip() {
        use crate::session::{StageCache, StageCacheStats};
        let cache = StageCache::new(4);
        let stats = cache.stats();
        let back = StageCacheStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(back, stats);
        let rendered = stats.to_json().render();
        for name in ["prepare", "lower", "map", "schedule"] {
            assert!(rendered.contains(name), "missing {name} in {rendered}");
        }
    }

    #[test]
    fn bad_enum_values_rejected() {
        let v = Value::parse(r#"{"mapping":"banana"}"#).unwrap();
        assert!(CompilerOptions::from_json(&v).is_err());
        let v = Value::parse(r#"{"port_placement":"banana"}"#).unwrap();
        assert!(CompilerOptions::from_json(&v).is_err());
        assert!(CompilerOptions::from_json(&Value::Num(3.0)).is_err());
    }

    #[test]
    fn metrics_roundtrip() {
        let m = Metrics {
            execution_time: Ticks::from_d(120.0),
            unit_cost_time: Ticks::from_d(110.0),
            lower_bound: Ticks::from_d(100.0),
            grid_patches: 144,
            factory_patches: 11,
            routing_paths: 4,
            factories: 1,
            n_gates: 60,
            n_surgery_ops: 150,
            n_moves: 40,
            n_moves_eliminated: 6,
            n_magic_states: 10,
            route: ftqc_route::RouteCounters {
                arena_reuses: 99,
                table_hits: 7,
                table_misses: 92,
                table_invalidations: 120,
                table_invalidated_by_claim: 100,
                table_flushes: 20,
            },
        };
        let back = Metrics::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);

        // Documents written before the incremental router carry no
        // "route" object: they decode with default counters.
        let mut legacy = m.to_json();
        if let Value::Obj(fields) = &mut legacy {
            fields.retain(|(k, _)| k != "route");
        }
        let back = Metrics::from_json(&legacy).unwrap();
        assert_eq!(back.route, ftqc_route::RouteCounters::default());
        assert_eq!(back.n_moves, m.n_moves);
    }

    #[test]
    fn design_point_roundtrip() {
        let p = crate::DesignPoint {
            routing_paths: 4,
            factories: 2,
            metrics: Metrics {
                execution_time: Ticks::from_d(120.0),
                unit_cost_time: Ticks::from_d(110.0),
                lower_bound: Ticks::from_d(100.0),
                grid_patches: 144,
                factory_patches: 11,
                routing_paths: 4,
                factories: 2,
                n_gates: 60,
                n_surgery_ops: 150,
                n_moves: 40,
                n_moves_eliminated: 6,
                n_magic_states: 10,
                route: ftqc_route::RouteCounters::default(),
            },
        };
        let back = crate::DesignPoint::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        assert!(crate::DesignPoint::from_json(&Value::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn metrics_missing_field_is_an_error() {
        let mut v = m_json();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "n_moves");
        }
        assert!(Metrics::from_json(&v).is_err());

        fn m_json() -> Value {
            Metrics {
                execution_time: Ticks(1),
                unit_cost_time: Ticks(1),
                lower_bound: Ticks(1),
                grid_patches: 1,
                factory_patches: 0,
                routing_paths: 2,
                factories: 1,
                n_gates: 1,
                n_surgery_ops: 1,
                n_moves: 0,
                n_moves_eliminated: 0,
                n_magic_states: 0,
                route: ftqc_route::RouteCounters::default(),
            }
            .to_json()
        }
    }

    #[test]
    fn option_fingerprints_distinguish_single_field_changes() {
        let base = CompilerOptions::default();
        let variants = [
            base.clone().routing_paths(5),
            base.clone().factories(2),
            base.clone().penalty_weight(6),
            base.clone().lookahead(false),
            base.clone().eliminate_redundant_moves(false),
            base.clone().mapping(MappingStrategy::RowMajor),
            base.clone().optimize(true),
            base.clone().unbounded_magic(true),
            base.clone().port_placement(PortPlacement::Clustered),
            base.clone().magic_production(Ticks::from_d(9.0)),
            base.clone().t_state_policy(TStatePolicy::synthesis(3)),
            base.clone().target(TargetSpec::sparse()),
            base.clone().target(TargetSpec::fast_d()),
            base.clone().target(TargetSpec {
                bus: BusSpec::Explicit {
                    rows: vec![-1, 3],
                    cols: vec![-1, 3],
                },
                ..TargetSpec::paper()
            }),
        ];
        let base_fp = fingerprint_value(&base.to_json());
        let mut seen = vec![base_fp];
        for v in &variants {
            let fp = fingerprint_value(&v.to_json());
            assert!(
                !seen.contains(&fp),
                "fingerprint collision for variant {v:?}"
            );
            seen.push(fp);
        }
    }
}
