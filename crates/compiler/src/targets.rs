//! Glue between the service's job-level target references and the
//! architecture's [`TargetRegistry`]: resolving a name or inline spec
//! into a [`TargetSpec`] and folding it into a job's options *before* the
//! job is fingerprinted, so the compile cache keys on the machine that
//! was actually compiled for.

use crate::codec::target_from_json;
use crate::options::CompilerOptions;
use ftqc_arch::{TargetRegistry, TargetSpec};
use ftqc_service::{CompileJob, TargetRef};

/// Resolves a target reference: a name against `registry`, an inline
/// document through the target codec.
///
/// # Errors
///
/// A rendered message — unknown names list the registered presets, inline
/// decode failures carry the codec's schema error.
pub fn resolve_target_ref(
    target: &TargetRef,
    registry: &TargetRegistry,
) -> Result<TargetSpec, String> {
    match target {
        TargetRef::Named(name) => registry.get(name).cloned().ok_or_else(|| {
            format!(
                "unknown target {name:?} (registered: {})",
                registry.names().join(", ")
            )
        }),
        TargetRef::Inline(doc) => {
            target_from_json(doc).map_err(|e| format!("inline target spec: {e}"))
        }
    }
}

/// Folds a job's `target` field into its options: the resolved spec
/// replaces the options' machine half (the job-level target *is* the
/// machine; options keep only compilation policy), and the reference is
/// cleared so two jobs naming the same machine differently — preset name
/// versus equivalent inline spec versus explicit options fields —
/// fingerprint identically.
///
/// This must run before the job reaches the batch service's cache lookup;
/// the server and CLI pass it as the `prepare` transform of
/// [`run_jsonl_with`](ftqc_service::BatchService::run_jsonl_with).
///
/// # Errors
///
/// As [`resolve_target_ref`].
pub fn apply_job_target(
    mut job: CompileJob<CompilerOptions>,
    registry: &TargetRegistry,
) -> Result<CompileJob<CompilerOptions>, String> {
    if let Some(target) = job.target.take() {
        job.options.target = resolve_target_ref(&target, registry)?;
    }
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_service::json::Value;
    use ftqc_service::CircuitSource;

    fn job() -> CompileJob<CompilerOptions> {
        CompileJob::new(
            "j",
            CircuitSource::Benchmark {
                name: "ising".into(),
                size: Some(2),
            },
            CompilerOptions::default(),
        )
    }

    #[test]
    fn named_targets_resolve_against_the_registry() {
        let registry = TargetRegistry::builtin();
        let spec =
            resolve_target_ref(&TargetRef::Named("sparse".into()), &registry).expect("resolves");
        assert_eq!(spec, TargetSpec::sparse());
        let err = resolve_target_ref(&TargetRef::Named("warp".into()), &registry).unwrap_err();
        assert!(err.contains("unknown target"), "got {err}");
        assert!(err.contains("paper"), "lists the presets: {err}");
    }

    #[test]
    fn inline_targets_decode_with_defaults() {
        let registry = TargetRegistry::builtin();
        let doc = Value::parse(r#"{"routing_paths":2,"factories":3}"#).unwrap();
        let spec = resolve_target_ref(&TargetRef::Inline(doc), &registry).expect("decodes");
        assert_eq!(spec.routing_paths(), 2);
        assert_eq!(spec.factories, 3);
        let bad = Value::parse(r#"{"port_placement":"banana"}"#).unwrap();
        let err = resolve_target_ref(&TargetRef::Inline(bad), &registry).unwrap_err();
        assert!(err.contains("inline target spec"), "got {err}");
    }

    #[test]
    fn apply_folds_the_target_into_the_options() {
        use ftqc_service::json::ToJson;
        let registry = TargetRegistry::builtin();
        let with_name = apply_job_target(
            job().with_target(TargetRef::Named("sparse".into())),
            &registry,
        )
        .expect("applies");
        assert_eq!(with_name.options.target, TargetSpec::sparse());
        assert_eq!(with_name.target, None, "reference consumed");

        // Naming the machine three ways fingerprints identically.
        let inline_doc = crate::codec::target_to_json(&TargetSpec::sparse());
        let with_inline =
            apply_job_target(job().with_target(TargetRef::Inline(inline_doc)), &registry)
                .expect("applies");
        assert_eq!(
            with_name.options.to_json().render(),
            with_inline.options.to_json().render()
        );

        // A target-less job passes through untouched.
        let plain = apply_job_target(job(), &registry).expect("passes");
        assert_eq!(plain, job());

        let err = apply_job_target(
            job().with_target(TargetRef::Named("warp".into())),
            &registry,
        )
        .unwrap_err();
        assert!(err.contains("unknown target"), "got {err}");
    }
}
