//! End-to-end physical resource estimation: from a logical circuit and a
//! hardware model to a full machine specification.
//!
//! The paper's evaluation stays in logical units (patches, code-distance
//! timesteps). A hardware designer planning an early-FT system needs the
//! question answered the other way round: *given this circuit, this
//! physical error rate, and this failure budget, what machine do I build?*
//! This module closes that loop by combining:
//!
//! * the compiler (execution time, patch count, magic-state bill as a
//!   function of routing paths `r` and factory count);
//! * the QEC fit ([`ftqc_arch::qec`]) for the code distance;
//! * the distillation catalogue ([`ftqc_arch::distillation`]) for the
//!   factory protocol meeting the per-state error target.
//!
//! Distance, protocol, and schedule are mutually dependent (a slower
//! protocol stretches the schedule, a longer schedule needs more distance,
//! more distance lowers the distillation noise floor), so the estimator
//! iterates to a fixed point — in practice two or three rounds.

use crate::error::CompileError;
use crate::options::CompilerOptions;
use crate::pipeline::{CompiledProgram, Compiler};
use ftqc_arch::distillation::{choose_protocol, per_state_target, DistillationProtocol};
use ftqc_arch::qec::{physical_qubits_per_patch, PhysicalAssumptions};
use ftqc_circuit::Circuit;
use std::error::Error;
use std::fmt;

/// What the design-space search minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Fewest physical qubits (the early-FT regime's scarcest resource).
    #[default]
    PhysicalQubits,
    /// Smallest physical spacetime volume (qubits × wall-clock).
    SpacetimeVolume,
    /// Shortest wall-clock time.
    WallClock,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::PhysicalQubits => write!(f, "physical-qubits"),
            Objective::SpacetimeVolume => write!(f, "spacetime-volume"),
            Objective::WallClock => write!(f, "wall-clock"),
        }
    }
}

/// Parameters of an estimation run.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// Total failure budget for the run (logical + magic), e.g. `0.01`.
    pub budget: f64,
    /// Physical machine assumptions.
    pub assumptions: PhysicalAssumptions,
    /// Candidate routing-path counts to sweep.
    pub routing_paths: Vec<u32>,
    /// Candidate factory counts to sweep.
    pub factories: Vec<u32>,
    /// Selection objective.
    pub objective: Objective,
    /// Base compiler options (timing’s `magic_production` is overridden by
    /// the chosen protocol).
    pub base_options: CompilerOptions,
}

impl Default for EstimateRequest {
    fn default() -> Self {
        Self {
            budget: 0.01,
            assumptions: PhysicalAssumptions::superconducting(),
            routing_paths: vec![2, 3, 4, 5, 6],
            factories: vec![1, 2, 3, 4],
            objective: Objective::default(),
            base_options: CompilerOptions::default(),
        }
    }
}

/// A fully resolved machine specification for one circuit.
#[derive(Debug, Clone)]
pub struct ResourceEstimate {
    /// Routing paths of the chosen layout.
    pub routing_paths: u32,
    /// Factory count.
    pub factories: u32,
    /// Chosen distillation protocol.
    pub protocol: DistillationProtocol,
    /// Chosen code distance.
    pub code_distance: u32,
    /// Logical patches: grid plus factory footprint at the chosen protocol.
    pub logical_qubits: u32,
    /// Total physical qubits.
    pub physical_qubits: u64,
    /// Wall-clock execution time in seconds.
    pub wall_clock_seconds: f64,
    /// Expected total logical + magic error of the run.
    pub expected_error: f64,
    /// The compiled program behind this estimate.
    pub program: CompiledProgram,
}

impl ResourceEstimate {
    /// Physical spacetime volume: qubits × seconds.
    pub fn physical_volume(&self) -> f64 {
        self.physical_qubits as f64 * self.wall_clock_seconds
    }

    fn score(&self, objective: Objective) -> f64 {
        match objective {
            Objective::PhysicalQubits => self.physical_qubits as f64,
            Objective::SpacetimeVolume => self.physical_volume(),
            Objective::WallClock => self.wall_clock_seconds,
        }
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "r={} factories={} protocol={} d={}",
            self.routing_paths, self.factories, self.protocol.name, self.code_distance
        )?;
        writeln!(
            f,
            "  logical qubits : {} ({} grid + {} factory tiles)",
            self.logical_qubits,
            self.program.metrics().grid_patches,
            self.logical_qubits - self.program.metrics().grid_patches,
        )?;
        writeln!(f, "  physical qubits: {}", self.physical_qubits)?;
        writeln!(f, "  wall clock     : {:.3} s", self.wall_clock_seconds)?;
        write!(f, "  expected error : {:.2e}", self.expected_error)
    }
}

/// An estimation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// Every candidate design point failed to compile.
    AllCandidatesFailed {
        /// The last compile error seen.
        last: CompileError,
    },
    /// No distance/protocol combination meets the budget.
    Infeasible {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::AllCandidatesFailed { last } => {
                write!(f, "no design point compiled (last error: {last})")
            }
            EstimateError::Infeasible { reason } => write!(f, "infeasible: {reason}"),
        }
    }
}

impl Error for EstimateError {}

/// Estimates the best machine for `circuit` under `request`.
///
/// Sweeps the `(routing paths × factories)` grid, resolves each point to a
/// physical design (distance + protocol fixed point), and returns the
/// winner under the request's objective.
///
/// # Errors
///
/// * [`EstimateError::AllCandidatesFailed`] if no design point compiles;
/// * [`EstimateError::Infeasible`] if none meets the failure budget.
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
/// use ftqc_compiler::estimate::{estimate_resources, EstimateRequest};
///
/// let mut c = Circuit::new(4);
/// c.h(0).cnot(0, 1).t(1).cnot(1, 2).t(2).cnot(2, 3);
/// let e = estimate_resources(&c, &EstimateRequest::default()).expect("feasible");
/// assert!(e.code_distance >= 3);
/// assert!(e.physical_qubits > 0);
/// ```
pub fn estimate_resources(
    circuit: &Circuit,
    request: &EstimateRequest,
) -> Result<ResourceEstimate, EstimateError> {
    let mut best: Option<ResourceEstimate> = None;
    let mut last_err: Option<CompileError> = None;
    let mut any_compiled = false;

    for &r in &request.routing_paths {
        for &nf in &request.factories {
            let candidate = resolve_point(circuit, request, r, nf);
            match candidate {
                Ok(Some(est)) => {
                    any_compiled = true;
                    let better = best
                        .as_ref()
                        .map(|b| est.score(request.objective) < b.score(request.objective))
                        .unwrap_or(true);
                    if better {
                        best = Some(est);
                    }
                }
                Ok(None) => {
                    any_compiled = true; // compiled but infeasible at budget
                }
                Err(e) => last_err = Some(e),
            }
        }
    }

    match best {
        Some(b) => Ok(b),
        None if any_compiled => Err(EstimateError::Infeasible {
            reason: format!(
                "no candidate met the failure budget {:.0e} at p={:.0e}",
                request.budget, request.assumptions.physical_error_rate
            ),
        }),
        None => Err(EstimateError::AllCandidatesFailed {
            last: last_err.unwrap_or(CompileError::EmptyRegister),
        }),
    }
}

/// Resolves one `(r, factories)` point to a physical design, or `None` if
/// the budget cannot be met at any distance ≤ 99.
fn resolve_point(
    circuit: &Circuit,
    request: &EstimateRequest,
    r: u32,
    nf: u32,
) -> Result<Option<ResourceEstimate>, CompileError> {
    let a = &request.assumptions;
    // Budget split: half to the computation's logical errors, half to the
    // consumed magic states.
    let logical_budget = request.budget / 2.0;
    let magic_budget = request.budget / 2.0;

    let mut protocol = DistillationProtocol::fifteen_to_one();
    let mut resolved: Option<(CompiledProgram, u32, DistillationProtocol)> = None;

    // Fixed point over (protocol latency → schedule → distance → protocol).
    for _ in 0..4 {
        let options = request
            .base_options
            .clone()
            .routing_paths(r)
            .factories(nf)
            .magic_production(protocol.production_time());
        let program = Compiler::new(options).compile(circuit)?;
        let m = program.metrics();
        // Magic-free circuits need no factories at all.
        let factory_tiles = if m.n_magic_states == 0 {
            0
        } else {
            nf * protocol.tiles
        };
        let logical_qubits = m.grid_patches + factory_tiles;

        // Distance fixed point (patch-cycles depend on d).
        let mut d = 3u32;
        let mut found: Option<u32> = None;
        for _ in 0..32 {
            let patch_cycles = logical_qubits as f64 * m.execution_time.as_d() * d as f64;
            match a.required_distance(patch_cycles, logical_budget) {
                Some(needed) if needed <= d => {
                    found = Some(d);
                    break;
                }
                Some(needed) => d = needed,
                None => break,
            }
        }
        let Some(mut d) = found else { return Ok(None) };

        // The distillation noise floor may demand more distance than the
        // computation's own budget does (extra distance only lowers the
        // logical error, so escalating is always safe).
        let target = per_state_target(magic_budget, m.n_magic_states);
        let chosen = loop {
            match choose_protocol(a.physical_error_rate, target, d, a) {
                Some(p) => break p,
                None if d < 99 => d += 2,
                None => return Ok(None),
            }
        };

        let stable = chosen.cycles_d == protocol.cycles_d;
        protocol = chosen;
        resolved = Some((program, d, protocol.clone()));
        if stable {
            break;
        }
    }

    let Some((program, d, protocol)) = resolved else {
        return Ok(None);
    };
    let m = program.metrics();
    let factory_tiles = if m.n_magic_states == 0 {
        0
    } else {
        nf * protocol.tiles
    };
    let logical_qubits = m.grid_patches + factory_tiles;
    let patch_cycles = logical_qubits as f64 * m.execution_time.as_d() * d as f64;
    let logical_error = a.logical_error_per_cycle(d) * patch_cycles;
    let magic_error = protocol.output_error(a.physical_error_rate, d, a) * m.n_magic_states as f64;

    Ok(Some(ResourceEstimate {
        routing_paths: r,
        factories: nf,
        code_distance: d,
        logical_qubits,
        physical_qubits: logical_qubits as u64 * physical_qubits_per_patch(d),
        wall_clock_seconds: m.execution_time.physical_seconds(d, a.cycle_seconds),
        expected_error: logical_error + magic_error,
        protocol,
        program,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 1).t(1).cnot(1, 2).t(2).cnot(2, 3).t(3);
        c
    }

    #[test]
    fn default_request_estimates() {
        let e = estimate_resources(&toy_circuit(), &EstimateRequest::default()).expect("ok");
        assert!(e.code_distance >= 3 && e.code_distance % 2 == 1);
        assert!(e.logical_qubits > e.program.metrics().grid_patches);
        assert_eq!(
            e.physical_qubits,
            e.logical_qubits as u64 * physical_qubits_per_patch(e.code_distance)
        );
        assert!(e.expected_error < 0.01);
        assert!(e.wall_clock_seconds > 0.0);
    }

    #[test]
    fn qubit_objective_prefers_fewer_factories() {
        let c = toy_circuit();
        let mut req = EstimateRequest {
            objective: Objective::PhysicalQubits,
            ..Default::default()
        };
        req.factories = vec![1, 4];
        let e = estimate_resources(&c, &req).expect("ok");
        assert_eq!(e.factories, 1, "qubit-minimising design uses one factory");
    }

    #[test]
    fn wall_clock_objective_accepts_more_qubits() {
        // A magic-heavy circuit: more factories shorten the critical path.
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.t(q);
            c.t(q);
        }
        let mut req = EstimateRequest {
            objective: Objective::WallClock,
            ..Default::default()
        };
        req.factories = vec![1, 4];
        req.routing_paths = vec![4];
        let fast = estimate_resources(&c, &req).expect("ok");
        req.objective = Objective::PhysicalQubits;
        let small = estimate_resources(&c, &req).expect("ok");
        assert!(fast.wall_clock_seconds <= small.wall_clock_seconds);
        assert!(fast.physical_qubits >= small.physical_qubits);
    }

    #[test]
    fn better_hardware_shrinks_the_machine() {
        let c = toy_circuit();
        let req = EstimateRequest::default();
        let sc = estimate_resources(&c, &req).expect("ok");
        let better = EstimateRequest {
            assumptions: PhysicalAssumptions {
                physical_error_rate: 1e-4,
                ..PhysicalAssumptions::superconducting()
            },
            ..EstimateRequest::default()
        };
        let b = estimate_resources(&c, &better).expect("ok");
        assert!(b.code_distance < sc.code_distance);
        assert!(b.physical_qubits < sc.physical_qubits);
    }

    #[test]
    fn above_threshold_is_infeasible() {
        let c = toy_circuit();
        let req = EstimateRequest {
            assumptions: PhysicalAssumptions {
                physical_error_rate: 2e-2,
                ..PhysicalAssumptions::superconducting()
            },
            ..EstimateRequest::default()
        };
        let err = estimate_resources(&c, &req).unwrap_err();
        assert!(matches!(err, EstimateError::Infeasible { .. }));
    }

    #[test]
    fn tight_budget_escalates_protocol_or_distance() {
        let c = toy_circuit();
        let loose = estimate_resources(
            &c,
            &EstimateRequest {
                budget: 0.1,
                ..Default::default()
            },
        )
        .expect("ok");
        let tight = estimate_resources(
            &c,
            &EstimateRequest {
                budget: 1e-9,
                ..Default::default()
            },
        )
        .expect("ok");
        assert!(tight.code_distance >= loose.code_distance);
        assert!(tight.physical_qubits > loose.physical_qubits);
    }

    #[test]
    fn estimate_display_is_informative() {
        let e = estimate_resources(&toy_circuit(), &EstimateRequest::default()).expect("ok");
        let s = e.to_string();
        assert!(s.contains("physical qubits"));
        assert!(s.contains("wall clock"));
        assert!(s.contains("15-to-1"));
    }

    #[test]
    fn objective_display() {
        assert_eq!(Objective::PhysicalQubits.to_string(), "physical-qubits");
        assert_eq!(Objective::SpacetimeVolume.to_string(), "spacetime-volume");
        assert_eq!(Objective::WallClock.to_string(), "wall-clock");
    }

    #[test]
    fn error_display() {
        let e = EstimateError::Infeasible { reason: "x".into() };
        assert!(e.to_string().contains("infeasible"));
        let e = EstimateError::AllCandidatesFailed {
            last: CompileError::EmptyRegister,
        };
        assert!(e.to_string().contains("no design point"));
    }
}
