//! Design-space exploration: the paper's third contribution is that the
//! compiler "enables a richer set of space vs. time tradeoffs compared to
//! prior work which handpicks certain space-time configurations" (§I).
//!
//! [`explore`] compiles a circuit across a grid of routing-path and
//! factory counts; [`explore_parallel`] is the same sweep routed through
//! `ftqc-service`'s worker pool and content-addressed compile cache;
//! [`pareto_front`] filters the results to the qubit/time-Pareto-optimal
//! machines a hardware designer would choose from; [`best_by_volume`]
//! picks the single spacetime-volume optimum (the quantity minimised in
//! Fig 9).

use crate::error::CompileError;
use crate::metrics::Metrics;
use crate::options::CompilerOptions;
use crate::pipeline::Compiler;
use crate::session::{CompileSession, StageCache};
use ftqc_arch::TargetSpec;
use ftqc_circuit::Circuit;
use ftqc_service::json::ToJson;
use ftqc_service::{fingerprint, SharedCache, WorkerPool};
use serde::{Deserialize, Serialize};

/// One evaluated machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Routing paths of the layout.
    pub routing_paths: u32,
    /// Distillation factories.
    pub factories: u32,
    /// The compiled metrics.
    pub metrics: Metrics,
}

impl DesignPoint {
    /// Total qubits of this configuration.
    pub fn qubits(&self) -> u32 {
        self.metrics.total_qubits()
    }

    /// Execution time in `d` units.
    pub fn time_d(&self) -> f64 {
        self.metrics.execution_time.as_d()
    }

    /// Spacetime volume (including factories), qubit·d.
    pub fn volume(&self) -> f64 {
        self.metrics.spacetime_volume(true)
    }
}

/// Compiles `circuit` for every combination of `routing_paths` ×
/// `factories`, skipping combinations whose layout is invalid for this
/// register size.
///
/// # Errors
///
/// Returns a routing failure if one occurs; invalid-layout combinations
/// are silently skipped (e.g. `r > 2L+2`). Returns an empty vector only if
/// every combination was skipped.
pub fn explore(
    circuit: &Circuit,
    routing_paths: &[u32],
    factories: &[u32],
    base: &CompilerOptions,
) -> Result<Vec<DesignPoint>, CompileError> {
    let mut out = Vec::new();
    for (r, f) in sweep_grid(circuit, routing_paths, factories) {
        let options = base.clone().routing_paths(r).factories(f);
        let metrics = *Compiler::new(options).compile(circuit)?.metrics();
        out.push(DesignPoint {
            routing_paths: r,
            factories: f,
            metrics,
        });
    }
    Ok(out)
}

/// The `(routing_paths, factories)` combinations [`explore`] would visit,
/// in its visit order: the shared work-list of the serial and parallel
/// sweeps.
fn sweep_grid(circuit: &Circuit, routing_paths: &[u32], factories: &[u32]) -> Vec<(u32, u32)> {
    let max_r = ftqc_arch::Layout::max_routing_paths(circuit.num_qubits());
    let mut combos = Vec::new();
    for &r in routing_paths {
        if r < 2 || r > max_r {
            continue;
        }
        for &f in factories {
            combos.push((r, f));
        }
    }
    combos
}

/// [`explore`] with the sweep fanned across `workers` threads through
/// `ftqc-service`'s deterministic worker pool, memoised in a fresh
/// in-memory compile cache. Same arguments, same skip rules, and exactly
/// the same result vector (submission-order merging makes the parallel
/// run indistinguishable from the serial one).
///
/// To reuse compile results across calls (or to attach a file-backed
/// tier), build the cache yourself and use [`explore_parallel_with`].
///
/// # Errors
///
/// As [`explore`]: the first routing failure in grid order.
pub fn explore_parallel(
    circuit: &Circuit,
    routing_paths: &[u32],
    factories: &[u32],
    base: &CompilerOptions,
    workers: usize,
) -> Result<Vec<DesignPoint>, CompileError> {
    let cache = SharedCache::in_memory(ftqc_service::DEFAULT_CACHE_CAPACITY);
    explore_parallel_with(circuit, routing_paths, factories, base, workers, &cache)
}

/// [`explore_parallel`] against a caller-owned [`SharedCache`], so repeated
/// sweeps (resource estimators, interactive frontends, the `ftqc sweep`
/// CLI) are answered from cache instead of recompiled.
///
/// Cache keys are content-addressed over the canonical circuit and the
/// full option set — see `ftqc_service::fingerprint` — so a hit is only
/// possible when both match exactly.
///
/// # Errors
///
/// As [`explore`]: the first routing failure in grid order.
pub fn explore_parallel_with(
    circuit: &Circuit,
    routing_paths: &[u32],
    factories: &[u32],
    base: &CompilerOptions,
    workers: usize,
    cache: &SharedCache<Metrics>,
) -> Result<Vec<DesignPoint>, CompileError> {
    explore_session(
        circuit,
        routing_paths,
        factories,
        base,
        workers,
        cache,
        &StageCache::new(crate::session::DEFAULT_STAGE_CACHE_CAPACITY),
    )
}

/// [`explore_parallel_with`] running each grid point through the staged
/// [`CompileSession`] against a caller-owned
/// [`StageCache`]: whole-job repeats are still answered from `cache`, and
/// misses reuse stage artifacts — a routing grid shares one prepare/lower
/// pass, and a sweep varying only scheduling knobs reuses the routed ops
/// and re-runs scheduling alone. Results are byte-identical to
/// [`explore`]: artifacts are pure functions of their keys, so concurrent
/// workers racing on the stage cache cannot change the outcome.
///
/// # Errors
///
/// As [`explore`]: the first routing failure in grid order.
pub fn explore_session(
    circuit: &Circuit,
    routing_paths: &[u32],
    factories: &[u32],
    base: &CompilerOptions,
    workers: usize,
    cache: &SharedCache<Metrics>,
    stages: &StageCache,
) -> Result<Vec<DesignPoint>, CompileError> {
    let combos = sweep_grid(circuit, routing_paths, factories);
    let circuit_fp = fingerprint::fingerprint_circuit(circuit);
    let results = WorkerPool::new(workers).run(combos, |(r, f)| {
        let options = base.clone().routing_paths(r).factories(f);
        let metrics = compile_cached_session(circuit, circuit_fp, options, cache, stages)?;
        Ok(DesignPoint {
            routing_paths: r,
            factories: f,
            metrics,
        })
    });
    // collect() surfaces the first error in grid order — the same error a
    // serial sweep would have stopped at.
    results.into_iter().collect()
}

/// The whole-job cache key every memoised compile path uses:
/// `combine(circuit_fp, fingerprint(options))`.
fn job_key(circuit_fp: u64, options: &CompilerOptions) -> u64 {
    fingerprint::combine(
        circuit_fp,
        fingerprint::fingerprint_value(&options.to_json()),
    )
}

/// Compiles `circuit` under `options` through a staged session over
/// `stages`, memoised in `cache` under [`job_key`] — the single recipe
/// behind both [`explore_session`] and [`explore_targets`] grid points.
fn compile_cached_session(
    circuit: &Circuit,
    circuit_fp: u64,
    options: CompilerOptions,
    cache: &SharedCache<Metrics>,
    stages: &StageCache,
) -> Result<Metrics, CompileError> {
    let key = job_key(circuit_fp, &options);
    if let Some(hit) = cache.get(key) {
        return Ok(hit.value);
    }
    let program = CompileSession::new(options)
        .with_cache(stages.clone())
        .compile(circuit)
        .map_err(CompileError::into_root)?;
    let metrics = *program.metrics();
    cache.insert(key, metrics);
    Ok(metrics)
}

/// One target's slice of a cross-target sweep: its design points in grid
/// order and their qubit/time Pareto front.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSweep {
    /// The target's label (preset name or a caller-chosen tag).
    pub name: String,
    /// The target's canonical digest ([`crate::codec::target_digest`]).
    pub digest: u64,
    /// Every evaluated grid point, in grid order.
    pub points: Vec<DesignPoint>,
    /// The qubit/time Pareto front of `points`, sorted by qubit count.
    pub front: Vec<DesignPoint>,
}

/// The exact option sets a cross-target sweep visits for one target — the
/// shared work-list of [`explore_targets`] and its serial equivalent (one
/// [`explore_session`]-style compile per entry), so the two are
/// byte-identical by construction.
///
/// Targets with a pinned bus (explicit masks, [`fixed_bus`] presets) keep
/// their own provisioning and sweep only the factory axis; routing-path
/// families sweep the full `routing_paths × factories` grid. Targets the
/// circuit cannot run on — capability violations (qubit cap,
/// Clifford-only, zero factories) or a pinned layout that does not fit —
/// contribute no entries, mirroring [`explore`]'s silent skip of invalid
/// grid combinations, so one impossible target never sinks the rest of a
/// cross-target fleet.
///
/// [`fixed_bus`]: ftqc_arch::Capabilities::fixed_bus
pub fn target_sweep_options(
    circuit: &Circuit,
    spec: &TargetSpec,
    routing_paths: &[u32],
    factories: &[u32],
    base: &CompilerOptions,
) -> Vec<CompilerOptions> {
    if spec
        .validate(circuit.num_qubits(), circuit.t_count() as u64)
        .is_err()
    {
        return Vec::new();
    }
    let with_target = base.clone().target(spec.clone());
    if spec.bus_is_pinned() {
        if spec.build_layout(circuit.num_qubits()).is_err() {
            return Vec::new();
        }
        factories
            .iter()
            .map(|&f| with_target.clone().factories(f))
            .collect()
    } else {
        sweep_grid(circuit, routing_paths, factories)
            .into_iter()
            .map(|(r, f)| with_target.clone().routing_paths(r).factories(f))
            .collect()
    }
}

/// Cross-target design-space exploration: one sweep per named target, all
/// fanned through a single worker pool and sharing one metrics cache and
/// one [`StageCache`]. The circuit prepares and lowers once for the whole
/// fleet (those stages are target-independent), each target's grid points
/// route under its own layout/timing, and every target comes back with its
/// grid points plus its qubit/time Pareto front.
///
/// Results are byte-identical to compiling each target's
/// [`target_sweep_options`] serially in order.
///
/// # Errors
///
/// As [`explore`]: the first compile failure in work-list order.
#[allow(clippy::too_many_arguments)]
pub fn explore_targets(
    circuit: &Circuit,
    targets: &[(String, TargetSpec)],
    routing_paths: &[u32],
    factories: &[u32],
    base: &CompilerOptions,
    workers: usize,
    cache: &SharedCache<Metrics>,
    stages: &StageCache,
) -> Result<Vec<TargetSweep>, CompileError> {
    let mut work: Vec<(usize, CompilerOptions)> = Vec::new();
    for (index, (_, spec)) in targets.iter().enumerate() {
        for options in target_sweep_options(circuit, spec, routing_paths, factories, base) {
            work.push((index, options));
        }
    }
    let circuit_fp = fingerprint::fingerprint_circuit(circuit);
    let results: Vec<Result<(usize, DesignPoint), CompileError>> = WorkerPool::new(workers.max(1))
        .run(work, |(index, options)| {
            let routing_paths = options.target.routing_paths();
            let factories = options.target.factories;
            let metrics = compile_cached_session(circuit, circuit_fp, options, cache, stages)?;
            Ok((
                index,
                DesignPoint {
                    routing_paths,
                    factories,
                    metrics,
                },
            ))
        });
    let mut sweeps: Vec<TargetSweep> = targets
        .iter()
        .map(|(name, spec)| TargetSweep {
            name: name.clone(),
            digest: crate::codec::target_digest(spec),
            points: Vec::new(),
            front: Vec::new(),
        })
        .collect();
    for result in results {
        let (index, point) = result?;
        sweeps[index].points.push(point);
    }
    for sweep in &mut sweeps {
        sweep.front = pareto_front(&sweep.points);
    }
    Ok(sweeps)
}

/// Compiles `circuit` under `options` through the monolithic compiler,
/// memoised in `cache` under the content-addressed `job_key`
/// (`combine(circuit_fp, fingerprint(options))` — the one recipe every
/// memoised path shares). `circuit_fp` is
/// `ftqc_service::fingerprint::fingerprint_circuit(circuit)`, hoisted out
/// so sweeps hash the circuit once, not per grid point.
///
/// # Errors
///
/// Propagates [`CompileError`] on cache misses that fail to compile
/// (failures are not cached).
pub fn compile_cached(
    circuit: &Circuit,
    circuit_fp: u64,
    options: CompilerOptions,
    cache: &SharedCache<Metrics>,
) -> Result<Metrics, CompileError> {
    let key = job_key(circuit_fp, &options);
    if let Some(hit) = cache.get(key) {
        return Ok(hit.value);
    }
    let metrics = *Compiler::new(options).compile(circuit)?.metrics();
    cache.insert(key, metrics);
    Ok(metrics)
}

/// Filters to the Pareto front over `(qubits, execution time)`: a point
/// survives iff no other point is at least as good in both dimensions and
/// strictly better in one. The result is sorted by ascending qubit count.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut front: Vec<DesignPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                let leq = q.qubits() <= p.qubits() && q.time_d() <= p.time_d();
                let strict = q.qubits() < p.qubits() || q.time_d() < p.time_d();
                leq && strict
            })
        })
        .copied()
        .collect();
    front.sort_by_key(|p| (p.qubits(), p.metrics.execution_time));
    front.dedup_by_key(|p| (p.qubits(), p.metrics.execution_time));
    front
}

/// The single point minimising spacetime volume (including factories).
/// Returns `None` for an empty slice.
pub fn best_by_volume(points: &[DesignPoint]) -> Option<DesignPoint> {
    points
        .iter()
        .min_by(|a, b| a.volume().total_cmp(&b.volume()))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_arch::Ticks;

    fn point(r: u32, f: u32, qubits: u32, time_d: f64) -> DesignPoint {
        let mut metrics = Metrics {
            execution_time: Ticks::from_d(time_d),
            unit_cost_time: Ticks::from_d(time_d),
            lower_bound: Ticks::from_d(1.0),
            grid_patches: qubits,
            factory_patches: 0,
            routing_paths: r,
            factories: f,
            n_gates: 10,
            n_surgery_ops: 10,
            n_moves: 0,
            n_moves_eliminated: 0,
            n_magic_states: 1,
            route: ftqc_route::RouteCounters::default(),
        };
        metrics.factory_patches = 0;
        DesignPoint {
            routing_paths: r,
            factories: f,
            metrics,
        }
    }

    #[test]
    fn pareto_drops_dominated_points() {
        let pts = vec![
            point(2, 1, 100, 50.0),
            point(4, 1, 120, 40.0),
            point(6, 1, 150, 45.0), // dominated by (120, 40)
            point(8, 1, 200, 30.0),
        ];
        let front = pareto_front(&pts);
        let qubits: Vec<u32> = front.iter().map(|p| p.qubits()).collect();
        assert_eq!(qubits, vec![100, 120, 200]);
    }

    #[test]
    fn pareto_keeps_all_when_none_dominated() {
        let pts = vec![point(2, 1, 100, 50.0), point(4, 1, 200, 25.0)];
        assert_eq!(pareto_front(&pts).len(), 2);
    }

    #[test]
    fn best_by_volume_picks_minimum() {
        let pts = vec![
            point(2, 1, 100, 50.0), // 5000
            point(4, 1, 120, 40.0), // 4800
            point(8, 1, 200, 30.0), // 6000
        ];
        let best = best_by_volume(&pts).unwrap();
        assert_eq!(best.qubits(), 120);
        assert!(best_by_volume(&[]).is_none());
    }

    #[test]
    fn explore_parallel_matches_serial() {
        use ftqc_circuit::Circuit;
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q).t(q);
        }
        c.cnot(0, 1).cnot(2, 3).cnot(4, 5);
        let base = CompilerOptions::default();
        let serial = explore(&c, &[2, 4, 6], &[1, 2], &base).expect("serial compiles");
        for workers in [1, 2, 4] {
            let parallel =
                explore_parallel(&c, &[2, 4, 6], &[1, 2], &base, workers).expect("parallel");
            assert_eq!(parallel, serial, "workers = {workers}");
        }
    }

    #[test]
    fn explore_parallel_with_reuses_cache() {
        use ftqc_circuit::Circuit;
        use ftqc_service::SharedCache;
        let mut c = Circuit::new(4);
        c.h(0).t(0).cnot(0, 1).t(2).cnot(2, 3);
        let base = CompilerOptions::default();
        let cache = SharedCache::in_memory(256);
        let first =
            explore_parallel_with(&c, &[2, 4], &[1, 2], &base, 2, &cache).expect("first sweep");
        let after_first = cache.stats();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 4);
        let second =
            explore_parallel_with(&c, &[2, 4], &[1, 2], &base, 2, &cache).expect("second sweep");
        assert_eq!(second, first);
        let after_second = cache.stats();
        assert_eq!(after_second.misses, 4, "second sweep compiled nothing");
        assert_eq!(after_second.hits, 4, "second sweep was all cache hits");
    }

    #[test]
    fn explore_session_matches_serial_and_reuses_stages() {
        use ftqc_circuit::Circuit;
        use ftqc_service::SharedCache;
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q).t(q);
        }
        c.cnot(0, 1).cnot(2, 3);
        let base = CompilerOptions::default();
        let serial = explore(&c, &[2, 4], &[1, 2], &base).expect("serial");
        let cache = SharedCache::in_memory(64);
        let stages = StageCache::new(64);
        let staged =
            explore_session(&c, &[2, 4], &[1, 2], &base, 3, &cache, &stages).expect("staged");
        assert_eq!(staged, serial);
        let stats = stages.stats();
        // Four grid points share one circuit: prepare/lower computed once
        // (modulo benign recompute races), routing per grid point.
        assert_eq!(stats.prepare.insertions + stats.prepare.hits, 4);
        assert!(stats.prepare.hits >= 1, "front end reused: {stats:?}");
        assert_eq!(stats.map.misses, 4, "each grid point routes once");
    }

    #[test]
    fn explore_targets_matches_per_target_serial() {
        use ftqc_circuit::Circuit;
        use ftqc_service::SharedCache;
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q).t(q);
        }
        c.cnot(0, 1).cnot(2, 3);
        let base = CompilerOptions::default();
        let targets = vec![
            ("paper".to_string(), TargetSpec::paper()),
            ("sparse".to_string(), TargetSpec::sparse()),
            ("fast-d".to_string(), TargetSpec::fast_d()),
        ];
        let cache = SharedCache::in_memory(128);
        let stages = StageCache::new(128);
        let sweeps = explore_targets(&c, &targets, &[2, 4], &[1, 2], &base, 3, &cache, &stages)
            .expect("sweeps");
        assert_eq!(sweeps.len(), 3);
        // Byte-for-byte equal to compiling each target's options serially.
        for ((name, spec), sweep) in targets.iter().zip(&sweeps) {
            assert_eq!(&sweep.name, name);
            assert_eq!(sweep.digest, crate::codec::target_digest(spec));
            let serial: Vec<DesignPoint> = target_sweep_options(&c, spec, &[2, 4], &[1, 2], &base)
                .into_iter()
                .map(|o| {
                    let r = o.target.routing_paths();
                    let f = o.target.factories;
                    let metrics = *Compiler::new(o).compile(&c).expect("serial").metrics();
                    DesignPoint {
                        routing_paths: r,
                        factories: f,
                        metrics,
                    }
                })
                .collect();
            assert_eq!(sweep.points, serial, "target {name}");
            assert_eq!(sweep.front, pareto_front(&serial));
        }
        // The sparse target pins its bus: factories axis only.
        assert_eq!(sweeps[1].points.len(), 2);
        assert!(sweeps[1].points.iter().all(|p| p.routing_paths == 2));
        // Family targets sweep the full grid.
        assert_eq!(sweeps[0].points.len(), 4);
        // One shared front end across all targets: prepare/lower computed
        // once (modulo benign recompute races).
        let stats = stages.stats();
        assert!(stats.prepare.hits >= 1, "front end shared: {stats:?}");
    }

    #[test]
    fn explore_on_real_circuit() {
        use ftqc_circuit::Circuit;
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
            c.t(q);
        }
        c.cnot(0, 1).cnot(4, 5);
        let pts =
            explore(&c, &[2, 4, 6, 99], &[1, 2], &CompilerOptions::default()).expect("compiles");
        // r=99 is invalid for 9 qubits (max 2*3+2=8) and silently skipped.
        assert_eq!(pts.len(), 6);
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        // Front is sorted and strictly improving in time as qubits grow.
        for w in front.windows(2) {
            assert!(w[0].qubits() < w[1].qubits());
            assert!(w[0].time_d() > w[1].time_d());
        }
        let best = best_by_volume(&pts).unwrap();
        assert!(pts.iter().any(|p| p.volume() >= best.volume()));
    }
}
