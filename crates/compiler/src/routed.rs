//! The routed operation record passed between the compiler stages.

use ftqc_arch::SurgeryOp;
use serde::{Deserialize, Serialize};

/// A lattice-surgery operation with the scheduling metadata the timing
/// stage needs: which program qubits it orders against, which factory
/// produced its magic state, and which circuit gate it realises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedOp {
    /// The surgery operation.
    pub op: SurgeryOp,
    /// Program qubits whose ready-times gate this operation (and are pushed
    /// to its completion time). Moves carry the moved qubit; logical gates
    /// carry their operands; magic deliveries carry none.
    pub patches: Vec<u32>,
    /// For [`SurgeryOp::DeliverMagic`]: the index of the producing factory.
    pub factory: Option<usize>,
    /// Index of the originating gate in the lowered circuit, if any
    /// (movements planned for a gate carry that gate's index).
    pub gate: Option<usize>,
}

impl RoutedOp {
    /// A movement op (move/delivery) for qubit `q` planned while realising
    /// gate `gate`.
    pub fn movement(op: SurgeryOp, q: Option<u32>, gate: usize) -> Self {
        Self {
            op,
            patches: q.into_iter().collect(),
            factory: None,
            gate: Some(gate),
        }
    }

    /// A logical gate operation over `patches`.
    pub fn gate_op(op: SurgeryOp, patches: Vec<u32>, gate: usize) -> Self {
        Self {
            op,
            patches,
            factory: None,
            gate: Some(gate),
        }
    }

    /// Whether this is a data-qubit move or magic delivery.
    pub fn is_movement(&self) -> bool {
        self.op.is_movement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_arch::Coord;

    #[test]
    fn constructors_tag_metadata() {
        let mv = RoutedOp::movement(
            SurgeryOp::Move {
                from: Coord::new(0, 0),
                to: Coord::new(0, 1),
            },
            Some(3),
            17,
        );
        assert!(mv.is_movement());
        assert_eq!(mv.patches, vec![3]);
        assert_eq!(mv.gate, Some(17));
        assert_eq!(mv.factory, None);

        let g = RoutedOp::gate_op(
            SurgeryOp::MeasureZ {
                cell: Coord::new(1, 1),
            },
            vec![0],
            2,
        );
        assert!(!g.is_movement());
        assert_eq!(g.patches, vec![0]);
    }
}
