//! Evaluation metrics (paper §VI): execution time, unit-cost execution
//! time, the distillation lower bound, qubit counts, spacetime volume and
//! CPI.

use ftqc_arch::Ticks;
use ftqc_route::RouteCounters;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Metrics of one compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Makespan under realistic latencies (Fig 7).
    pub execution_time: Ticks,
    /// Makespan with 1d per operation (Fig 8's "unit cost execution time").
    pub unit_cost_time: Ticks,
    /// The distillation lower bound `l = n_T · t_MSF / n_MSF` (Eq. 2).
    pub lower_bound: Ticks,
    /// Logical patches on the computation grid.
    pub grid_patches: u32,
    /// Logical patches consumed by distillation factory blocks.
    pub factory_patches: u32,
    /// Number of routing paths `r` of the layout.
    pub routing_paths: u32,
    /// Number of distillation factories.
    pub factories: u32,
    /// Gates in the input circuit (CPI denominator).
    pub n_gates: usize,
    /// Lattice-surgery operations in the final schedule.
    pub n_surgery_ops: usize,
    /// Movement operations (moves + deliveries) in the final schedule.
    pub n_moves: usize,
    /// Move ops cancelled by redundant-move elimination.
    pub n_moves_eliminated: usize,
    /// Magic states consumed.
    pub n_magic_states: u64,
    /// Incremental-router activity for the routing run that produced this
    /// program: arena reuses, path-table hits/misses, and incremental
    /// invalidations. Deterministic per compile (the router's path table
    /// is per-engine), so cached and fresh compiles report identical
    /// values.
    pub route: RouteCounters,
}

impl Metrics {
    /// Total logical qubits: grid patches plus factory tiles.
    pub fn total_qubits(&self) -> u32 {
        self.grid_patches + self.factory_patches
    }

    /// Execution time over the lower bound (the paper's headline overhead,
    /// e.g. "1.2×"). Returns `f64::INFINITY` when the bound is zero (no
    /// magic states).
    pub fn overhead(&self) -> f64 {
        if self.lower_bound == Ticks::ZERO {
            f64::INFINITY
        } else {
            self.execution_time.as_d() / self.lower_bound.as_d()
        }
    }

    /// Unit-cost time over the lower bound.
    pub fn unit_overhead(&self) -> f64 {
        if self.lower_bound == Ticks::ZERO {
            f64::INFINITY
        } else {
            self.unit_cost_time.as_d() / self.lower_bound.as_d()
        }
    }

    /// Spacetime volume in qubit·d: qubits × execution time. Fig 9 includes
    /// factory tiles (`include_factories = true`); the DASCOT comparison of
    /// Fig 15 excludes them.
    pub fn spacetime_volume(&self, include_factories: bool) -> f64 {
        let qubits = if include_factories {
            self.total_qubits()
        } else {
            self.grid_patches
        };
        qubits as f64 * self.execution_time.as_d()
    }

    /// Spacetime volume per input-circuit operation (the y-axis of Figs 9
    /// and 15).
    pub fn spacetime_volume_per_op(&self, include_factories: bool) -> f64 {
        self.spacetime_volume(include_factories) / self.n_gates.max(1) as f64
    }

    /// Cycles per instruction: execution time (in d) per input gate
    /// (Fig 13/14's CPI).
    pub fn cpi(&self) -> f64 {
        self.execution_time.as_d() / self.n_gates.max(1) as f64
    }

    /// Movement overhead: movement ops per input gate.
    pub fn moves_per_gate(&self) -> f64 {
        self.n_moves as f64 / self.n_gates.max(1) as f64
    }
}

/// Computes the lower bound of Eq. (2) in ticks (floor division; the bound
/// is only meaningful relative to makespans far above one tick).
pub fn lower_bound(n_magic: u64, production: Ticks, factories: u32) -> Ticks {
    if factories == 0 {
        return Ticks::ZERO;
    }
    Ticks(n_magic * production.raw() / factories as u64)
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "qubits: {} (grid {} + factories {})",
            self.total_qubits(),
            self.grid_patches,
            self.factory_patches
        )?;
        writeln!(
            f,
            "time: {} (unit-cost {}, lower bound {}, overhead {:.2}x)",
            self.execution_time,
            self.unit_cost_time,
            self.lower_bound,
            self.overhead()
        )?;
        writeln!(
            f,
            "ops: {} surgery ({} moves, {} eliminated) for {} gates, {} magic states",
            self.n_surgery_ops,
            self.n_moves,
            self.n_moves_eliminated,
            self.n_gates,
            self.n_magic_states
        )?;
        writeln!(
            f,
            "spacetime: {:.0} qubit-d ({:.1} per op), CPI {:.2}",
            self.spacetime_volume(true),
            self.spacetime_volume_per_op(true),
            self.cpi()
        )?;
        write!(
            f,
            "router: {} arena reuses, path table {}/{} hits ({} claim-invalidated, {} flushes)",
            self.route.arena_reuses,
            self.route.table_hits,
            self.route.table_hits + self.route.table_misses,
            self.route.table_invalidated_by_claim,
            self.route.table_flushes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        Metrics {
            execution_time: Ticks::from_d(120.0),
            unit_cost_time: Ticks::from_d(110.0),
            lower_bound: Ticks::from_d(100.0),
            grid_patches: 144,
            factory_patches: 11,
            routing_paths: 4,
            factories: 1,
            n_gates: 60,
            n_surgery_ops: 150,
            n_moves: 40,
            n_moves_eliminated: 6,
            n_magic_states: 10,
            route: RouteCounters {
                arena_reuses: 30,
                table_hits: 5,
                table_misses: 35,
                table_invalidations: 80,
                table_invalidated_by_claim: 78,
                table_flushes: 2,
            },
        }
    }

    #[test]
    fn lower_bound_formula() {
        // 280 states, 11d, 1 factory = 3080d.
        assert_eq!(
            lower_bound(280, Ticks::from_d(11.0), 1),
            Ticks::from_d(3080.0)
        );
        // 4 factories: 770d.
        assert_eq!(
            lower_bound(280, Ticks::from_d(11.0), 4),
            Ticks::from_d(770.0)
        );
        assert_eq!(lower_bound(10, Ticks::from_d(11.0), 0), Ticks::ZERO);
    }

    #[test]
    fn overheads() {
        let m = sample();
        assert!((m.overhead() - 1.2).abs() < 1e-12);
        assert!((m.unit_overhead() - 1.1).abs() < 1e-12);
        assert_eq!(m.total_qubits(), 155);
    }

    #[test]
    fn zero_bound_overhead_is_infinite() {
        let mut m = sample();
        m.lower_bound = Ticks::ZERO;
        assert!(m.overhead().is_infinite());
    }

    #[test]
    fn spacetime_volume_with_and_without_factories() {
        let m = sample();
        assert!((m.spacetime_volume(true) - 155.0 * 120.0).abs() < 1e-9);
        assert!((m.spacetime_volume(false) - 144.0 * 120.0).abs() < 1e-9);
        assert!((m.spacetime_volume_per_op(true) - 155.0 * 120.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn cpi_and_moves_per_gate() {
        let m = sample();
        assert!((m.cpi() - 2.0).abs() < 1e-12);
        assert!((m.moves_per_gate() - 40.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("qubits: 155"));
        assert!(s.contains("overhead 1.20x"));
        assert!(s.contains("CPI 2.00"));
        assert!(s.contains("router: 30 arena reuses, path table 5/40 hits"));
    }
}
