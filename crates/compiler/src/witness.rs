//! Compile witnesses: the proof object an untrusted worker returns next to
//! its metrics, and the coordinator-side checker that accepts or rejects
//! the pair **without re-routing**.
//!
//! A [`Witness`] carries the post-elimination routed-op *sequence* (no
//! start times), the four per-stage cache keys, and the target digest.
//! That is enough for [`verify_witness`] to
//!
//! 1. re-derive the stage keys from the circuit + options (cheap: only the
//!    prepare/lower front end runs, cache-assisted),
//! 2. rebuild the layout and factory bank from the target,
//! 3. deterministically re-time the op sequence with [`time_ops`] (greedy
//!    replay — the same function the schedule stage uses, so a faithful
//!    worker's makespan is reproduced exactly),
//! 4. run the six-invariant physical checker [`verify_items`] over the
//!    re-timed schedule, and
//! 5. re-derive the full [`Metrics`] document and require equality with
//!    the claimed one.
//!
//! Everything is O(schedule): the expensive map stage (routing) never runs
//! on the verifying side. Two counters are informational pass-throughs the
//! witness cannot re-derive (`n_moves_eliminated` and the incremental
//! router's `route` counters — both describe how the worker *got* to the
//! op sequence, not the sequence itself); the trust model in the README
//! documents this residual gap.

use crate::codec::target_digest;
use crate::error::CompileError;
use crate::metrics::{lower_bound, Metrics};
use crate::options::CompilerOptions;
use crate::pipeline::CompiledProgram;
use crate::routed::RoutedOp;
use crate::session::{CompileSession, StageCache};
use crate::timer::{time_ops, CostKind};
use crate::verify::{verify_items, VerifyError};
use ftqc_arch::{Coord, SingleQubitKind, SurgeryOp, Ticks};
use ftqc_circuit::Circuit;
use ftqc_service::fingerprint;
use ftqc_service::json::{FromJson, JsonError, ToJson, Value};

/// Wire version of the witness document.
pub const WITNESS_VERSION: u64 = 1;

/// The compact proof a worker attaches to a `JobResult`: enough for the
/// coordinator to re-verify the compilation in O(schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// The four per-stage cache keys (prepare, lower, map, schedule) the
    /// worker compiled under — the coordinator re-derives and compares
    /// them, pinning circuit and options.
    pub stage_keys: [u64; 4],
    /// Digest of the hardware target the schedule was compiled for.
    pub target_digest: u64,
    /// The routed operation sequence after redundant-move elimination, in
    /// schedule order. Start times are *not* carried: re-timing is
    /// deterministic, so the coordinator replays rather than trusts.
    pub ops: Vec<RoutedOp>,
}

/// Why a witness was rejected. Any variant other than [`Compile`] means
/// the worker's claim is inconsistent and the job must be recomputed
/// locally.
///
/// [`Compile`]: WitnessError::Compile
#[derive(Debug, Clone, PartialEq)]
pub enum WitnessError {
    /// The coordinator-side front end (prepare/lower) failed — the job
    /// itself is bad, not the worker.
    Compile(String),
    /// A re-derived stage key disagrees with the witness.
    StageKeyMismatch {
        /// Index into the prepare/lower/map/schedule key array.
        index: usize,
        /// The key the coordinator derived.
        expected: u64,
        /// The key the witness carried.
        got: u64,
    },
    /// The witness was produced for a different hardware target.
    TargetDigestMismatch {
        /// Digest of the target the coordinator resolved.
        expected: u64,
        /// Digest the witness carried.
        got: u64,
    },
    /// The target rejects the program shape or the layout cannot be built.
    Target(String),
    /// The re-timed schedule violates a physical invariant.
    Invariant(VerifyError),
    /// The metrics derived from the witness disagree with the claimed
    /// ones; `field` names the first differing member.
    MetricsMismatch {
        /// Name of the first differing metrics field.
        field: &'static str,
    },
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::Compile(e) => write!(f, "cannot re-derive stage keys: {e}"),
            WitnessError::StageKeyMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "stage key {index} mismatch: expected {} got {}",
                fingerprint::to_hex(*expected),
                fingerprint::to_hex(*got)
            ),
            WitnessError::TargetDigestMismatch { expected, got } => write!(
                f,
                "target digest mismatch: expected {} got {}",
                fingerprint::to_hex(*expected),
                fingerprint::to_hex(*got)
            ),
            WitnessError::Target(e) => write!(f, "target rejects witness: {e}"),
            WitnessError::Invariant(e) => write!(f, "invariant violated: {e}"),
            WitnessError::MetricsMismatch { field } => {
                write!(f, "derived metrics disagree on {field:?}")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// Extracts the witness for a compiled program: the session's stage keys,
/// the target digest, and the scheduled op sequence in order.
///
/// # Errors
///
/// Any [`CompileError`] from the cheap stage-key derivation (prepare/lower
/// re-run, cache-assisted).
pub fn extract_witness(
    session: &CompileSession,
    circuit: &Circuit,
    program: &CompiledProgram,
) -> Result<Witness, CompileError> {
    Ok(Witness {
        stage_keys: session.stage_keys(circuit)?,
        target_digest: target_digest(&session.options().target),
        ops: program
            .schedule()
            .items()
            .iter()
            .map(|item| item.op.clone())
            .collect(),
    })
}

/// First differing field of two metrics documents, for the rejection
/// message. `None` when equal.
fn first_metrics_diff(a: &Metrics, b: &Metrics) -> Option<&'static str> {
    if a.execution_time != b.execution_time {
        return Some("execution_time");
    }
    if a.unit_cost_time != b.unit_cost_time {
        return Some("unit_cost_time");
    }
    if a.lower_bound != b.lower_bound {
        return Some("lower_bound");
    }
    if a.grid_patches != b.grid_patches {
        return Some("grid_patches");
    }
    if a.factory_patches != b.factory_patches {
        return Some("factory_patches");
    }
    if a.routing_paths != b.routing_paths {
        return Some("routing_paths");
    }
    if a.factories != b.factories {
        return Some("factories");
    }
    if a.n_gates != b.n_gates {
        return Some("n_gates");
    }
    if a.n_surgery_ops != b.n_surgery_ops {
        return Some("n_surgery_ops");
    }
    if a.n_moves != b.n_moves {
        return Some("n_moves");
    }
    if a.n_moves_eliminated != b.n_moves_eliminated {
        return Some("n_moves_eliminated");
    }
    if a.n_magic_states != b.n_magic_states {
        return Some("n_magic_states");
    }
    if a.route != b.route {
        return Some("route");
    }
    None
}

/// Verifies a worker's `(metrics, witness)` claim for `circuit` compiled
/// under `options`, in O(schedule): stage keys and target digest are
/// re-derived and compared, the op sequence is re-timed deterministically,
/// the six physical invariants are checked, and the metrics are
/// re-assembled from the replay and compared member-wise with the claim.
///
/// `stages` (when given) lets the cheap front-end re-runs share the
/// coordinator's stage cache. On success the *derived* metrics document is
/// returned; it is equal to `claimed` and safe to serve.
///
/// # Errors
///
/// The first failed check, as a [`WitnessError`].
pub fn verify_witness(
    circuit: &Circuit,
    options: &CompilerOptions,
    witness: &Witness,
    claimed: &Metrics,
    stages: Option<&StageCache>,
) -> Result<Metrics, WitnessError> {
    let mut session = CompileSession::new(options.clone());
    if let Some(cache) = stages {
        session = session.with_cache(cache.clone());
    }

    // 1. Stage keys: pins (circuit, options) — a witness replayed from a
    // different job or option set fails here before any replay work.
    let keys = session
        .stage_keys(circuit)
        .map_err(|e| WitnessError::Compile(e.to_string()))?;
    for (index, (expected, got)) in keys.iter().zip(witness.stage_keys.iter()).enumerate() {
        if expected != got {
            return Err(WitnessError::StageKeyMismatch {
                index,
                expected: *expected,
                got: *got,
            });
        }
    }
    let expected_digest = target_digest(&options.target);
    if expected_digest != witness.target_digest {
        return Err(WitnessError::TargetDigestMismatch {
            expected: expected_digest,
            got: witness.target_digest,
        });
    }

    // 2. The machine: shape validation, layout, factory bank — all from
    // the target, none from the witness.
    let prepared = session
        .prepare(circuit)
        .map_err(|e| WitnessError::Compile(e.to_string()))?;
    let input_gates = circuit.len();
    let lowered = prepared.lower();
    let num_qubits = lowered.circuit().num_qubits();
    let t_count = lowered.circuit().t_count() as u64;
    options
        .target
        .validate(num_qubits, t_count)
        .map_err(|e| WitnessError::Target(e.to_string()))?;
    let layout = options
        .target
        .build_layout(num_qubits)
        .map_err(|e| WitnessError::Target(e.to_string()))?;
    let bank = options.target.factory_bank(&layout);

    // 3 + 4. Deterministic re-timing and the physical invariants. The
    // same greedy replay the schedule stage runs, so a faithful worker's
    // makespans are reproduced bit-for-bit.
    let timing = options.effective_schedule_timing();
    let schedule = time_ops(
        &witness.ops,
        num_qubits,
        options.target.factories as usize,
        timing,
        CostKind::Realistic,
        options.target.unbounded_magic,
    );
    let unit_schedule = time_ops(
        &witness.ops,
        num_qubits,
        options.target.factories as usize,
        timing,
        CostKind::UnitCost,
        options.target.unbounded_magic,
    );
    verify_items(schedule.items(), timing, |c| layout.grid().in_bounds(c))
        .map_err(WitnessError::Invariant)?;

    // 5. Metrics re-assembly — the schedule stage's recipe, with the two
    // non-derivable informational counters passed through from the claim.
    let n_magic_states = witness
        .ops
        .iter()
        .filter(|o| matches!(o.op, SurgeryOp::ConsumeMagic { .. }))
        .count() as u64;
    let derived = Metrics {
        execution_time: schedule.makespan(),
        unit_cost_time: unit_schedule.makespan(),
        lower_bound: if options.target.unbounded_magic {
            Ticks::ZERO
        } else {
            lower_bound(
                n_magic_states,
                timing.magic_production,
                options.target.factories,
            )
        },
        grid_patches: layout.total_patches(),
        factory_patches: bank.total_tiles(),
        routing_paths: options.target.routing_paths(),
        factories: options.target.factories,
        n_gates: input_gates,
        n_surgery_ops: witness.ops.len(),
        n_moves: witness.ops.iter().filter(|o| o.is_movement()).count(),
        n_moves_eliminated: claimed.n_moves_eliminated,
        n_magic_states,
        route: claimed.route,
    };
    if let Some(field) = first_metrics_diff(&derived, claimed) {
        return Err(WitnessError::MetricsMismatch { field });
    }
    Ok(derived)
}

// --- JSON codec -----------------------------------------------------------
//
// Compact encoding: coordinates as two-element arrays, op fields flattened
// next to a "k" kind tag (the names `to_csv` uses), routed-op extras under
// short keys ("q" patches, "f" factory, "g" gate) omitted when empty.
// Fingerprints travel as hex strings — a u64 does not survive an f64.

fn num(v: u64) -> Value {
    Value::Num(v as f64)
}

fn coord_to_json(c: Coord) -> Value {
    Value::Arr(vec![
        Value::Num(f64::from(c.row)),
        Value::Num(f64::from(c.col)),
    ])
}

fn coord_from_json(v: &Value) -> Result<Coord, JsonError> {
    let items = v
        .as_arr()
        .filter(|items| items.len() == 2)
        .ok_or_else(|| JsonError::schema("coordinate must be a [row, col] pair"))?;
    let int = |v: &Value| {
        v.as_f64()
            .filter(|n| n.fract() == 0.0 && (-1e9..=1e9).contains(n))
            .map(|n| n as i32)
            .ok_or_else(|| JsonError::schema("coordinate entries must be integers"))
    };
    Ok(Coord::new(int(&items[0])?, int(&items[1])?))
}

fn kind_from_name(name: &str) -> Result<SingleQubitKind, JsonError> {
    match name {
        "h" => Ok(SingleQubitKind::H),
        "s" => Ok(SingleQubitKind::S),
        "sdg" => Ok(SingleQubitKind::Sdg),
        "sx" => Ok(SingleQubitKind::Sx),
        "sxdg" => Ok(SingleQubitKind::Sxdg),
        other => Err(JsonError::schema(format!(
            "unknown single-qubit kind {other:?}"
        ))),
    }
}

fn op_fields(op: &SurgeryOp) -> Vec<(String, Value)> {
    match op {
        SurgeryOp::Move { from, to } => vec![
            ("k".into(), Value::Str("move".into())),
            ("from".into(), coord_to_json(*from)),
            ("to".into(), coord_to_json(*to)),
        ],
        SurgeryOp::DeliverMagic { path } => vec![
            ("k".into(), Value::Str("deliver".into())),
            (
                "path".into(),
                Value::Arr(path.iter().map(|c| coord_to_json(*c)).collect()),
            ),
        ],
        SurgeryOp::MergeZz { a, b } => vec![
            ("k".into(), Value::Str("mzz".into())),
            ("a".into(), coord_to_json(*a)),
            ("b".into(), coord_to_json(*b)),
        ],
        SurgeryOp::MergeXx { a, b } => vec![
            ("k".into(), Value::Str("mxx".into())),
            ("a".into(), coord_to_json(*a)),
            ("b".into(), coord_to_json(*b)),
        ],
        SurgeryOp::Cnot {
            control,
            target,
            ancilla,
        } => vec![
            ("k".into(), Value::Str("cnot".into())),
            ("control".into(), coord_to_json(*control)),
            ("target".into(), coord_to_json(*target)),
            ("ancilla".into(), coord_to_json(*ancilla)),
        ],
        SurgeryOp::Single {
            kind,
            cell,
            ancilla,
        } => vec![
            ("k".into(), Value::Str("single".into())),
            ("kind".into(), Value::Str(kind.name().into())),
            ("cell".into(), coord_to_json(*cell)),
            ("ancilla".into(), coord_to_json(*ancilla)),
        ],
        SurgeryOp::ConsumeMagic { target, magic } => vec![
            ("k".into(), Value::Str("consume".into())),
            ("target".into(), coord_to_json(*target)),
            ("magic".into(), coord_to_json(*magic)),
        ],
        SurgeryOp::MeasureZ { cell } => vec![
            ("k".into(), Value::Str("measure".into())),
            ("cell".into(), coord_to_json(*cell)),
        ],
        SurgeryOp::PauliFrame { cell } => vec![
            ("k".into(), Value::Str("frame".into())),
            ("cell".into(), coord_to_json(*cell)),
        ],
    }
}

fn coord_field(v: &Value, key: &str) -> Result<Coord, JsonError> {
    coord_from_json(
        v.get(key)
            .ok_or_else(|| JsonError::schema(format!("op needs field {key:?}")))?,
    )
}

fn op_from_json(v: &Value) -> Result<SurgeryOp, JsonError> {
    let kind = v
        .get("k")
        .and_then(Value::as_str)
        .ok_or_else(|| JsonError::schema("op needs a string \"k\" kind tag"))?;
    match kind {
        "move" => Ok(SurgeryOp::Move {
            from: coord_field(v, "from")?,
            to: coord_field(v, "to")?,
        }),
        "deliver" => {
            let path = v
                .get("path")
                .and_then(Value::as_arr)
                .ok_or_else(|| JsonError::schema("deliver needs a \"path\" array"))?;
            Ok(SurgeryOp::DeliverMagic {
                path: path.iter().map(coord_from_json).collect::<Result<_, _>>()?,
            })
        }
        "mzz" => Ok(SurgeryOp::MergeZz {
            a: coord_field(v, "a")?,
            b: coord_field(v, "b")?,
        }),
        "mxx" => Ok(SurgeryOp::MergeXx {
            a: coord_field(v, "a")?,
            b: coord_field(v, "b")?,
        }),
        "cnot" => Ok(SurgeryOp::Cnot {
            control: coord_field(v, "control")?,
            target: coord_field(v, "target")?,
            ancilla: coord_field(v, "ancilla")?,
        }),
        "single" => Ok(SurgeryOp::Single {
            kind: kind_from_name(
                v.get("kind")
                    .and_then(Value::as_str)
                    .ok_or_else(|| JsonError::schema("single needs a string \"kind\""))?,
            )?,
            cell: coord_field(v, "cell")?,
            ancilla: coord_field(v, "ancilla")?,
        }),
        "consume" => Ok(SurgeryOp::ConsumeMagic {
            target: coord_field(v, "target")?,
            magic: coord_field(v, "magic")?,
        }),
        "measure" => Ok(SurgeryOp::MeasureZ {
            cell: coord_field(v, "cell")?,
        }),
        "frame" => Ok(SurgeryOp::PauliFrame {
            cell: coord_field(v, "cell")?,
        }),
        other => Err(JsonError::schema(format!("unknown op kind {other:?}"))),
    }
}

impl ToJson for RoutedOp {
    fn to_json(&self) -> Value {
        let mut fields = op_fields(&self.op);
        if !self.patches.is_empty() {
            fields.push((
                "q".into(),
                Value::Arr(self.patches.iter().map(|&q| num(u64::from(q))).collect()),
            ));
        }
        if let Some(f) = self.factory {
            fields.push(("f".into(), num(f as u64)));
        }
        if let Some(g) = self.gate {
            fields.push(("g".into(), num(g as u64)));
        }
        Value::Obj(fields)
    }
}

impl FromJson for RoutedOp {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let patches = match value.get("q") {
            None => Vec::new(),
            Some(q) => q
                .as_arr()
                .ok_or_else(|| JsonError::schema("\"q\" must be an array"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| JsonError::schema("\"q\" entries must be u32 qubits"))
                })
                .collect::<Result<_, _>>()?,
        };
        let index_of = |key: &str| -> Result<Option<usize>, JsonError> {
            match value.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(|n| Some(n as usize))
                    .ok_or_else(|| JsonError::schema(format!("{key:?} must be an index"))),
            }
        };
        Ok(RoutedOp {
            op: op_from_json(value)?,
            patches,
            factory: index_of("f")?,
            gate: index_of("g")?,
        })
    }
}

impl ToJson for Witness {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("v".into(), num(WITNESS_VERSION)),
            (
                "keys".into(),
                Value::Arr(
                    self.stage_keys
                        .iter()
                        .map(|k| Value::Str(fingerprint::to_hex(*k)))
                        .collect(),
                ),
            ),
            (
                "target".into(),
                Value::Str(fingerprint::to_hex(self.target_digest)),
            ),
            (
                "ops".into(),
                Value::Arr(self.ops.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Witness {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let version = value
            .get("v")
            .and_then(Value::as_u64)
            .ok_or_else(|| JsonError::schema("witness needs a numeric \"v\""))?;
        if version != WITNESS_VERSION {
            return Err(JsonError::schema(format!(
                "unsupported witness version {version}"
            )));
        }
        let hex = |v: &Value| {
            v.as_str()
                .and_then(fingerprint::from_hex)
                .ok_or_else(|| JsonError::schema("witness keys must be hex fingerprints"))
        };
        let keys = value
            .get("keys")
            .and_then(Value::as_arr)
            .filter(|k| k.len() == 4)
            .ok_or_else(|| JsonError::schema("witness needs a 4-element \"keys\" array"))?;
        let mut stage_keys = [0u64; 4];
        for (slot, v) in stage_keys.iter_mut().zip(keys.iter()) {
            *slot = hex(v)?;
        }
        let ops = value
            .get("ops")
            .and_then(Value::as_arr)
            .ok_or_else(|| JsonError::schema("witness needs an \"ops\" array"))?
            .iter()
            .map(RoutedOp::from_json)
            .collect::<Result<_, _>>()?;
        Ok(Witness {
            stage_keys,
            target_digest: hex(value
                .get("target")
                .ok_or_else(|| JsonError::schema("witness needs a \"target\" digest"))?)?,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CompileSession;

    fn testbed() -> (Circuit, CompilerOptions) {
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 1).t(1).cnot(1, 2).s(2).cnot(2, 3).measure(3);
        (c, CompilerOptions::default().routing_paths(4))
    }

    fn compile_witnessed(circuit: &Circuit, options: &CompilerOptions) -> (Witness, Metrics) {
        let session = CompileSession::new(options.clone());
        let program = session.compile(circuit).expect("compiles");
        let witness = extract_witness(&session, circuit, &program).expect("extracts");
        (witness, *program.metrics())
    }

    #[test]
    fn faithful_witness_verifies_and_reproduces_metrics() {
        let (circuit, options) = testbed();
        let (witness, claimed) = compile_witnessed(&circuit, &options);
        let derived = verify_witness(&circuit, &options, &witness, &claimed, None)
            .expect("faithful witness accepted");
        assert_eq!(derived, claimed);
    }

    #[test]
    fn witness_roundtrips_through_json() {
        let (circuit, options) = testbed();
        let (witness, _) = compile_witnessed(&circuit, &options);
        let doc = witness.to_json().render();
        let back = Witness::from_json(&Value::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, witness);
        // Canonical: render-parse-render is a fixed point.
        assert_eq!(back.to_json().render(), doc);
    }

    #[test]
    fn wrong_option_set_rejected_on_stage_keys() {
        let (circuit, options) = testbed();
        let (witness, claimed) = compile_witnessed(&circuit, &options);
        let other = CompilerOptions::default().routing_paths(6);
        let err = verify_witness(&circuit, &other, &witness, &claimed, None).unwrap_err();
        assert!(
            matches!(err, WitnessError::StageKeyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn tampered_target_digest_rejected() {
        let (circuit, options) = testbed();
        let (mut witness, claimed) = compile_witnessed(&circuit, &options);
        witness.target_digest ^= 1;
        let err = verify_witness(&circuit, &options, &witness, &claimed, None).unwrap_err();
        assert!(
            matches!(err, WitnessError::TargetDigestMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn inflated_metrics_rejected() {
        let (circuit, options) = testbed();
        let (witness, mut claimed) = compile_witnessed(&circuit, &options);
        claimed.execution_time += Ticks(2);
        let err = verify_witness(&circuit, &options, &witness, &claimed, None).unwrap_err();
        assert_eq!(
            err,
            WitnessError::MetricsMismatch {
                field: "execution_time"
            }
        );
    }

    #[test]
    fn dropped_op_rejected() {
        let (circuit, options) = testbed();
        let (mut witness, claimed) = compile_witnessed(&circuit, &options);
        // Dropping any op changes n_surgery_ops (and usually the timing);
        // the claim no longer matches the replay.
        witness.ops.pop();
        let err = verify_witness(&circuit, &options, &witness, &claimed, None).unwrap_err();
        assert!(
            matches!(err, WitnessError::MetricsMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn bad_witness_documents_rejected() {
        for text in [
            r#"{"keys":["0","0","0","0"],"target":"0","ops":[]}"#,
            r#"{"v":99,"keys":["0","0","0","0"],"target":"0","ops":[]}"#,
            r#"{"v":1,"keys":["0","0"],"target":"0","ops":[]}"#,
            r#"{"v":1,"keys":["0","0","0","0"],"target":"0","ops":[{"k":"banana"}]}"#,
            r#"{"v":1,"keys":["0","0","0","0"],"target":"0","ops":[{"k":"move","from":[0],"to":[0,1]}]}"#,
        ] {
            let v = Value::parse(text).unwrap();
            assert!(Witness::from_json(&v).is_err(), "accepted {text}");
        }
    }
}
