//! SVG rendering of compiled schedules: a Gantt chart with one lane per
//! program qubit plus one per distillation factory.
//!
//! Complements [`crate::export::to_csv`] (machine-readable) and
//! [`crate::trace::activity_strip`] (terminal): the SVG view is what you
//! attach to a paper or open in a browser to see where the schedule's time
//! goes — movement (grey) versus logical operations (colours) versus
//! distillation traffic (orange).

use crate::pipeline::CompiledProgram;
use ftqc_arch::SurgeryOp;
use std::fmt::Write as _;

/// Chart geometry constants (pixels).
const LANE_HEIGHT: f64 = 16.0;
const LANE_GAP: f64 = 4.0;
const LABEL_WIDTH: f64 = 64.0;
const CHART_WIDTH: f64 = 960.0;
const AXIS_HEIGHT: f64 = 24.0;

/// The fill colour for an operation kind.
fn color_of(op: &SurgeryOp) -> &'static str {
    match op {
        SurgeryOp::Move { .. } => "#9e9e9e",
        SurgeryOp::DeliverMagic { .. } => "#ff9800",
        SurgeryOp::Cnot { .. } => "#1e88e5",
        SurgeryOp::MergeZz { .. } | SurgeryOp::MergeXx { .. } => "#26a69a",
        SurgeryOp::Single { .. } => "#43a047",
        SurgeryOp::ConsumeMagic { .. } => "#d81b60",
        SurgeryOp::MeasureZ { .. } => "#6d4c41",
        SurgeryOp::PauliFrame { .. } => "#e0e0e0",
    }
}

/// Renders `program` as a standalone SVG document.
///
/// Lanes: one per program qubit (top) and one per factory (bottom, orange
/// delivery bars). Zero-duration frame updates are drawn as thin ticks so
/// they remain visible.
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
/// use ftqc_compiler::{svg::to_svg, Compiler, CompilerOptions};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1).t(1);
/// let p = Compiler::new(CompilerOptions::default()).compile(&c)?;
/// let svg = to_svg(&p);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.ends_with("</svg>\n"));
/// # Ok::<(), ftqc_compiler::CompileError>(())
/// ```
pub fn to_svg(program: &CompiledProgram) -> String {
    let n = program.lowered_circuit().num_qubits() as usize;
    let n_factories = program.compile_options().target.factories as usize;
    let lanes = n + n_factories;
    let makespan_d = program.metrics().execution_time.as_d().max(1e-9);
    let height = AXIS_HEIGHT + lanes as f64 * (LANE_HEIGHT + LANE_GAP);
    let width = LABEL_WIDTH + CHART_WIDTH;

    let x_of = |time_d: f64| LABEL_WIDTH + CHART_WIDTH * time_d / makespan_d;
    let y_of = |lane: usize| AXIS_HEIGHT + lane as f64 * (LANE_HEIGHT + LANE_GAP);

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="monospace" font-size="10">"#
    );
    let _ = writeln!(
        out,
        r##"<rect x="0" y="0" width="{width}" height="{height}" fill="#fafafa"/>"##
    );

    // Time axis: ten ticks.
    for i in 0..=10 {
        let t = makespan_d * i as f64 / 10.0;
        let x = x_of(t);
        let _ = writeln!(
            out,
            r##"<line x1="{x:.1}" y1="{AXIS_HEIGHT}" x2="{x:.1}" y2="{height}" stroke="#dddddd"/><text x="{x:.1}" y="14" text-anchor="middle" fill="#555555">{t:.0}d</text>"##
        );
    }

    // Lane labels.
    for q in 0..n {
        let y = y_of(q) + LANE_HEIGHT - 4.0;
        let _ = writeln!(
            out,
            r##"<text x="4" y="{y:.1}" fill="#333333">q{q}</text>"##
        );
    }
    for f in 0..n_factories {
        let y = y_of(n + f) + LANE_HEIGHT - 4.0;
        let _ = writeln!(
            out,
            r##"<text x="4" y="{y:.1}" fill="#b36b00">msf{f}</text>"##
        );
    }

    // Bars.
    for item in program.schedule().items() {
        let start = item.start.as_d();
        let dur = item.duration.as_d();
        let w = (CHART_WIDTH * dur / makespan_d).max(1.0);
        let color = color_of(&item.op.op);
        let title = format!("{} @{start:.1}d +{dur:.1}d", item.op.op);
        let mut draw = |lane: usize| {
            let x = x_of(start);
            let y = y_of(lane);
            let _ = writeln!(
                out,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{LANE_HEIGHT}" fill="{color}"><title>{title}</title></rect>"#
            );
        };
        if let (SurgeryOp::DeliverMagic { .. }, Some(f)) = (&item.op.op, item.op.factory) {
            if f < n_factories {
                draw(n + f);
            }
            continue;
        }
        for &q in &item.op.patches {
            if (q as usize) < n {
                draw(q as usize);
            }
        }
    }

    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, CompilerOptions};
    use ftqc_circuit::Circuit;

    fn render(c: &Circuit) -> String {
        let p = Compiler::new(CompilerOptions::default())
            .compile(c)
            .expect("compiles");
        to_svg(&p)
    }

    #[test]
    fn svg_is_well_formed() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).t(1).cnot(1, 2).measure(2);
        let svg = render(&c);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // Balanced rect tags (every rect is self-closing or title-closed).
        assert_eq!(
            svg.matches("<rect").count(),
            svg.matches("/rect>").count() + svg.matches("/>").count()
                - svg.matches("<line").count()
        );
    }

    #[test]
    fn lanes_cover_qubits_and_factories() {
        let mut c = Circuit::new(4);
        c.t(0).t(1);
        let svg = render(&c);
        for q in 0..4 {
            assert!(svg.contains(&format!(">q{q}</text>")), "missing lane q{q}");
        }
        assert!(svg.contains(">msf0</text>"), "missing factory lane");
    }

    #[test]
    fn op_kinds_get_distinct_colours() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).t(1).measure(1);
        let svg = render(&c);
        assert!(svg.contains("#43a047"), "single-qubit colour missing");
        assert!(svg.contains("#1e88e5"), "cnot colour missing");
        assert!(svg.contains("#d81b60"), "consume colour missing");
        assert!(svg.contains("#ff9800"), "delivery colour missing");
        assert!(svg.contains("#6d4c41"), "measure colour missing");
    }

    #[test]
    fn empty_schedule_renders() {
        let c = Circuit::new(2);
        let svg = render(&c);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains(">q0</text>"));
    }

    #[test]
    fn titles_describe_ops() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let svg = render(&c);
        assert!(svg.contains("<title>cnot"), "hover titles missing");
    }
}
