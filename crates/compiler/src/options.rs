//! Compiler configuration.
//!
//! Since the target redesign, everything that describes the *machine* —
//! bus provisioning, factories, latencies, port placement, capability
//! flags — lives in one [`TargetSpec`] under [`CompilerOptions::target`];
//! the remaining fields are *compilation policy* (heuristics, mapping,
//! accounting). The legacy builder setters (`routing_paths`, `factories`,
//! `timing`, …) are thin forwards into the target, so existing
//! configuration code keeps reading the same.

use crate::mapping::MappingStrategy;
use ftqc_arch::{BusSpec, PortPlacement, Target, TargetSpec, Ticks, TimingModel};
use serde::{Deserialize, Serialize};

/// How many magic states a non-Clifford rotation consumes.
///
/// The paper (and its Table I accounting) charges one state per `T`, `T†`
/// or non-Clifford `Rz`; a synthesis-aware policy can charge more states per
/// arbitrary-angle rotation for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TStatePolicy {
    /// States consumed by a T/T† gate (always ≥ 1).
    pub states_per_t: u32,
    /// States consumed by a non-Clifford `Rz` (the paper uses 1).
    pub states_per_rz: u32,
}

impl TStatePolicy {
    /// The paper's accounting: one state per non-Clifford rotation.
    pub fn one_per_rotation() -> Self {
        Self {
            states_per_t: 1,
            states_per_rz: 1,
        }
    }

    /// A synthesis-aware policy charging `k` states per arbitrary `Rz`
    /// (gridsynth-style synthesis sequences), still 1 per exact T.
    pub fn synthesis(k: u32) -> Self {
        Self {
            states_per_t: 1,
            states_per_rz: k.max(1),
        }
    }

    /// Derives the per-`Rz` charge from a synthesis count model
    /// (`ftqc_circuit::SynthesisModel`), e.g. Ross–Selinger at a target
    /// precision. Exact T gates still cost one state.
    ///
    /// # Example
    ///
    /// ```
    /// use ftqc_circuit::SynthesisModel;
    /// use ftqc_compiler::TStatePolicy;
    ///
    /// let p = TStatePolicy::from_synthesis_model(SynthesisModel::RossSelinger { eps: 1e-3 });
    /// assert_eq!(p.states_per_rz, 34);
    /// assert_eq!(p.states_per_t, 1);
    /// ```
    pub fn from_synthesis_model(model: ftqc_circuit::SynthesisModel) -> Self {
        Self::synthesis(model.generic_t_count())
    }
}

impl Default for TStatePolicy {
    fn default() -> Self {
        Self::one_per_rotation()
    }
}

/// Options controlling a [`Compiler`](crate::Compiler) run.
///
/// Builder-style setters return `self` so configurations read as one
/// expression; every knob corresponds to a paper parameter or a DESIGN.md
/// ablation. Machine knobs forward into [`CompilerOptions::target`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerOptions {
    /// The hardware target: layout family or bus mask, factory bank,
    /// timing model, and capability flags. Defaults to the paper machine
    /// ([`TargetSpec::paper`]).
    pub target: TargetSpec,
    /// Penalty weight of the Dijkstra cost model (§V.B). Default 5.
    pub penalty_weight: u64,
    /// Gate-dependent look-ahead configuration selection (§V.A). Default on.
    pub lookahead: bool,
    /// Redundant-move elimination in the scheduling stage (§V.D). Default on.
    pub eliminate_redundant_moves: bool,
    /// Initial mapping strategy. Default snake (preserves NN chains).
    pub mapping: MappingStrategy,
    /// Magic-state accounting policy.
    pub t_state_policy: TStatePolicy,
    /// Peephole circuit optimisation (inverse-pair cancellation, rotation
    /// merging) before lowering. Off by default: the paper compiles
    /// circuits as-is.
    pub optimize: bool,
    /// Re-time the routed program under this latency model instead of the
    /// target's timing. The router still plans with the target timing;
    /// only the scheduling stage (and its lower bound) uses the override,
    /// so a latency-model sweep through [`CompileSession`](crate::CompileSession)
    /// reuses the routed ops and re-runs scheduling alone. Default `None`
    /// (schedule with the target timing, the paper's behaviour).
    pub schedule_timing: Option<TimingModel>,
}

impl CompilerOptions {
    /// Replaces the whole hardware target.
    pub fn target(mut self, spec: TargetSpec) -> Self {
        self.target = spec;
        self
    }

    /// Compiles for a [`Target`] implementation (its spec).
    pub fn for_target(target: &dyn Target) -> Self {
        CompilerOptions::default().target(target.spec())
    }

    /// Sets the number of routing paths (replaces any explicit bus mask
    /// with the routing-path-parameterised family).
    pub fn routing_paths(mut self, r: u32) -> Self {
        self.target.bus = BusSpec::RoutingPaths(r);
        self
    }

    /// Sets the number of distillation factories.
    pub fn factories(mut self, n: u32) -> Self {
        self.target.factories = n;
        self
    }

    /// Sets the target's timing model.
    pub fn timing(mut self, t: TimingModel) -> Self {
        self.target.timing = t;
        self
    }

    /// Sets the magic-state production latency, keeping other timings.
    pub fn magic_production(mut self, t: Ticks) -> Self {
        self.target.timing.magic_production = t;
        self
    }

    /// Sets the Dijkstra penalty weight.
    pub fn penalty_weight(mut self, w: u64) -> Self {
        self.penalty_weight = w;
        self
    }

    /// Enables or disables gate-dependent look-ahead.
    pub fn lookahead(mut self, on: bool) -> Self {
        self.lookahead = on;
        self
    }

    /// Enables or disables redundant-move elimination.
    pub fn eliminate_redundant_moves(mut self, on: bool) -> Self {
        self.eliminate_redundant_moves = on;
        self
    }

    /// Sets the mapping strategy.
    pub fn mapping(mut self, m: MappingStrategy) -> Self {
        self.mapping = m;
        self
    }

    /// Sets the magic-state accounting policy.
    pub fn t_state_policy(mut self, p: TStatePolicy) -> Self {
        self.t_state_policy = p;
        self
    }

    /// Models unlimited magic-state supply.
    pub fn unbounded_magic(mut self, on: bool) -> Self {
        self.target.unbounded_magic = on;
        self
    }

    /// Enables or disables the peephole optimisation pre-pass.
    pub fn optimize(mut self, on: bool) -> Self {
        self.optimize = on;
        self
    }

    /// Sets the factory port placement policy.
    pub fn port_placement(mut self, p: PortPlacement) -> Self {
        self.target.port_placement = p;
        self
    }

    /// Sets the schedule-stage timing override (re-time without re-routing).
    pub fn schedule_timing(mut self, t: TimingModel) -> Self {
        self.schedule_timing = Some(t);
        self
    }

    /// The latency model the scheduling stage replays with:
    /// [`CompilerOptions::schedule_timing`] when set, otherwise the
    /// target's timing.
    pub fn effective_schedule_timing(&self) -> &TimingModel {
        self.schedule_timing.as_ref().unwrap_or(&self.target.timing)
    }
}

impl Default for CompilerOptions {
    fn default() -> Self {
        Self {
            target: TargetSpec::paper(),
            penalty_weight: 5,
            lookahead: true,
            eliminate_redundant_moves: true,
            mapping: MappingStrategy::Snake,
            t_state_policy: TStatePolicy::default(),
            optimize: false,
            schedule_timing: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_arch::PaperGrid;

    #[test]
    fn builder_chain() {
        let o = CompilerOptions::default()
            .routing_paths(6)
            .factories(3)
            .penalty_weight(2)
            .lookahead(false)
            .eliminate_redundant_moves(false)
            .unbounded_magic(true);
        assert_eq!(o.target.routing_paths(), 6);
        assert_eq!(o.target.factories, 3);
        assert_eq!(o.penalty_weight, 2);
        assert!(!o.lookahead);
        assert!(!o.eliminate_redundant_moves);
        assert!(o.target.unbounded_magic);
    }

    #[test]
    fn default_matches_paper() {
        let o = CompilerOptions::default();
        assert_eq!(o.target, TargetSpec::paper());
        assert_eq!(o.target.factories, 1);
        assert_eq!(o.target.timing.magic_production.as_d(), 11.0);
        assert!(o.lookahead);
        assert!(o.eliminate_redundant_moves);
        assert_eq!(o.t_state_policy.states_per_rz, 1);
    }

    #[test]
    fn target_setters_and_for_target() {
        let o = CompilerOptions::default().target(TargetSpec::sparse());
        assert_eq!(o.target, TargetSpec::sparse());
        assert_eq!(o.penalty_weight, 5, "policy knobs untouched");
        assert_eq!(
            CompilerOptions::for_target(&PaperGrid),
            CompilerOptions::default()
        );
        // A routing-path override replaces an explicit mask with the family.
        let o = CompilerOptions::default()
            .target(TargetSpec {
                bus: ftqc_arch::BusSpec::Explicit {
                    rows: vec![-1],
                    cols: vec![-1],
                },
                ..TargetSpec::paper()
            })
            .routing_paths(5);
        assert_eq!(o.target.bus, ftqc_arch::BusSpec::RoutingPaths(5));
    }

    #[test]
    fn schedule_timing_override() {
        let o = CompilerOptions::default();
        assert_eq!(o.schedule_timing, None);
        assert_eq!(*o.effective_schedule_timing(), o.target.timing);
        let fast = TimingModel {
            cnot: Ticks::from_d(1.0),
            ..TimingModel::paper()
        };
        let o = o.schedule_timing(fast);
        assert_eq!(o.effective_schedule_timing().cnot.as_d(), 1.0);
        assert_eq!(o.target.timing.cnot.as_d(), 2.0, "router timing untouched");
    }

    #[test]
    fn magic_production_shortcut() {
        let o = CompilerOptions::default().magic_production(Ticks::from_d(5.0));
        assert_eq!(o.target.timing.magic_production.as_d(), 5.0);
        assert_eq!(o.target.timing.cnot.as_d(), 2.0);
    }

    #[test]
    fn synthesis_policy() {
        let p = TStatePolicy::synthesis(15);
        assert_eq!(p.states_per_rz, 15);
        assert_eq!(p.states_per_t, 1);
        assert_eq!(TStatePolicy::synthesis(0).states_per_rz, 1);
    }
}
