//! Semantic schedule verification: replaying a compiled program back into a
//! logical circuit and checking it against the input program.
//!
//! [`crate::verify()`](crate::verify::verify) establishes that a schedule is *physically executable*
//! (placement constraints, cell exclusivity, factory spacing). This module
//! establishes that it *computes the right unitary*:
//!
//! 1. **Replay** — walk the schedule in issue order, tracking every data
//!    patch through its moves, and check that each logical operation's grid
//!    cells are exactly where its program qubits currently sit (a CNOT
//!    whose control cell holds the wrong qubit is a miscompile that the
//!    physical verifier cannot see).
//! 2. **Coverage** — every lowered gate is realised exactly once (magic
//!    gates exactly `TStatePolicy` times), in an order consistent with the
//!    circuit's dependency DAG.
//! 3. **Trace equivalence** — the realised gate sequence, projected onto
//!    each qubit, equals the lowered circuit's projection. Gates on
//!    disjoint qubits commute, so equal per-qubit projections imply the two
//!    words are equal in the trace monoid and hence as unitaries.
//! 4. **Unitary equivalence (defence in depth)** — for small registers the
//!    reconstructed circuit is checked amplitude-for-amplitude on the dense
//!    simulator; Clifford-only circuits are checked at any width by
//!    tableau comparison. These would catch a bug in the DAG construction
//!    itself, which the trace check trusts.

use crate::pipeline::{lower, prepare, CompiledProgram};
use ftqc_arch::{Coord, SingleQubitKind, SurgeryOp};
use ftqc_circuit::{circuits_equivalent, Circuit, CliffordTableau, Gate};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Largest register width checked on the dense state-vector simulator.
const STATEVECTOR_LIMIT: u32 = 12;

/// How a reconstructed circuit was proven equivalent to the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivalenceMethod {
    /// Per-qubit projection (trace monoid) equality — exact, any size.
    Trace,
    /// Clifford tableau comparison — exact, Clifford circuits only.
    Tableau,
    /// Dense state-vector comparison up to global phase — small registers.
    StateVector,
}

impl fmt::Display for EquivalenceMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceMethod::Trace => write!(f, "trace"),
            EquivalenceMethod::Tableau => write!(f, "tableau"),
            EquivalenceMethod::StateVector => write!(f, "state-vector"),
        }
    }
}

/// A semantic verification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SemanticsError {
    /// The program was compiled from a different circuit than the one given.
    WrongCircuit,
    /// An operation's kind does not match the gate it claims to realise.
    GateMismatch {
        /// Index in the schedule.
        index: usize,
        /// What the lowered gate required.
        expected: String,
        /// What the schedule contained.
        found: String,
    },
    /// A logical operation ran at cells that do not hold its operands.
    OperandMismatch {
        /// Index in the schedule.
        index: usize,
        /// The program qubit whose position disagrees.
        qubit: u32,
        /// Where the replay says the qubit is.
        tracked: Coord,
        /// Where the operation ran.
        used: Coord,
    },
    /// A move departs from a cell that does not hold the claimed qubit, or
    /// arrives at a cell another data qubit occupies.
    BadMove {
        /// Index in the schedule.
        index: usize,
        /// Description of the violation.
        reason: String,
    },
    /// An operation references no originating gate, or a gate out of range.
    Untagged {
        /// Index in the schedule.
        index: usize,
    },
    /// A gate was realised before one of its DAG predecessors.
    OrderViolation {
        /// The gate realised too early.
        gate: usize,
        /// The unrealised predecessor.
        missing_pred: usize,
    },
    /// A non-magic gate appeared as more than one realising operation.
    DoubleRealization {
        /// The gate index.
        gate: usize,
    },
    /// Gates never realised, or a magic gate consuming the wrong number of
    /// states under the program's `TStatePolicy`.
    Coverage {
        /// Description of the gap.
        reason: String,
    },
    /// Per-qubit projections differ: the realised order is not a valid
    /// commutation-only reordering of the input.
    TraceMismatch {
        /// The qubit whose gate sequence differs.
        qubit: u32,
    },
    /// The reconstructed circuit failed a unitary-equivalence check.
    NotEquivalent {
        /// Which oracle rejected it.
        method: EquivalenceMethod,
    },
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::WrongCircuit => {
                write!(f, "program was compiled from a different circuit")
            }
            SemanticsError::GateMismatch {
                index,
                expected,
                found,
            } => {
                write!(
                    f,
                    "op {index}: gate requires {expected}, schedule has {found}"
                )
            }
            SemanticsError::OperandMismatch {
                index,
                qubit,
                tracked,
                used,
            } => write!(
                f,
                "op {index}: qubit {qubit} is at {tracked} but the operation used {used}"
            ),
            SemanticsError::BadMove { index, reason } => write!(f, "op {index}: {reason}"),
            SemanticsError::Untagged { index } => {
                write!(f, "op {index} has no valid originating gate")
            }
            SemanticsError::OrderViolation { gate, missing_pred } => write!(
                f,
                "gate {gate} realised before its predecessor {missing_pred}"
            ),
            SemanticsError::DoubleRealization { gate } => {
                write!(f, "gate {gate} realised more than once")
            }
            SemanticsError::Coverage { reason } => write!(f, "coverage: {reason}"),
            SemanticsError::TraceMismatch { qubit } => {
                write!(
                    f,
                    "realised gate order on qubit {qubit} differs from the input"
                )
            }
            SemanticsError::NotEquivalent { method } => {
                write!(f, "reconstructed circuit rejected by the {method} oracle")
            }
        }
    }
}

impl Error for SemanticsError {}

/// What the semantic verifier established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticsReport {
    /// Logical gates realised.
    pub gates_realized: usize,
    /// Data-patch moves replayed.
    pub moves_replayed: usize,
    /// Magic states consumed.
    pub magic_consumed: usize,
    /// Every oracle that accepted the reconstruction (always contains
    /// [`EquivalenceMethod::Trace`] on success).
    pub methods: Vec<EquivalenceMethod>,
}

impl fmt::Display for SemanticsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {} moves, {} magic states; oracles: ",
            self.gates_realized, self.moves_replayed, self.magic_consumed
        )?;
        for (i, m) in self.methods.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

/// Replays `program`'s schedule and proves it equivalent to `original`.
///
/// # Errors
///
/// Returns the first semantic violation found; see [`SemanticsError`].
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
/// use ftqc_compiler::{check_semantics, Compiler, CompilerOptions};
///
/// let mut c = Circuit::new(4);
/// c.h(0).cnot(0, 1).t(1).cnot(1, 2).cnot(2, 3).measure(3);
/// let p = Compiler::new(CompilerOptions::default()).compile(&c)?;
/// let report = check_semantics(&c, &p).expect("schedule is semantically sound");
/// assert_eq!(report.gates_realized, c.len());
/// # Ok::<(), ftqc_compiler::CompileError>(())
/// ```
pub fn check_semantics(
    original: &Circuit,
    program: &CompiledProgram,
) -> Result<SemanticsReport, SemanticsError> {
    let lowered = program.lowered_circuit();
    if lower(&prepare(original, program.compile_options())).gates() != lowered.gates() {
        return Err(SemanticsError::WrongCircuit);
    }
    let replayed = replay(program)?;
    let reconstructed = coverage_and_order(program, &replayed)?;
    let mut methods = vec![check_trace(lowered, &reconstructed)?];

    // Defence in depth: unitary oracles where tractable.
    let measured_stripped = |c: &Circuit| {
        let mut out = Circuit::new(c.num_qubits());
        out.append(c.iter().filter(|g| !g.is_measurement()).copied());
        out
    };
    let a = measured_stripped(lowered);
    let b = measured_stripped(&reconstructed);
    if a.iter().all(Gate::is_clifford) {
        let tab = |c: &Circuit| {
            let mut t = CliffordTableau::identity(c.num_qubits() as usize);
            for g in c.iter() {
                t.apply(g);
            }
            t
        };
        if tab(&a) != tab(&b) {
            return Err(SemanticsError::NotEquivalent {
                method: EquivalenceMethod::Tableau,
            });
        }
        methods.push(EquivalenceMethod::Tableau);
    } else if lowered.num_qubits() <= STATEVECTOR_LIMIT {
        if !circuits_equivalent(&a, &b, 1e-9) {
            return Err(SemanticsError::NotEquivalent {
                method: EquivalenceMethod::StateVector,
            });
        }
        methods.push(EquivalenceMethod::StateVector);
    }

    Ok(SemanticsReport {
        gates_realized: lowered.len(),
        moves_replayed: replayed.moves,
        magic_consumed: replayed.magic,
        methods,
    })
}

/// The outcome of the position-tracking pass.
struct Replayed {
    /// `(schedule index, gate index)` of every realising (non-movement)
    /// operation, in issue order.
    realizations: Vec<(usize, usize)>,
    moves: usize,
    magic: usize,
}

/// Pass 1: track patch positions and check geometric operands.
fn replay(program: &CompiledProgram) -> Result<Replayed, SemanticsError> {
    let lowered = program.lowered_circuit();
    let n = lowered.num_qubits() as usize;
    let mut pos: Vec<Coord> = (0..n as u32)
        .map(|q| program.initial_mapping().cell_of(q))
        .collect();
    let mut occ: HashMap<Coord, u32> = pos
        .iter()
        .enumerate()
        .map(|(q, &c)| (c, q as u32))
        .collect();

    let mut realizations = Vec::new();
    let mut moves = 0usize;
    let mut magic = 0usize;

    for (index, item) in program.schedule().items().iter().enumerate() {
        let routed = &item.op;
        let gate_idx = routed.gate;
        let require_gate = || {
            gate_idx
                .filter(|&g| g < lowered.len())
                .ok_or(SemanticsError::Untagged { index })
        };

        // Position check helper: qubit q must sit at `used`.
        let check_at = |q: u32, used: Coord, pos: &[Coord]| {
            let tracked = pos[q as usize];
            if tracked == used {
                Ok(())
            } else {
                Err(SemanticsError::OperandMismatch {
                    index,
                    qubit: q,
                    tracked,
                    used,
                })
            }
        };

        match &routed.op {
            SurgeryOp::Move { from, to } => {
                moves += 1;
                let q = *routed
                    .patches
                    .first()
                    .ok_or_else(|| SemanticsError::BadMove {
                        index,
                        reason: "move carries no qubit".into(),
                    })?;
                if occ.get(from) != Some(&q) {
                    return Err(SemanticsError::BadMove {
                        index,
                        reason: format!("move of q{q} departs {from}, which it does not occupy"),
                    });
                }
                if let Some(&other) = occ.get(to) {
                    return Err(SemanticsError::BadMove {
                        index,
                        reason: format!("move of q{q} lands on {to}, occupied by q{other}"),
                    });
                }
                occ.remove(from);
                occ.insert(*to, q);
                pos[q as usize] = *to;
            }
            SurgeryOp::DeliverMagic { .. } => {
                // Deliveries stage a resource; they touch no data patch.
            }
            SurgeryOp::ConsumeMagic { target, .. } => {
                magic += 1;
                let g = require_gate()?;
                let gate = &lowered.gates()[g];
                if !gate.is_magic() {
                    return Err(SemanticsError::GateMismatch {
                        index,
                        expected: gate.to_string(),
                        found: "magic-state consumption".into(),
                    });
                }
                let q = gate.qubits().next().expect("magic gates are single-qubit");
                check_at(q, *target, &pos)?;
                realizations.push((index, g));
            }
            SurgeryOp::Cnot {
                control, target, ..
            } => {
                let g = require_gate()?;
                let gate = &lowered.gates()[g];
                let Gate::Cnot {
                    control: gc,
                    target: gt,
                } = *gate
                else {
                    return Err(SemanticsError::GateMismatch {
                        index,
                        expected: gate.to_string(),
                        found: "cnot".into(),
                    });
                };
                check_at(gc, *control, &pos)?;
                check_at(gt, *target, &pos)?;
                realizations.push((index, g));
            }
            SurgeryOp::Single { kind, cell, .. } => {
                let g = require_gate()?;
                let gate = &lowered.gates()[g];
                let expected = single_kind_of(gate);
                if expected != Some(*kind) {
                    return Err(SemanticsError::GateMismatch {
                        index,
                        expected: gate.to_string(),
                        found: format!("single-qubit {}", kind.name()),
                    });
                }
                let q = gate.qubits().next().expect("single-qubit gate");
                check_at(q, *cell, &pos)?;
                realizations.push((index, g));
            }
            SurgeryOp::PauliFrame { cell } => {
                let g = require_gate()?;
                let gate = &lowered.gates()[g];
                if !is_frame_update(gate) {
                    return Err(SemanticsError::GateMismatch {
                        index,
                        expected: gate.to_string(),
                        found: "pauli-frame update".into(),
                    });
                }
                let q = gate.qubits().next().expect("frame gates are single-qubit");
                check_at(q, *cell, &pos)?;
                realizations.push((index, g));
            }
            SurgeryOp::MeasureZ { cell } => {
                let g = require_gate()?;
                let gate = &lowered.gates()[g];
                let Gate::Measure(q) = *gate else {
                    return Err(SemanticsError::GateMismatch {
                        index,
                        expected: gate.to_string(),
                        found: "measure".into(),
                    });
                };
                check_at(q, *cell, &pos)?;
                realizations.push((index, g));
            }
            SurgeryOp::MergeZz { .. } | SurgeryOp::MergeXx { .. } => {
                // The greedy engine never emits bare merges; a schedule that
                // contains one was not produced by this compiler.
                return Err(SemanticsError::GateMismatch {
                    index,
                    expected: "no bare merge".into(),
                    found: "merge".into(),
                });
            }
        }
    }

    Ok(Replayed {
        realizations,
        moves,
        magic,
    })
}

/// Pass 2: every gate realised the right number of times, in DAG order;
/// returns the reconstructed logical circuit (first-realisation order).
fn coverage_and_order(
    program: &CompiledProgram,
    replayed: &Replayed,
) -> Result<Circuit, SemanticsError> {
    let lowered = program.lowered_circuit();
    let dag = lowered.dag();
    let policy = program.compile_options().t_state_policy;

    let mut times_realized = vec![0u32; lowered.len()];
    let mut order: Vec<usize> = Vec::with_capacity(lowered.len());
    for &(_, g) in &replayed.realizations {
        if times_realized[g] == 0 {
            for &p in &dag.node(g).preds {
                if times_realized[p] == 0 {
                    return Err(SemanticsError::OrderViolation {
                        gate: g,
                        missing_pred: p,
                    });
                }
            }
            order.push(g);
        } else if !lowered.gates()[g].is_magic() {
            return Err(SemanticsError::DoubleRealization { gate: g });
        }
        times_realized[g] += 1;
    }

    for (g, gate) in lowered.gates().iter().enumerate() {
        let expected = match gate {
            Gate::T(_) | Gate::Tdg(_) => policy.states_per_t.max(1),
            Gate::Rz(_, a) if !a.is_clifford() => policy.states_per_rz.max(1),
            _ => 1,
        };
        if times_realized[g] != expected {
            return Err(SemanticsError::Coverage {
                reason: format!(
                    "gate {g} ({}) realised {} time(s), expected {expected}",
                    gate, times_realized[g]
                ),
            });
        }
    }

    let mut reconstructed = Circuit::new(lowered.num_qubits());
    reconstructed.append(order.iter().map(|&g| lowered.gates()[g]));
    Ok(reconstructed)
}

/// Pass 3: per-qubit projections agree (trace-monoid equality).
fn check_trace(
    lowered: &Circuit,
    reconstructed: &Circuit,
) -> Result<EquivalenceMethod, SemanticsError> {
    for q in 0..lowered.num_qubits() {
        let proj = |c: &Circuit| -> Vec<Gate> {
            c.iter()
                .filter(|g| g.qubits().any(|x| x == q))
                .copied()
                .collect()
        };
        if proj(lowered) != proj(reconstructed) {
            return Err(SemanticsError::TraceMismatch { qubit: q });
        }
    }
    Ok(EquivalenceMethod::Trace)
}

/// The `SingleQubitKind` a gate lowers to, if it lowers to a `Single` op.
fn single_kind_of(gate: &Gate) -> Option<SingleQubitKind> {
    match gate {
        Gate::H(_) => Some(SingleQubitKind::H),
        Gate::S(_) => Some(SingleQubitKind::S),
        Gate::Sdg(_) => Some(SingleQubitKind::Sdg),
        Gate::Sx(_) => Some(SingleQubitKind::Sx),
        Gate::Sxdg(_) => Some(SingleQubitKind::Sxdg),
        Gate::Rz(_, a) if a.is_clifford() => {
            let halves = (a.turns_of_pi() * 2.0).round() as i64;
            match halves.rem_euclid(4) {
                1 => Some(SingleQubitKind::S),
                3 => Some(SingleQubitKind::Sdg),
                _ => None, // frame update
            }
        }
        _ => None,
    }
}

/// Whether a gate executes as a zero-cost Pauli-frame update.
fn is_frame_update(gate: &Gate) -> bool {
    match gate {
        Gate::X(_) | Gate::Y(_) | Gate::Z(_) => true,
        Gate::Rz(_, a) if a.is_clifford() => {
            let halves = (a.turns_of_pi() * 2.0).round() as i64;
            matches!(halves.rem_euclid(4), 0 | 2)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, CompilerOptions, TStatePolicy};
    use ftqc_circuit::Angle;

    fn compile(c: &Circuit, o: CompilerOptions) -> CompiledProgram {
        Compiler::new(o).compile(c).expect("compiles")
    }

    #[test]
    fn clifford_circuit_verifies_with_tableau() {
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 1).s(1).cnot(1, 2).sx(2).cnot(2, 3);
        let p = compile(&c, CompilerOptions::default());
        let r = check_semantics(&c, &p).expect("sound");
        assert_eq!(r.gates_realized, c.len());
        assert!(r.methods.contains(&EquivalenceMethod::Trace));
        assert!(r.methods.contains(&EquivalenceMethod::Tableau));
    }

    #[test]
    fn t_circuit_verifies_with_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cnot(0, 1).tdg(1).cnot(1, 2).t(2);
        let p = compile(&c, CompilerOptions::default());
        let r = check_semantics(&c, &p).expect("sound");
        assert!(r.methods.contains(&EquivalenceMethod::StateVector));
        assert_eq!(r.magic_consumed, 3);
    }

    #[test]
    fn lowered_gates_verify() {
        // CZ and SWAP are lowered; the replay works on the lowered circuit.
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).swap(1, 2).measure(2);
        let p = compile(&c, CompilerOptions::default());
        let r = check_semantics(&c, &p).expect("sound");
        // 1 H + (H CX H) + 3 CX + 1 measure = 8 lowered gates.
        assert_eq!(r.gates_realized, 8);
    }

    #[test]
    fn rz_clifford_angles_verify() {
        let mut c = Circuit::new(2);
        c.rz(0, Angle::new(0.5)) // S
            .rz(1, Angle::new(1.0)) // Z frame
            .rz(0, Angle::new(-0.5)) // S†
            .rz(1, Angle::new(2.0)); // identity frame
        let p = compile(&c, CompilerOptions::default());
        check_semantics(&c, &p).expect("sound");
    }

    #[test]
    fn synthesis_policy_consumes_multiple_states() {
        let mut c = Circuit::new(2);
        c.rz(0, Angle::new(0.1)).cnot(0, 1);
        let o = CompilerOptions::default().t_state_policy(TStatePolicy::synthesis(3));
        let p = compile(&c, o);
        let r = check_semantics(&c, &p).expect("sound");
        assert_eq!(r.magic_consumed, 3);
    }

    #[test]
    fn wrong_circuit_rejected() {
        let mut a = Circuit::new(2);
        a.h(0).cnot(0, 1);
        let mut b = Circuit::new(2);
        b.h(1).cnot(0, 1);
        let p = compile(&a, CompilerOptions::default());
        assert_eq!(
            check_semantics(&b, &p).unwrap_err(),
            SemanticsError::WrongCircuit
        );
    }

    #[test]
    fn condensed_matter_benchmark_verifies() {
        use ftqc_benchmarks::condensed;
        let c = condensed::ising_2d(4); // 4x4 = 16 qubits
        let p = compile(&c, CompilerOptions::default().routing_paths(4));
        let r = check_semantics(&c, &p).expect("Ising 4x4 schedule is sound");
        assert_eq!(r.gates_realized, crate::pipeline::lower(&c).len());
        assert!(r.methods.contains(&EquivalenceMethod::Trace));
    }

    #[test]
    fn report_displays() {
        let r = SemanticsReport {
            gates_realized: 10,
            moves_replayed: 4,
            magic_consumed: 2,
            methods: vec![EquivalenceMethod::Trace, EquivalenceMethod::StateVector],
        };
        let s = r.to_string();
        assert!(s.contains("10 gates"));
        assert!(s.contains("trace"));
        assert!(s.contains("state-vector"));
    }

    #[test]
    fn error_displays() {
        let errs: Vec<SemanticsError> = vec![
            SemanticsError::WrongCircuit,
            SemanticsError::GateMismatch {
                index: 1,
                expected: "h q[0]".into(),
                found: "cnot".into(),
            },
            SemanticsError::OperandMismatch {
                index: 2,
                qubit: 3,
                tracked: Coord::new(0, 0),
                used: Coord::new(1, 1),
            },
            SemanticsError::BadMove {
                index: 3,
                reason: "x".into(),
            },
            SemanticsError::Untagged { index: 4 },
            SemanticsError::OrderViolation {
                gate: 5,
                missing_pred: 4,
            },
            SemanticsError::DoubleRealization { gate: 6 },
            SemanticsError::Coverage {
                reason: "gap".into(),
            },
            SemanticsError::TraceMismatch { qubit: 7 },
            SemanticsError::NotEquivalent {
                method: EquivalenceMethod::Tableau,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
