//! The `ftqc` compiler: the paper's primary contribution.
//!
//! A three-stage pipeline (paper §V) turning a Clifford+T [`Circuit`] into a
//! timed lattice-surgery schedule on a routing-path-parameterised layout:
//!
//! 1. **Mapping** — program qubits are assigned home cells on the 2D grid
//!    (row-major or snake order, preserving nearest-neighbour structure).
//! 2. **Routing** — a greedy engine consumes the circuit DAG front layer,
//!    planning qubit movements with penalty-weighted Dijkstra, clearing
//!    ancilla space with space search, choosing CNOT configurations with
//!    gate-dependent look-ahead, and routing magic states from distillation
//!    factories to their consumers.
//! 3. **Scheduling** — redundant move pairs are cancelled and the operation
//!    sequence is re-timed against per-cell resource timelines, yielding
//!    the execution time, the unit-cost execution time, and the spacetime
//!    metrics of the evaluation.
//!
//! The pipeline is exposed two ways: the one-shot [`Compiler::compile`]
//! façade, and the staged [`CompileSession`] (prepare → lower → map →
//! schedule) whose typed artifacts carry stable fingerprints, checkpoint
//! into a stage-keyed [`StageCache`], and report per-stage progress to
//! [`TraceHook`]s — so sweeps that vary only downstream options re-run
//! only the stages that changed.
//!
//! # Example
//!
//! ```
//! use ftqc_circuit::Circuit;
//! use ftqc_compiler::{Compiler, CompilerOptions};
//!
//! let mut c = Circuit::new(4);
//! c.h(0).cnot(0, 1).t(1).cnot(1, 2).t(3);
//! let compiled = Compiler::new(CompilerOptions::default().routing_paths(4))
//!     .compile(&c)?;
//! let m = compiled.metrics();
//! assert!(m.execution_time >= m.lower_bound);
//! assert_eq!(m.n_magic_states, 2);
//! # Ok::<(), ftqc_compiler::CompileError>(())
//! ```
//!
//! [`Circuit`]: ftqc_circuit::Circuit

pub mod analysis;
pub mod codec;
pub mod differential;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod explore;
pub mod export;
pub mod mapping;
pub mod metrics;
pub mod options;
pub mod pipeline;
pub mod redundant;
pub mod routed;
pub mod semantics;
pub mod session;
pub mod svg;
pub mod targets;
pub mod timer;
pub mod trace;
pub mod verify;
pub mod witness;

pub use analysis::{diagnose, Bottleneck, BottleneckReport};
pub use codec::{
    route_counters_from_json, route_counters_to_json, target_digest, target_from_json,
    target_to_json,
};
pub use differential::{
    CompileDelta, DeltaKind, DifferentialCompiler, DEFAULT_CHECKPOINT_EVERY, DEFAULT_TIMER_EVERY,
};
pub use engine::{
    route_circuit, route_circuit_with_workers, route_workers, EngineCheckpoint, RoutedProgram,
};
pub use error::CompileError;
pub use estimate::{
    estimate_resources, EstimateError, EstimateRequest, Objective, ResourceEstimate,
};
pub use explore::{
    best_by_volume, compile_cached, explore, explore_parallel, explore_parallel_with,
    explore_session, explore_targets, pareto_front, target_sweep_options, DesignPoint, TargetSweep,
};
pub use export::{to_csv, utilization, UtilizationStats};
pub use ftqc_route::{RouteCounters, RouterMode, RouterParts};
pub use mapping::{InitialMapping, MappingStrategy};
pub use metrics::Metrics;
pub use options::{CompilerOptions, TStatePolicy};
pub use pipeline::{lower, prepare, CompiledProgram, Compiler};
pub use redundant::eliminate_redundant_moves;
pub use routed::RoutedOp;
pub use semantics::{check_semantics, EquivalenceMethod, SemanticsError, SemanticsReport};
pub use session::{
    stage_outcome, CompileSession, Lowered, Mapped, Prepared, Stage, StageCache, StageCacheStats,
    StageEvent, StageRun, StageTrace, TraceHook, DEFAULT_STAGE_CACHE_CAPACITY,
};
pub use targets::{apply_job_target, resolve_target_ref};
pub use timer::{time_ops, CostKind, Timer};
pub use trace::{activity_strip, kind_breakdown, Activity, KindBreakdown};
pub use verify::{verify, VerifyError};
pub use witness::{extract_witness, verify_witness, Witness, WitnessError, WITNESS_VERSION};
