//! The staged compile pipeline: typed stage artifacts, stage-keyed
//! caching, and per-stage trace hooks.
//!
//! [`CompileSession`] splits [`Compiler::compile`](crate::Compiler::compile)
//! into four explicit stages, each returning a typed artifact with a stable
//! fingerprint:
//!
//! ```text
//! CompileSession::new(options)
//!     .prepare(&circuit)? -> Prepared   (front-end optimisation pre-pass)
//!     .lower()            -> Lowered    (gate-set lowering)
//!     .map()?             -> Mapped     (layout + placement + routing)
//!     .schedule()?        -> CompiledProgram  (move elimination + re-timing)
//! ```
//!
//! Each stage consults a [`StageCache`] keyed on *exactly* the inputs that
//! stage consumes: the upstream artifact's fingerprint combined with the
//! digest of the option subset the stage reads. A sweep that varies only
//! scheduling knobs (`eliminate_redundant_moves`,
//! [`CompilerOptions::schedule_timing`]) therefore reuses the routed-op
//! artifact — the dominant compile cost — and re-runs scheduling alone,
//! while a routing-grid sweep (`routing_paths` × `factories`) still reuses
//! the prepare and lower artifacts.
//!
//! Fingerprints are content-addressed where possible: the lower stage keys
//! on the *prepared circuit's* canonical gate sequence, so `optimize = true`
//! on a circuit the peephole pass cannot improve shares artifacts with
//! `optimize = false`.
//!
//! [`TraceHook`] observers see one [`StageEvent`] per stage (fingerprint,
//! cache provenance, wall-clock micros); the CLI's `--explain` report and
//! the service's stage accounting are built on them.

use crate::engine::route_circuit;
use crate::error::CompileError;
use crate::mapping::InitialMapping;
use crate::metrics::{lower_bound, Metrics};
use crate::options::CompilerOptions;
use crate::pipeline::{lower, prepare, CompiledProgram};
use crate::redundant::eliminate_redundant_moves;
use crate::routed::RoutedOp;
use crate::timer::{time_ops, CostKind};
use ftqc_arch::{Layout, Ticks};
use ftqc_circuit::Circuit;
use ftqc_route::incremental::{RouteCounters, RouterMode};
use ftqc_service::json::{ToJson, Value};
use ftqc_service::{fingerprint, CacheStats, SharedCache, StageOutcome};
use ftqc_sim::Schedule;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-stage capacity of a [`StageCache`]. Stage artifacts (routed
/// op sequences, schedules) are far heavier than the metrics the whole-job
/// cache holds, so the default tier is smaller.
pub const DEFAULT_STAGE_CACHE_CAPACITY: usize = 256;

/// The four pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Front-end preparation (the peephole optimisation pre-pass).
    Prepare,
    /// Gate-set lowering (`CZ → H·CX·H`, `SWAP → CX·CX·CX`).
    Lower,
    /// Layout construction, initial placement, and greedy routing.
    Map,
    /// Redundant-move elimination and resource re-timing.
    Schedule,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 4] = [Stage::Prepare, Stage::Lower, Stage::Map, Stage::Schedule];

    /// The wire/display name (`"prepare"`, `"lower"`, `"map"`,
    /// `"schedule"`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Prepare => "prepare",
            Stage::Lower => "lower",
            Stage::Map => "map",
            Stage::Schedule => "schedule",
        }
    }

    /// Parses a wire name back to a stage.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|stage| stage.name() == s)
    }

    /// [`Stage::parse`] with the canonical error message — the single
    /// wording every layer (CLI, client, server, service bridge) shows
    /// for an unknown stage name.
    ///
    /// # Errors
    ///
    /// The rendered "unknown stage" message listing the valid names.
    pub fn parse_or_err(s: &str) -> Result<Stage, String> {
        Stage::parse(s)
            .ok_or_else(|| format!("unknown stage {s:?} (use prepare|lower|map|schedule)"))
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finished pipeline stage, as seen by a [`TraceHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEvent {
    /// Which stage finished.
    pub stage: Stage,
    /// The stage artifact's cache key / fingerprint.
    pub fingerprint: u64,
    /// Whether the artifact came from the stage cache.
    pub cached: bool,
    /// Wall-clock microseconds the stage took (lookup included).
    pub micros: u64,
}

/// Observer of per-stage progress. Implementations must be cheap and
/// panic-free; they run inline on the compiling thread.
pub trait TraceHook: Send + Sync {
    /// Called once per successfully finished stage, in execution order.
    fn on_stage(&self, event: &StageEvent);
}

/// A [`TraceHook`] that records every event — the collector behind the
/// CLI's `--explain` report.
#[derive(Debug, Default)]
pub struct StageTrace {
    events: Mutex<Vec<StageEvent>>,
}

impl StageTrace {
    /// A fresh shared collector.
    pub fn new() -> Arc<Self> {
        Arc::new(StageTrace::default())
    }

    /// The events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<StageEvent> {
        self.events.lock().expect("trace lock").clone()
    }
}

impl TraceHook for StageTrace {
    fn on_stage(&self, event: &StageEvent) {
        self.events.lock().expect("trace lock").push(*event);
    }
}

// Stage artifacts. Each is a pure function of its cache key, so they can be
// shared (behind `Arc`) between sessions, worker threads, and server
// requests. Per-job context (the input gate count, the caller's options)
// deliberately lives *outside* the artifacts, in the typed stage structs.

/// The prepare stage's artifact: the (possibly peephole-optimised) circuit.
#[derive(Debug)]
pub struct PreparedArt {
    circuit: Circuit,
    /// Canonical content digest of `circuit` — the lower stage's key.
    content_fp: u64,
}

/// The lower stage's artifact: the surgery-gate-set circuit.
#[derive(Debug)]
pub struct LoweredArt {
    circuit: Circuit,
    /// Canonical content digest of `circuit` — half of the map stage's key.
    content_fp: u64,
}

/// The map stage's artifact: layout, placement, the routed op sequence,
/// and the incremental router's activity counters for that routing run.
#[derive(Debug)]
pub struct MappedArt {
    layout: Layout,
    mapping: InitialMapping,
    factory_patches: u32,
    ops: Vec<RoutedOp>,
    n_magic_states: u64,
    route: RouteCounters,
}

/// The schedule stage's artifact: the timed schedules and op accounting.
#[derive(Debug, Clone)]
pub struct ScheduledArt {
    schedule: Schedule<RoutedOp>,
    unit_makespan: Ticks,
    n_surgery_ops: usize,
    n_moves: usize,
    n_moves_eliminated: usize,
}

/// Per-stage hit/miss/insertion counters of a [`StageCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCacheStats {
    /// Prepare-tier counters.
    pub prepare: CacheStats,
    /// Lower-tier counters.
    pub lower: CacheStats,
    /// Map-tier counters.
    pub map: CacheStats,
    /// Schedule-tier counters.
    pub schedule: CacheStats,
}

impl StageCacheStats {
    /// The counters of one stage's tier.
    pub fn for_stage(&self, stage: Stage) -> CacheStats {
        match stage {
            Stage::Prepare => self.prepare,
            Stage::Lower => self.lower,
            Stage::Map => self.map,
            Stage::Schedule => self.schedule,
        }
    }

    /// Hits summed across all four tiers.
    pub fn hits(&self) -> u64 {
        Stage::ALL.iter().map(|s| self.for_stage(*s).hits).sum()
    }

    /// Misses summed across all four tiers.
    pub fn misses(&self) -> u64 {
        Stage::ALL.iter().map(|s| self.for_stage(*s).misses).sum()
    }
}

/// A cloneable, thread-safe, stage-keyed artifact cache: one in-memory
/// [`SharedCache`] tier per pipeline stage, with per-stage counters.
///
/// Share one `StageCache` across sessions (the HTTP server holds a
/// process-wide one) so concurrent compiles warm each other stage by
/// stage. Artifacts are memory-only: unlike the metrics cache there is no
/// file tier — routed-op sequences are large and cheap to drop.
#[derive(Debug, Clone)]
pub struct StageCache {
    prepare: SharedCache<Arc<PreparedArt>>,
    lower: SharedCache<Arc<LoweredArt>>,
    map: SharedCache<Arc<MappedArt>>,
    schedule: SharedCache<Arc<ScheduledArt>>,
    /// Cumulative incremental-router counters across every map stage that
    /// actually routed through this cache (misses only — a map-tier hit
    /// runs no routing). This is what `/v1/cache/stats` and `/metrics`
    /// report process-wide.
    route_totals: Arc<Mutex<RouteCounters>>,
}

impl StageCache {
    /// A cache holding at most `capacity` artifacts per stage tier.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        StageCache {
            prepare: SharedCache::in_memory(capacity),
            lower: SharedCache::in_memory(capacity),
            map: SharedCache::in_memory(capacity),
            schedule: SharedCache::in_memory(capacity),
            route_totals: Arc::new(Mutex::new(RouteCounters::default())),
        }
    }

    /// Folds one routing run's counters into the cumulative totals.
    fn add_route(&self, counters: RouteCounters) {
        let mut totals = self.route_totals.lock().expect("route totals lock");
        *totals = totals.merged(counters);
    }

    /// Cumulative router counters over every routing run this cache saw.
    pub fn route_stats(&self) -> RouteCounters {
        *self.route_totals.lock().expect("route totals lock")
    }

    /// Whether the named stage's tier holds `key` (no counter or LRU
    /// effects — this is a probe, not a lookup).
    pub fn contains(&self, stage: Stage, key: u64) -> bool {
        match stage {
            Stage::Prepare => self.prepare.contains(key),
            Stage::Lower => self.lower.contains(key),
            Stage::Map => self.map.contains(key),
            Stage::Schedule => self.schedule.contains(key),
        }
    }

    /// The per-stage counters so far.
    pub fn stats(&self) -> StageCacheStats {
        StageCacheStats {
            prepare: self.prepare.stats(),
            lower: self.lower.stats(),
            map: self.map.stats(),
            schedule: self.schedule.stats(),
        }
    }
}

impl Default for StageCache {
    fn default() -> Self {
        Self::new(DEFAULT_STAGE_CACHE_CAPACITY)
    }
}

// Option subsets each stage actually reads; the union covers every
// `CompilerOptions` field (`schedule_timing` belongs to the schedule
// stage, folded into the effective timing below). The `"target"` key is
// the codec's extension field — present only for targets the flat legacy
// fields cannot express (explicit bus masks, capability flags) — so the
// target digest is part of the map-stage key exactly when it matters.
const PREPARE_OPTION_KEYS: &[&str] = &["optimize"];
const MAP_OPTION_KEYS: &[&str] = &[
    "routing_paths",
    "factories",
    "timing",
    "penalty_weight",
    "lookahead",
    "mapping",
    "t_state_policy",
    "port_placement",
    "unbounded_magic",
    "target",
];

/// Digest of the named fields of the canonical options rendering.
fn subset_fp(options: &CompilerOptions, keys: &[&str]) -> u64 {
    let Value::Obj(fields) = options.to_json() else {
        unreachable!("CompilerOptions renders as an object");
    };
    let filtered: Vec<_> = fields
        .into_iter()
        .filter(|(k, _)| keys.contains(&k.as_str()))
        .collect();
    fingerprint::fingerprint_value(&Value::Obj(filtered))
}

/// Digest of the schedule stage's inputs: the *effective* timing model
/// (so `schedule_timing: Some(paper)` shares artifacts with the default)
/// plus the re-timing knobs.
fn schedule_subset_fp(options: &CompilerOptions) -> u64 {
    let doc = Value::Obj(vec![
        (
            "eliminate_redundant_moves".into(),
            Value::Bool(options.eliminate_redundant_moves),
        ),
        (
            "factories".into(),
            Value::Num(f64::from(options.target.factories)),
        ),
        (
            "unbounded_magic".into(),
            Value::Bool(options.target.unbounded_magic),
        ),
        (
            "timing".into(),
            crate::codec::timing_to_json(options.effective_schedule_timing()),
        ),
    ]);
    fingerprint::fingerprint_value(&doc)
}

/// The stable key of one stage invocation: a stage tag combined with the
/// upstream artifact's fingerprint and the stage's option-subset digest.
fn stage_key(stage: Stage, upstream: u64, options_fp: u64) -> u64 {
    let tag = fingerprint::fingerprint_bytes(stage.name().as_bytes());
    fingerprint::combine(fingerprint::combine(tag, upstream), options_fp)
}

/// A staged compile pipeline over one option set: the session produces
/// typed stage artifacts, checkpoints them into an optional [`StageCache`],
/// and reports per-stage progress to [`TraceHook`]s.
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
/// use ftqc_compiler::{CompileSession, CompilerOptions};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1).t(1);
/// let program = CompileSession::new(CompilerOptions::default())
///     .prepare(&c)?
///     .lower()
///     .map()?
///     .schedule()?;
/// println!("{}", program.metrics());
/// # Ok::<(), ftqc_compiler::CompileError>(())
/// ```
#[derive(Clone)]
pub struct CompileSession {
    options: CompilerOptions,
    cache: Option<StageCache>,
    hooks: Vec<Arc<dyn TraceHook>>,
    /// Per-stage option-subset digests, computed once — the options are
    /// immutable for the session's lifetime and these sit on every stage's
    /// key path.
    prepare_opts_fp: u64,
    map_opts_fp: u64,
    sched_opts_fp: u64,
}

impl fmt::Debug for CompileSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileSession")
            .field("options", &self.options)
            .field("cached", &self.cache.is_some())
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

impl CompileSession {
    /// A session compiling under `options`, without a cache or hooks.
    pub fn new(options: CompilerOptions) -> Self {
        let prepare_opts_fp = subset_fp(&options, PREPARE_OPTION_KEYS);
        let map_opts_fp = subset_fp(&options, MAP_OPTION_KEYS);
        let sched_opts_fp = schedule_subset_fp(&options);
        CompileSession {
            options,
            cache: None,
            hooks: Vec::new(),
            prepare_opts_fp,
            map_opts_fp,
            sched_opts_fp,
        }
    }

    /// Checkpoints stage artifacts into `cache` (and answers from it).
    pub fn with_cache(mut self, cache: StageCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Adds a per-stage observer (several may be attached).
    pub fn with_hook(mut self, hook: Arc<dyn TraceHook>) -> Self {
        self.hooks.push(hook);
        self
    }

    /// The session's options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    fn emit(&self, stage: Stage, fingerprint: u64, cached: bool, micros: u64) {
        let event = StageEvent {
            stage,
            fingerprint,
            cached,
            micros,
        };
        for hook in &self.hooks {
            hook.on_stage(&event);
        }
    }

    /// Runs the prepare stage.
    ///
    /// # Errors
    ///
    /// [`CompileError::EmptyRegister`] (stage-tagged) for a zero-qubit
    /// circuit.
    pub fn prepare(&self, circuit: &Circuit) -> Result<Prepared, CompileError> {
        let started = Instant::now();
        if circuit.num_qubits() == 0 {
            return Err(CompileError::EmptyRegister.at_stage(Stage::Prepare, 0));
        }
        let key = stage_key(
            Stage::Prepare,
            fingerprint::fingerprint_circuit(circuit),
            self.prepare_opts_fp,
        );
        let (art, cached) = match self.cache.as_ref().and_then(|c| c.prepare.get(key)) {
            Some(hit) => (hit.value, true),
            None => {
                let prepared = prepare(circuit, &self.options);
                let content_fp = fingerprint::fingerprint_circuit(&prepared);
                let art = Arc::new(PreparedArt {
                    circuit: prepared,
                    content_fp,
                });
                if let Some(c) = &self.cache {
                    c.prepare.insert(key, Arc::clone(&art));
                }
                (art, false)
            }
        };
        self.emit(
            Stage::Prepare,
            key,
            cached,
            started.elapsed().as_micros() as u64,
        );
        Ok(Prepared {
            session: self.clone(),
            art,
            key,
            input_gates: circuit.len(),
        })
    }

    /// Runs the whole pipeline: prepare → lower → map → schedule.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`], tagged with the stage it occurred in.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledProgram, CompileError> {
        self.prepare(circuit)?.lower().map()?.schedule()
    }

    /// Runs the pipeline up to and including `stop`, reporting the stage
    /// trail. `program` is populated only when `stop` is
    /// [`Stage::Schedule`].
    ///
    /// # Errors
    ///
    /// Any [`CompileError`], tagged with the stage it occurred in.
    pub fn run_until(&self, circuit: &Circuit, stop: Stage) -> Result<StageRun, CompileError> {
        let trace = StageTrace::new();
        let mut session = self.clone();
        session.hooks.push(Arc::<StageTrace>::clone(&trace));
        let done = |fingerprint: u64, stage: Stage, program: Option<CompiledProgram>| StageRun {
            stage,
            fingerprint,
            events: trace.events(),
            program,
        };

        let prepared = session.prepare(circuit)?;
        if stop == Stage::Prepare {
            let fp = prepared.fingerprint();
            return Ok(done(fp, Stage::Prepare, None));
        }
        let lowered = prepared.lower();
        if stop == Stage::Lower {
            let fp = lowered.fingerprint();
            return Ok(done(fp, Stage::Lower, None));
        }
        let mapped = lowered.map()?;
        if stop == Stage::Map {
            let fp = mapped.fingerprint();
            return Ok(done(fp, Stage::Map, None));
        }
        let schedule_key = mapped.schedule_key();
        let program = mapped.schedule()?;
        Ok(done(schedule_key, Stage::Schedule, Some(program)))
    }

    /// Computes all four stage keys by running only the cheap front-end
    /// stages (prepare and lower, cache-assisted); routing and scheduling
    /// do **not** execute. The map and schedule keys are derivable without
    /// their artifacts — each is a digest of the upstream key/content plus
    /// an option subset — which is what makes cheap cache probes possible.
    ///
    /// # Errors
    ///
    /// [`CompileError::EmptyRegister`] (stage-tagged) for a zero-qubit
    /// circuit.
    pub fn stage_keys(&self, circuit: &Circuit) -> Result<[u64; 4], CompileError> {
        // Hook-less clone: a probe must not show up in --explain traces.
        let mut probe = self.clone();
        probe.hooks.clear();
        let prepared = probe.prepare(circuit)?;
        let prepare_key = prepared.key;
        let lowered = prepared.lower();
        let lower_key = lowered.key;
        let map_key = stage_key(Stage::Map, lowered.art.content_fp, self.map_opts_fp);
        let schedule_key = stage_key(Stage::Schedule, map_key, self.sched_opts_fp);
        Ok([prepare_key, lower_key, map_key, schedule_key])
    }

    /// Whether the artifact for `stage` is already present in this
    /// session's stage cache, without computing anything past the cheap
    /// front end. Deriving the keys runs (cache-assisted, counted-as-usual)
    /// prepare/lower lookups; only the final presence check on `stage`'s
    /// tier is a silent probe. Always `false` when the session has no
    /// cache.
    ///
    /// # Errors
    ///
    /// As [`CompileSession::stage_keys`].
    pub fn stage_cached(&self, circuit: &Circuit, stage: Stage) -> Result<bool, CompileError> {
        let Some(cache) = &self.cache else {
            return Ok(false);
        };
        let keys = self.stage_keys(circuit)?;
        let index = Stage::ALL.iter().position(|s| *s == stage).expect("listed");
        Ok(cache.contains(stage, keys[index]))
    }
}

/// What [`CompileSession::run_until`] did: the terminal stage, its
/// artifact fingerprint, the full per-stage event trail, and — when the
/// run reached [`Stage::Schedule`] — the compiled program.
#[derive(Debug)]
pub struct StageRun {
    /// The terminal stage reached.
    pub stage: Stage,
    /// The terminal stage artifact's fingerprint.
    pub fingerprint: u64,
    /// One event per stage run, in execution order.
    pub events: Vec<StageEvent>,
    /// The compiled program, when the run went all the way.
    pub program: Option<CompiledProgram>,
}

/// Output of the prepare stage; continue with [`Prepared::lower`].
#[derive(Debug, Clone)]
pub struct Prepared {
    session: CompileSession,
    art: Arc<PreparedArt>,
    key: u64,
    input_gates: usize,
}

impl Prepared {
    /// The stage artifact's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.key
    }

    /// The prepared circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.art.circuit
    }

    /// Runs the lower stage.
    pub fn lower(self) -> Lowered {
        let started = Instant::now();
        // Content-addressed: keyed on the prepared circuit itself, so two
        // option sets that prepare to the same circuit share the artifact.
        let key = stage_key(Stage::Lower, self.art.content_fp, 0);
        let (art, cached) = match self.session.cache.as_ref().and_then(|c| c.lower.get(key)) {
            Some(hit) => (hit.value, true),
            None => {
                let lowered = lower(&self.art.circuit);
                let content_fp = fingerprint::fingerprint_circuit(&lowered);
                let art = Arc::new(LoweredArt {
                    circuit: lowered,
                    content_fp,
                });
                if let Some(c) = &self.session.cache {
                    c.lower.insert(key, Arc::clone(&art));
                }
                (art, false)
            }
        };
        self.session.emit(
            Stage::Lower,
            key,
            cached,
            started.elapsed().as_micros() as u64,
        );
        Lowered {
            session: self.session,
            art,
            key,
            input_gates: self.input_gates,
        }
    }
}

/// Output of the lower stage; continue with [`Lowered::map`].
#[derive(Debug, Clone)]
pub struct Lowered {
    session: CompileSession,
    art: Arc<LoweredArt>,
    key: u64,
    input_gates: usize,
}

impl Lowered {
    /// The stage artifact's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.key
    }

    /// The lowered circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.art.circuit
    }

    /// Runs the map stage: layout construction, initial placement, factory
    /// docking, and greedy routing.
    ///
    /// # Errors
    ///
    /// [`CompileError::Layout`] or [`CompileError::RoutingFailed`], tagged
    /// with [`Stage::Map`].
    pub fn map(self) -> Result<Mapped, CompileError> {
        let started = Instant::now();
        let options = &self.session.options;
        let key = stage_key(Stage::Map, self.art.content_fp, self.session.map_opts_fp);
        let (art, cached) = match self.session.cache.as_ref().and_then(|c| c.map.get(key)) {
            Some(hit) => (hit.value, true),
            None => {
                let art = compute_map(&self.art.circuit, options)
                    .map_err(|e| e.at_stage(Stage::Map, started.elapsed().as_micros() as u64))?;
                let art = Arc::new(art);
                if let Some(c) = &self.session.cache {
                    c.map.insert(key, Arc::clone(&art));
                    c.add_route(art.route);
                }
                (art, false)
            }
        };
        self.session.emit(
            Stage::Map,
            key,
            cached,
            started.elapsed().as_micros() as u64,
        );
        Ok(Mapped {
            session: self.session,
            lowered: self.art,
            art,
            key,
            input_gates: self.input_gates,
        })
    }
}

/// The map stage's computation, a pure function of the lowered circuit and
/// the map-stage option subset. The target is the seam here: it validates
/// the program shape against its capabilities (what used to panic deep in
/// the factory-bank constructor now surfaces as a stage-tagged
/// [`CompileError`]), builds the layout — routing-path family or explicit
/// bus mask — and docks its own factory bank.
fn compute_map(lowered: &Circuit, options: &CompilerOptions) -> Result<MappedArt, CompileError> {
    let routed = route_circuit(lowered, options, RouterMode::Incremental)?;
    Ok(MappedArt {
        layout: routed.layout,
        mapping: routed.mapping,
        factory_patches: routed.factory_patches,
        ops: routed.ops,
        n_magic_states: routed.n_magic_states,
        route: routed.route,
    })
}

/// Output of the map stage; finish with [`Mapped::schedule`] or re-time
/// under different scheduling knobs with [`Mapped::reschedule`].
#[derive(Debug, Clone)]
pub struct Mapped {
    session: CompileSession,
    lowered: Arc<LoweredArt>,
    art: Arc<MappedArt>,
    key: u64,
    input_gates: usize,
}

impl Mapped {
    /// The stage artifact's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.key
    }

    /// The routed operation sequence (before redundant-move elimination).
    pub fn ops(&self) -> &[RoutedOp] {
        &self.art.ops
    }

    /// Magic states the routed program consumes.
    pub fn n_magic_states(&self) -> u64 {
        self.art.n_magic_states
    }

    /// The incremental router's counters for the routing run that produced
    /// this artifact.
    pub fn route_counters(&self) -> RouteCounters {
        self.art.route
    }

    /// The schedule-stage cache key this artifact would be finished under.
    fn schedule_key(&self) -> u64 {
        stage_key(Stage::Schedule, self.key, self.session.sched_opts_fp)
    }

    /// Runs the schedule stage: redundant-move elimination, the two timing
    /// replays, and metrics assembly.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for parity with the
    /// other stages and future scheduling passes.
    pub fn schedule(self) -> Result<CompiledProgram, CompileError> {
        let options = self.session.options.clone();
        let sched_fp = self.session.sched_opts_fp;
        self.finish(&options, sched_fp)
    }

    /// Re-times this routed program under `options`, which may differ from
    /// the session's only in schedule-stage knobs
    /// (`eliminate_redundant_moves`, `schedule_timing`). The expensive
    /// prepare/lower/map artifacts are reused as-is; only scheduling runs.
    ///
    /// # Errors
    ///
    /// [`CompileError::Stage`] tagged [`Stage::Schedule`] when `options`
    /// disagree with this artifact's upstream option subsets (the artifact
    /// would not correspond to the requested compilation).
    pub fn reschedule(&self, options: &CompilerOptions) -> Result<CompiledProgram, CompileError> {
        let diverged = subset_fp(options, PREPARE_OPTION_KEYS) != self.session.prepare_opts_fp
            || subset_fp(options, MAP_OPTION_KEYS) != self.session.map_opts_fp;
        if diverged {
            return Err(CompileError::OptionsDiverged {
                stage: Stage::Schedule,
            }
            .at_stage(Stage::Schedule, 0));
        }
        self.finish(options, schedule_subset_fp(options))
    }

    fn finish(
        &self,
        options: &CompilerOptions,
        sched_fp: u64,
    ) -> Result<CompiledProgram, CompileError> {
        let started = Instant::now();
        let key = stage_key(Stage::Schedule, self.key, sched_fp);
        let (art, cached) = match self
            .session
            .cache
            .as_ref()
            .and_then(|c| c.schedule.get(key))
        {
            Some(hit) => (hit.value, true),
            None => {
                let art = Arc::new(compute_schedule(
                    &self.art,
                    self.lowered.circuit.num_qubits(),
                    options,
                ));
                if let Some(c) = &self.session.cache {
                    c.schedule.insert(key, Arc::clone(&art));
                }
                (art, false)
            }
        };
        self.session.emit(
            Stage::Schedule,
            key,
            cached,
            started.elapsed().as_micros() as u64,
        );

        // Without a cache the Arc is sole-owned, so the schedule moves into
        // the program instead of being cloned (the monolithic path's cost).
        let art = if self.session.cache.is_none() {
            Arc::try_unwrap(art).unwrap_or_else(|shared| (*shared).clone())
        } else {
            (*art).clone()
        };
        let timing = options.effective_schedule_timing();
        let metrics = Metrics {
            execution_time: art.schedule.makespan(),
            unit_cost_time: art.unit_makespan,
            lower_bound: if options.target.unbounded_magic {
                Ticks::ZERO
            } else {
                lower_bound(
                    self.art.n_magic_states,
                    timing.magic_production,
                    options.target.factories,
                )
            },
            grid_patches: self.art.layout.total_patches(),
            factory_patches: self.art.factory_patches,
            routing_paths: options.target.routing_paths(),
            factories: options.target.factories,
            n_gates: self.input_gates,
            n_surgery_ops: art.n_surgery_ops,
            n_moves: art.n_moves,
            n_moves_eliminated: art.n_moves_eliminated,
            n_magic_states: self.art.n_magic_states,
            route: self.art.route,
        };
        Ok(CompiledProgram::assemble(
            self.art.layout.clone(),
            art.schedule,
            metrics,
            self.lowered.circuit.clone(),
            self.art.mapping.clone(),
            options.clone(),
        ))
    }
}

/// The schedule stage's computation, a pure function of the routed ops and
/// the schedule-stage option subset.
fn compute_schedule(
    mapped: &MappedArt,
    num_qubits: u32,
    options: &CompilerOptions,
) -> ScheduledArt {
    let mut ops = mapped.ops.clone();
    let n_moves_eliminated = if options.eliminate_redundant_moves {
        eliminate_redundant_moves(&mut ops)
    } else {
        0
    };
    let timing = options.effective_schedule_timing();
    let schedule = time_ops(
        &ops,
        num_qubits,
        options.target.factories as usize,
        timing,
        CostKind::Realistic,
        options.target.unbounded_magic,
    );
    let unit_schedule = time_ops(
        &ops,
        num_qubits,
        options.target.factories as usize,
        timing,
        CostKind::UnitCost,
        options.target.unbounded_magic,
    );
    ScheduledArt {
        unit_makespan: unit_schedule.makespan(),
        n_surgery_ops: ops.len(),
        n_moves: ops.iter().filter(|o| o.is_movement()).count(),
        n_moves_eliminated,
        schedule,
    }
}

/// Runs a session up to `stop_after` (default: the full pipeline) and
/// folds the result into the service's generic [`StageOutcome`] — the
/// single compile recipe behind the HTTP server's job endpoints and the
/// CLI's batch command.
///
/// `resume_from` requires the named stage's artifact to already be in the
/// stage cache. The probe runs **before** anything expensive: only the
/// cheap prepare/lower front end executes to derive the stage keys, so a
/// cold-cache job fails without paying the routing cost the field exists
/// to avoid. (Should the artifact be evicted concurrently between probe
/// and run, the run recomputes it — still correct, just slower.)
///
/// # Errors
///
/// A rendered error string (bad stage names, stage-tagged compile
/// failures, unmet `resume_from` requirements) — the shape
/// [`BatchService::run`](ftqc_service::BatchService::run) expects.
pub fn stage_outcome(
    session: &CompileSession,
    circuit: &Circuit,
    stop_after: Option<&str>,
    resume_from: Option<&str>,
) -> Result<StageOutcome<Metrics>, String> {
    let stop = match stop_after {
        None => Stage::Schedule,
        Some(name) => Stage::parse_or_err(name)?,
    };
    if let Some(stage) = resume_from.map(Stage::parse_or_err).transpose()? {
        if stage > stop {
            return Err(format!(
                "resume_from={}: stage not reached (stop_after={})",
                stage.name(),
                stop.name()
            ));
        }
        let cached = session
            .stage_cached(circuit, stage)
            .map_err(|e| e.to_string())?;
        if !cached {
            return Err(format!(
                "resume_from={}: stage artifact was not in the stage cache",
                stage.name()
            ));
        }
    }

    let run = session
        .run_until(circuit, stop)
        .map_err(|e| e.to_string())?;
    Ok(match run.program {
        Some(program) if stop_after.is_none() => StageOutcome::complete(*program.metrics()),
        Some(program) => StageOutcome {
            metrics: Some(*program.metrics()),
            stage: Some(Stage::Schedule.name().to_string()),
            fingerprint: Some(run.fingerprint),
        },
        None => StageOutcome::partial(run.stage.name(), run.fingerprint),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiler;
    use ftqc_arch::TimingModel;

    fn circuit() -> Circuit {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        c.cnot(0, 1).t(1).cnot(2, 3).t(4).cz(4, 5).measure(5);
        c
    }

    fn assert_programs_equal(a: &CompiledProgram, b: &CompiledProgram) {
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.schedule().len(), b.schedule().len());
        for (x, y) in a.schedule().iter().zip(b.schedule().iter()) {
            assert_eq!(x, y);
        }
        assert_eq!(a.lowered_circuit(), b.lowered_circuit());
        assert_eq!(a.initial_mapping(), b.initial_mapping());
    }

    #[test]
    fn staged_equals_monolithic() {
        for options in [
            CompilerOptions::default(),
            CompilerOptions::default()
                .routing_paths(3)
                .factories(2)
                .optimize(true),
            CompilerOptions::default().eliminate_redundant_moves(false),
            CompilerOptions::default().unbounded_magic(true),
        ] {
            let c = circuit();
            let mono = Compiler::new(options.clone()).compile(&c).expect("mono");
            let staged = CompileSession::new(options)
                .prepare(&c)
                .expect("prepare")
                .lower()
                .map()
                .expect("map")
                .schedule()
                .expect("schedule");
            assert_programs_equal(&mono, &staged);
        }
    }

    #[test]
    fn stage_names_roundtrip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::parse(stage.name()), Some(stage));
            assert_eq!(stage.to_string(), stage.name());
        }
        assert_eq!(Stage::parse("banana"), None);
    }

    #[test]
    fn second_compile_hits_every_stage() {
        let cache = StageCache::new(64);
        let session = CompileSession::new(CompilerOptions::default()).with_cache(cache.clone());
        let c = circuit();
        let first = session.compile(&c).expect("first");
        let stats = cache.stats();
        for stage in Stage::ALL {
            assert_eq!(stats.for_stage(stage).misses, 1, "{stage} missed once");
            assert_eq!(stats.for_stage(stage).hits, 0);
        }
        let second = session.compile(&c).expect("second");
        assert_programs_equal(&first, &second);
        let stats = cache.stats();
        for stage in Stage::ALL {
            assert_eq!(stats.for_stage(stage).hits, 1, "{stage} hit on repeat");
        }
        assert_eq!(stats.hits(), 4);
        assert_eq!(stats.misses(), 4);
    }

    #[test]
    fn schedule_only_sweep_reuses_routing() {
        // Varying only scheduling knobs must hit prepare/lower/map and
        // re-run scheduling alone — the tentpole's payoff.
        let cache = StageCache::new(64);
        let c = circuit();
        let variants = [
            CompilerOptions::default(),
            CompilerOptions::default().eliminate_redundant_moves(false),
            CompilerOptions::default().schedule_timing(TimingModel {
                cnot: Ticks::from_d(4.0),
                ..TimingModel::paper()
            }),
            CompilerOptions::default().schedule_timing(TimingModel {
                move_op: Ticks::from_d(2.0),
                ..TimingModel::paper()
            }),
        ];
        for options in &variants {
            CompileSession::new(options.clone())
                .with_cache(cache.clone())
                .compile(&c)
                .expect("compiles");
        }
        let stats = cache.stats();
        let n = variants.len() as u64;
        assert_eq!(stats.prepare.misses, 1);
        assert_eq!(stats.prepare.hits, n - 1);
        assert_eq!(stats.lower.misses, 1);
        assert_eq!(stats.lower.hits, n - 1);
        assert_eq!(stats.map.misses, 1, "routing ran exactly once");
        assert_eq!(stats.map.hits, n - 1);
        assert_eq!(stats.schedule.misses, n, "every variant re-schedules");
    }

    #[test]
    fn grid_sweep_reuses_front_end() {
        let cache = StageCache::new(64);
        let c = circuit();
        let mut grid = 0u64;
        for r in [2u32, 3, 4] {
            for f in [1u32, 2] {
                grid += 1;
                CompileSession::new(CompilerOptions::default().routing_paths(r).factories(f))
                    .with_cache(cache.clone())
                    .compile(&c)
                    .expect("compiles");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.prepare.misses, 1);
        assert_eq!(stats.prepare.hits, grid - 1);
        assert_eq!(stats.lower.misses, 1);
        assert_eq!(stats.map.misses, grid, "each grid point routes");
    }

    #[test]
    fn noop_optimize_shares_lower_artifact() {
        // The circuit has nothing to peephole away, so optimize on/off
        // prepares to the same content and the lower tier converges.
        let cache = StageCache::new(64);
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).t(2);
        for optimize in [false, true] {
            CompileSession::new(CompilerOptions::default().optimize(optimize))
                .with_cache(cache.clone())
                .compile(&c)
                .expect("compiles");
        }
        let stats = cache.stats();
        assert_eq!(stats.prepare.misses, 2, "prepare keys differ on optimize");
        assert_eq!(stats.lower.misses, 1, "identical content shares lowering");
        assert_eq!(stats.lower.hits, 1);
        assert_eq!(stats.map.hits, 1);
    }

    #[test]
    fn trace_hook_sees_all_stages() {
        let trace = StageTrace::new();
        let session = CompileSession::new(CompilerOptions::default())
            .with_hook(trace.clone() as Arc<dyn TraceHook>);
        session.compile(&circuit()).expect("compiles");
        let events = trace.events();
        let stages: Vec<Stage> = events.iter().map(|e| e.stage).collect();
        assert_eq!(stages, Stage::ALL.to_vec());
        assert!(events.iter().all(|e| !e.cached), "no cache attached");
        assert!(events.iter().all(|e| e.fingerprint != 0));
    }

    #[test]
    fn run_until_stops_early() {
        let session = CompileSession::new(CompilerOptions::default());
        let c = circuit();
        let run = session.run_until(&c, Stage::Map).expect("runs");
        assert_eq!(run.stage, Stage::Map);
        assert!(run.program.is_none());
        assert_eq!(run.events.len(), 3);
        let full = session.run_until(&c, Stage::Schedule).expect("runs");
        assert_eq!(full.events.len(), 4);
        let program = full.program.expect("full run compiles");
        let mono = Compiler::default().compile(&c).expect("mono");
        assert_programs_equal(&mono, &program);
    }

    #[test]
    fn errors_carry_their_stage() {
        let c = circuit();
        let err = CompileSession::new(CompilerOptions::default().routing_paths(99))
            .prepare(&c)
            .expect("prepare fine")
            .lower()
            .map()
            .expect_err("layout invalid");
        assert_eq!(err.stage(), Some(Stage::Map));
        assert!(matches!(err.into_root(), CompileError::Layout(_)));

        let err = CompileSession::new(CompilerOptions::default())
            .prepare(&Circuit::new(0))
            .expect_err("empty register");
        assert_eq!(err.stage(), Some(Stage::Prepare));
    }

    #[test]
    fn reschedule_varies_schedule_knobs_only() {
        let c = circuit();
        let base = CompilerOptions::default();
        let mapped = CompileSession::new(base.clone())
            .prepare(&c)
            .unwrap()
            .lower()
            .map()
            .unwrap();
        let slow = base.clone().schedule_timing(TimingModel {
            cnot: Ticks::from_d(6.0),
            ..TimingModel::paper()
        });
        let retimed = mapped.reschedule(&slow).expect("re-times");
        let mono = Compiler::new(slow).compile(&c).expect("mono");
        assert_programs_equal(&mono, &retimed);

        // Upstream divergence is rejected, not silently mis-compiled.
        let err = mapped
            .reschedule(&base.routing_paths(3))
            .expect_err("diverged");
        assert_eq!(err.stage(), Some(Stage::Schedule));
    }

    #[test]
    fn stage_outcome_bridges_to_the_service() {
        let cache = StageCache::new(64);
        let session = CompileSession::new(CompilerOptions::default()).with_cache(cache.clone());
        let c = circuit();

        let partial = stage_outcome(&session, &c, Some("map"), None).expect("partial");
        assert_eq!(partial.stage.as_deref(), Some("map"));
        assert!(partial.metrics.is_none());
        assert!(partial.fingerprint.is_some());

        // resume_from now holds: the map artifact is cached.
        let full = stage_outcome(&session, &c, None, Some("map")).expect("resumes");
        assert!(full.metrics.is_some());
        assert_eq!(full.stage, None);

        // On a cold cache the same assertion fails loudly.
        let cold = CompileSession::new(CompilerOptions::default()).with_cache(StageCache::new(8));
        let err = stage_outcome(&cold, &c, None, Some("map")).expect_err("cold cache");
        assert!(err.contains("not in the stage cache"), "got {err}");

        let err = stage_outcome(&session, &c, Some("banana"), None).expect_err("bad stage");
        assert!(err.contains("unknown stage"), "got {err}");

        let err = stage_outcome(&session, &c, Some("lower"), Some("map")).expect_err("not reached");
        assert!(err.contains("not reached"), "got {err}");
    }
}
