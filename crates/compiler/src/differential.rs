//! Differential recompilation: the engine behind interactive edit
//! sessions.
//!
//! A [`DifferentialCompiler`] holds the complete artifact chain of its
//! last compile — the lowered circuit, the routed op sequence, a ladder of
//! [`EngineCheckpoint`]s captured at causal cuts, the post-elimination
//! ops, and timer-state snapshots from both timing replays — and, given an
//! edited circuit, re-runs only what the edit can actually influence:
//!
//! 1. **prepare / lower** re-run in full (they are linear-time and
//!    microsecond-cheap; re-running them also makes the dirty-index
//!    computation exact rather than an estimate from the edit span);
//! 2. **map** resumes the routing engine from the deepest checkpoint that
//!    is *causally sound* for the edited gate sequence (the causal
//!    bound), re-routing only the suffix, through the
//!    persistent warm [`RouterParts`] so corridors whose path-table
//!    entries still match their occupancy digests are never re-searched;
//! 3. **schedule** re-runs redundant-move elimination in full (its
//!    fixed-point cancellation is not prefix-stable near an edit
//!    boundary), splices the unchanged schedule prefix, and resumes the
//!    two timing replays from the deepest [`Timer`] snapshot at or below
//!    the first changed op.
//!
//! The discipline throughout is *verify the result, not the
//! recomputation*: every differentially produced program passes the full
//! six-invariant [`verify`] before it is returned, and any fallback
//! trigger (qubit count change, initial-placement change, verification
//! failure) discards the held artifacts and recompiles clean. The
//! differential proptest harness (`tests/edit_differential.rs`) pins the
//! stronger property that schedules and metrics are byte-identical to a
//! cold compile; the only intentional difference is
//! [`Metrics::route`](crate::Metrics) — the router's hit/miss counters are
//! provenance of *how* the result was computed, and a warm cache
//! legitimately reports different activity.

use crate::engine::{Engine, EngineCheckpoint};
use crate::error::CompileError;
use crate::mapping::InitialMapping;
use crate::metrics::{lower_bound, Metrics};
use crate::options::CompilerOptions;
use crate::pipeline::{lower, prepare, CompiledProgram};
use crate::redundant::eliminate_redundant_moves;
use crate::routed::RoutedOp;
use crate::timer::{CostKind, Timer};
use crate::verify::verify;
use ftqc_arch::{Layout, Ticks};
use ftqc_circuit::Circuit;
use ftqc_route::incremental::{RouterMode, RouterParts};
use ftqc_sim::{Schedule, ScheduledOp};

/// Engine checkpoints are captured every this many contiguous gates unless
/// overridden with [`DifferentialCompiler::checkpoint_every`].
pub const DEFAULT_CHECKPOINT_EVERY: usize = 8;

/// Timer snapshots are captured every this many timed ops unless
/// overridden with [`DifferentialCompiler::timer_every`].
pub const DEFAULT_TIMER_EVERY: usize = 32;

/// Which path produced a [`DifferentialCompiler::recompile`] result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Artifacts from the previous compile were reused; only the affected
    /// suffix was re-routed and re-timed.
    Differential,
    /// A clean full compile (first compile, or a fallback trigger fired).
    Full,
}

impl DeltaKind {
    /// Stable lower-case label (`"differential"` / `"full"`).
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaKind::Differential => "differential",
            DeltaKind::Full => "full",
        }
    }
}

/// What one [`DifferentialCompiler::recompile`] reused and recomputed —
/// the delta annotation an edit session attaches to its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileDelta {
    /// Differential or full.
    pub kind: DeltaKind,
    /// Gates in the lowered circuit.
    pub gates_total: usize,
    /// First lowered gate index that differs from the previous compile
    /// (`gates_total` when the lowered circuit is unchanged).
    pub dirty_from: usize,
    /// Gate index routing resumed from (0 = routed from scratch).
    pub resume_cut: usize,
    /// Gates actually re-routed (`gates_total - resume_cut`).
    pub gates_rerouted: usize,
    /// Ops in the post-elimination sequence.
    pub ops_total: usize,
    /// Ops re-timed by the realistic replay (the rest were spliced from
    /// the previous schedule).
    pub ops_retimed: usize,
    /// Why a full compile ran, when it did.
    pub full_reason: Option<String>,
}

/// One mid-replay [`Timer`] snapshot: the state *before* timing op `idx`,
/// plus the makespan accumulated over ops `0..idx`.
#[derive(Debug, Clone)]
struct TimerSnap {
    idx: usize,
    timer: Timer,
    makespan: Ticks,
}

/// Everything the previous compile left behind.
struct DiffState {
    lowered: Circuit,
    layout: Layout,
    mapping: InitialMapping,
    factory_patches: u32,
    /// Routed ops before redundant-move elimination — the sequence the
    /// checkpoints' `ops_len` indices refer to.
    raw_ops: Vec<RoutedOp>,
    /// Causal-cut snapshots, ascending by cut.
    checkpoints: Vec<EngineCheckpoint>,
    /// Ops after redundant-move elimination — the sequence the schedule
    /// and the timer snapshots refer to.
    elim_ops: Vec<RoutedOp>,
    real_snaps: Vec<TimerSnap>,
    unit_snaps: Vec<TimerSnap>,
    program: CompiledProgram,
}

/// A compiler that remembers its last run and recompiles edited circuits
/// differentially. See the [module docs](self) for the reuse strategy and
/// the soundness argument.
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
/// use ftqc_compiler::{CompilerOptions, DeltaKind, DifferentialCompiler};
///
/// let mut diff = DifferentialCompiler::new(CompilerOptions::default().routing_paths(4));
/// let mut c = Circuit::new(4);
/// c.h(0).cnot(0, 1).t(1);
/// let (first, delta) = diff.recompile(&c)?;
/// assert_eq!(delta.kind, DeltaKind::Full); // nothing to reuse yet
///
/// c.t(1); // edit: append a gate
/// let (second, delta) = diff.recompile(&c)?;
/// assert_eq!(delta.kind, DeltaKind::Differential);
/// assert!(second.metrics().execution_time >= first.metrics().execution_time);
/// # Ok::<(), ftqc_compiler::CompileError>(())
/// ```
pub struct DifferentialCompiler {
    options: CompilerOptions,
    checkpoint_every: usize,
    timer_every: usize,
    parts: Option<RouterParts>,
    state: Option<DiffState>,
}

impl DifferentialCompiler {
    /// A differential compiler for `options`; the first
    /// [`recompile`](Self::recompile) is necessarily a full compile.
    pub fn new(options: CompilerOptions) -> Self {
        DifferentialCompiler {
            options,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            timer_every: DEFAULT_TIMER_EVERY,
            parts: None,
            state: None,
        }
    }

    /// Sets the engine-checkpoint stride (gates between causal-cut
    /// snapshots). Smaller = finer resume granularity, more snapshot
    /// memory.
    pub fn checkpoint_every(mut self, gates: usize) -> Self {
        self.checkpoint_every = gates.max(1);
        self
    }

    /// Sets the timer-snapshot stride (ops between timing-state
    /// snapshots).
    pub fn timer_every(mut self, ops: usize) -> Self {
        self.timer_every = ops.max(1);
        self
    }

    /// The options every compile runs under.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// The last compiled program, if any compile has succeeded.
    pub fn last_program(&self) -> Option<&CompiledProgram> {
        self.state.as_ref().map(|s| &s.program)
    }

    /// Compiles `circuit`, reusing as much of the previous compile as the
    /// edit allows. Returns the program plus a [`CompileDelta`] describing
    /// what was reused. The result is byte-identical to a cold
    /// [`Compiler::compile`](crate::Compiler) except for the
    /// routing-activity counters in [`Metrics::route`](crate::Metrics),
    /// and has passed [`verify`] whenever the differential path ran.
    ///
    /// # Errors
    ///
    /// Exactly the cold pipeline's errors: [`CompileError::Target`],
    /// [`CompileError::Layout`], or [`CompileError::RoutingFailed`].
    pub fn recompile(
        &mut self,
        circuit: &Circuit,
    ) -> Result<(CompiledProgram, CompileDelta), CompileError> {
        let input_gates = circuit.len();
        let prepared = prepare(circuit, &self.options);
        let lowered = lower(&prepared);

        let Some(mut st) = self.state.take() else {
            return self.full(lowered, input_gates, "no previous compile");
        };
        if st.lowered.num_qubits() != lowered.num_qubits() {
            return self.full(lowered, input_gates, "qubit count changed");
        }
        // The grid layout depends only on the qubit count (unchanged), but
        // the initial placement may read the whole circuit
        // (interaction-aware mapping): recompute and compare.
        let mapping = InitialMapping::for_circuit(&st.layout, &lowered, self.options.mapping);
        if mapping != st.mapping {
            return self.full(lowered, input_gates, "initial placement changed");
        }

        let gates_total = lowered.len();
        let dirty_from = first_divergence(&st.lowered, &lowered);
        let bound = causal_bound(&lowered, dirty_from);

        // ---- map: resume routing from the deepest sound checkpoint ----
        let parts = self.parts.take().unwrap_or_default();
        let ckpt = st.checkpoints.iter().rfind(|c| c.cut <= bound);
        let resume_cut = ckpt.map_or(0, |c| c.cut);
        let mut new_ckpts = Vec::new();
        let mut engine = match ckpt {
            Some(c) => {
                // The held raw ops are replaced wholesale after this
                // recompile, so the checkpoint prefix is moved out rather
                // than cloned (the clone was measurable at interactive
                // edit rates).
                let mut prefix = std::mem::take(&mut st.raw_ops);
                prefix.truncate(c.ops_len);
                Engine::resume(
                    &st.layout,
                    &self.options,
                    c,
                    prefix,
                    RouterMode::Incremental,
                    parts,
                )
            }
            // No sound checkpoint: route from scratch, still through the
            // warm router (warmth never changes results).
            None => Engine::with_parts(
                &st.layout,
                &mapping,
                self.options.target.factory_bank(&st.layout),
                &self.options,
                RouterMode::Incremental,
                parts,
            ),
        };
        engine.run_from(&lowered, resume_cut, self.checkpoint_every, &mut new_ckpts)?;
        let route = engine.route_counters();
        let (raw_ops, n_magic_states, parts) = engine.into_ops_and_parts();
        let mut checkpoints: Vec<EngineCheckpoint> = st
            .checkpoints
            .iter()
            .filter(|c| c.cut <= resume_cut)
            .cloned()
            .collect();
        checkpoints.extend(new_ckpts);

        // ---- schedule: full elimination, spliced timing replays ----
        let mut elim_ops = raw_ops.clone();
        let n_moves_eliminated = if self.options.eliminate_redundant_moves {
            eliminate_redundant_moves(&mut elim_ops)
        } else {
            0
        };
        let common = common_prefix(&elim_ops, &st.elim_ops);
        let timing = *self.options.effective_schedule_timing();
        let num_qubits = lowered.num_qubits();
        let factories = self.options.target.factories as usize;
        let unbounded = self.options.target.unbounded_magic;
        let real = resume_replay(
            &elim_ops,
            common,
            &st.real_snaps,
            Some(st.program.schedule().items()),
            Timer::new(
                num_qubits,
                factories,
                &timing,
                CostKind::Realistic,
                unbounded,
            ),
            self.timer_every,
        );
        let unit = resume_replay(
            &elim_ops,
            common,
            &st.unit_snaps,
            None,
            Timer::new(
                num_qubits,
                factories,
                &timing,
                CostKind::UnitCost,
                unbounded,
            ),
            self.timer_every,
        );

        let metrics = Metrics {
            execution_time: real.makespan,
            unit_cost_time: unit.makespan,
            lower_bound: if unbounded {
                Ticks::ZERO
            } else {
                lower_bound(
                    n_magic_states,
                    timing.magic_production,
                    self.options.target.factories,
                )
            },
            grid_patches: st.layout.total_patches(),
            factory_patches: st.factory_patches,
            routing_paths: self.options.target.routing_paths(),
            factories: self.options.target.factories,
            n_gates: input_gates,
            n_surgery_ops: elim_ops.len(),
            n_moves: elim_ops.iter().filter(|o| o.is_movement()).count(),
            n_moves_eliminated,
            n_magic_states,
            route,
        };
        let program = CompiledProgram::assemble(
            st.layout.clone(),
            real.schedule,
            metrics,
            lowered.clone(),
            mapping.clone(),
            self.options.clone(),
        );

        // A wrong shortcut must never escape: every differential result
        // passes the full invariant check or the whole state is discarded
        // and the compile redone from nothing.
        if let Err(e) = verify(&program, &timing) {
            self.parts = None;
            return self.full(lowered, input_gates, &format!("verification failed: {e}"));
        }

        let delta = CompileDelta {
            kind: DeltaKind::Differential,
            gates_total,
            dirty_from,
            resume_cut,
            gates_rerouted: gates_total - resume_cut,
            ops_total: elim_ops.len(),
            ops_retimed: real.retimed,
            full_reason: None,
        };
        self.parts = Some(parts);
        self.state = Some(DiffState {
            lowered,
            layout: st.layout,
            mapping,
            factory_patches: st.factory_patches,
            raw_ops,
            checkpoints,
            elim_ops,
            real_snaps: real.snaps,
            unit_snaps: unit.snaps,
            program: program.clone(),
        });
        Ok((program, delta))
    }

    /// The clean path: compile from nothing (but still through the warm
    /// router parts, which never change results), repopulating every held
    /// artifact.
    fn full(
        &mut self,
        lowered: Circuit,
        input_gates: usize,
        reason: &str,
    ) -> Result<(CompiledProgram, CompileDelta), CompileError> {
        self.state = None;
        let target = &self.options.target;
        target.validate(lowered.num_qubits(), lowered.t_count() as u64)?;
        let layout = target.build_layout(lowered.num_qubits())?;
        let mapping = InitialMapping::for_circuit(&layout, &lowered, self.options.mapping);
        let bank = target.factory_bank(&layout);
        let factory_patches = bank.total_tiles();
        let parts = self.parts.take().unwrap_or_default();
        let mut engine = Engine::with_parts(
            &layout,
            &mapping,
            bank,
            &self.options,
            RouterMode::Incremental,
            parts,
        );
        let mut checkpoints = Vec::new();
        engine.run_from(&lowered, 0, self.checkpoint_every, &mut checkpoints)?;
        let route = engine.route_counters();
        let (raw_ops, n_magic_states, parts) = engine.into_ops_and_parts();

        let mut elim_ops = raw_ops.clone();
        let n_moves_eliminated = if self.options.eliminate_redundant_moves {
            eliminate_redundant_moves(&mut elim_ops)
        } else {
            0
        };
        let timing = *self.options.effective_schedule_timing();
        let num_qubits = lowered.num_qubits();
        let factories = self.options.target.factories as usize;
        let unbounded = self.options.target.unbounded_magic;
        let real = resume_replay(
            &elim_ops,
            0,
            &[],
            None,
            Timer::new(
                num_qubits,
                factories,
                &timing,
                CostKind::Realistic,
                unbounded,
            ),
            self.timer_every,
        );
        let unit = resume_replay(
            &elim_ops,
            0,
            &[],
            None,
            Timer::new(
                num_qubits,
                factories,
                &timing,
                CostKind::UnitCost,
                unbounded,
            ),
            self.timer_every,
        );

        let metrics = Metrics {
            execution_time: real.makespan,
            unit_cost_time: unit.makespan,
            lower_bound: if unbounded {
                Ticks::ZERO
            } else {
                lower_bound(
                    n_magic_states,
                    timing.magic_production,
                    self.options.target.factories,
                )
            },
            grid_patches: layout.total_patches(),
            factory_patches,
            routing_paths: self.options.target.routing_paths(),
            factories: self.options.target.factories,
            n_gates: input_gates,
            n_surgery_ops: elim_ops.len(),
            n_moves: elim_ops.iter().filter(|o| o.is_movement()).count(),
            n_moves_eliminated,
            n_magic_states,
            route,
        };
        let program = CompiledProgram::assemble(
            layout.clone(),
            real.schedule,
            metrics,
            lowered.clone(),
            mapping.clone(),
            self.options.clone(),
        );
        let delta = CompileDelta {
            kind: DeltaKind::Full,
            gates_total: lowered.len(),
            dirty_from: 0,
            resume_cut: 0,
            gates_rerouted: lowered.len(),
            ops_total: elim_ops.len(),
            ops_retimed: real.retimed,
            full_reason: Some(reason.to_string()),
        };
        self.parts = Some(parts);
        self.state = Some(DiffState {
            lowered,
            layout,
            mapping,
            factory_patches,
            raw_ops,
            checkpoints,
            elim_ops,
            real_snaps: real.snaps,
            unit_snaps: unit.snaps,
            program: program.clone(),
        });
        Ok((program, delta))
    }
}

/// First index at which the two gate sequences differ (`min(len)` when one
/// is a prefix of the other).
fn first_divergence(old: &Circuit, new: &Circuit) -> usize {
    let (a, b) = (old.gates(), new.gates());
    let n = a.len().min(b.len());
    (0..n).find(|&i| a[i] != b[i]).unwrap_or(n)
}

/// The deepest causally sound resume cut for `new` when gates before
/// `dirty_from` are unchanged.
///
/// The engine selects gates by `(max qubit-ready over operands, id)` from
/// the DAG front layer, so a resumed run is byte-identical to a cold run
/// over the edited circuit iff no gate at or past `dirty_from` can enter
/// the ready set before the cut state (completed = exactly `0..cut`) is
/// reached. A gate `s` stays out of the pre-cut ready set iff one of its
/// DAG predecessors (the last writer of one of its operand qubits) has id
/// `>= cut` — that predecessor only completes after the cut. Hence every
/// cut `c <= max_pred(s)` is sound for `s`, and the bound is the minimum
/// of `dirty_from` and `max_pred(s)` over all changed gates; a changed
/// gate with no predecessors forces 0 (route from scratch). Gates past
/// `dirty_from` that existed before the edit but were removed or shifted
/// only ever *shrink* the pre-cut ready set by losing candidates, which
/// cannot change any argmin selection.
fn causal_bound(new: &Circuit, dirty_from: usize) -> usize {
    let mut bound = dirty_from;
    let mut last_writer: Vec<Option<usize>> = vec![None; new.num_qubits() as usize];
    for (s, gate) in new.gates().iter().enumerate() {
        if s >= dirty_from {
            let max_pred = gate.qubits().filter_map(|q| last_writer[q as usize]).max();
            bound = bound.min(max_pred.unwrap_or(0));
            if bound == 0 {
                return 0;
            }
        }
        for q in gate.qubits() {
            last_writer[q as usize] = Some(s);
        }
    }
    bound
}

/// Length of the common prefix of two op sequences.
fn common_prefix(a: &[RoutedOp], b: &[RoutedOp]) -> usize {
    let n = a.len().min(b.len());
    (0..n).find(|&i| a[i] != b[i]).unwrap_or(n)
}

struct ReplayOut {
    schedule: Schedule<RoutedOp>,
    makespan: Ticks,
    snaps: Vec<TimerSnap>,
    retimed: usize,
}

/// Times `ops`, resuming from the deepest snapshot in `old_snaps` whose
/// index is at most `common` (ops before `common` are unchanged from the
/// replay that produced `old_snaps`). When `prefix_items` is given, the
/// unchanged schedule prefix is spliced from it instead of re-timed; the
/// unit-cost replay passes `None` and only the makespan is meaningful.
/// Fresh snapshots are recorded every `every` ops past the kept ones.
fn resume_replay(
    ops: &[RoutedOp],
    common: usize,
    old_snaps: &[TimerSnap],
    prefix_items: Option<&[ScheduledOp<RoutedOp>]>,
    fresh: Timer,
    every: usize,
) -> ReplayOut {
    let (start, mut timer, mut makespan) = match old_snaps.iter().rfind(|s| s.idx <= common) {
        Some(s) => (s.idx, s.timer.clone(), s.makespan),
        None => (0, fresh, Ticks::ZERO),
    };
    let mut snaps: Vec<TimerSnap> = old_snaps
        .iter()
        .take_while(|s| s.idx <= common)
        .cloned()
        .collect();
    let mut last_snap = snaps.last().map_or(0, |s| s.idx);
    let mut schedule = Schedule::new();
    if let Some(items) = prefix_items {
        for item in &items[..start] {
            schedule.push(item.op.clone(), item.start, item.duration);
        }
        debug_assert_eq!(schedule.makespan(), makespan);
    }
    for (i, op) in ops.iter().enumerate().skip(start) {
        if i > last_snap && i % every == 0 {
            snaps.push(TimerSnap {
                idx: i,
                timer: timer.clone(),
                makespan,
            });
            last_snap = i;
        }
        let (s, d) = timer.push(op);
        makespan = makespan.max(s + d);
        schedule.push(op.clone(), s, d);
    }
    ReplayOut {
        schedule,
        makespan,
        snaps,
        retimed: ops.len() - start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiler;
    use ftqc_route::RouteCounters;

    /// Byte-identical programs modulo the routing-activity counters, which
    /// are provenance of the computation (a warm cache legitimately
    /// reports different hit/miss activity).
    fn assert_programs_equal(a: &CompiledProgram, b: &CompiledProgram) {
        let mut ma = *a.metrics();
        let mut mb = *b.metrics();
        ma.route = RouteCounters::default();
        mb.route = RouteCounters::default();
        assert_eq!(ma, mb);
        assert_eq!(a.schedule().len(), b.schedule().len());
        for (x, y) in a.schedule().iter().zip(b.schedule().iter()) {
            assert_eq!(x, y);
        }
        assert_eq!(a.lowered_circuit(), b.lowered_circuit());
        assert_eq!(a.initial_mapping(), b.initial_mapping());
    }

    fn storm_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n.saturating_sub(1) {
            c.cnot(q, q + 1);
            c.t(q + 1);
        }
        for q in (0..n.saturating_sub(1)).rev() {
            c.cnot(q, q + 1);
        }
        c
    }

    /// The core contract: after any edit, the differential result equals a
    /// cold compile of the edited circuit (modulo route counters).
    #[test]
    fn differential_matches_cold_compile() {
        let options = CompilerOptions::default().routing_paths(4);
        let mut diff = DifferentialCompiler::new(options.clone()).checkpoint_every(4);
        let mut c = storm_circuit(6);
        diff.recompile(&c).expect("seed compile");

        // Append, then mutate mid-circuit, then truncate-ish (replace).
        c.t(5).cnot(4, 5);
        let (p, delta) = diff.recompile(&c).expect("append edit");
        assert_eq!(delta.kind, DeltaKind::Differential);
        assert!(delta.resume_cut > 0, "append should resume mid-circuit");
        let cold = Compiler::new(options.clone()).compile(&c).expect("cold");
        assert_programs_equal(&p, &cold);

        c.h(3);
        let (p, delta) = diff.recompile(&c).expect("second edit");
        assert_eq!(delta.kind, DeltaKind::Differential);
        let cold = Compiler::new(options).compile(&c).expect("cold");
        assert_programs_equal(&p, &cold);
    }

    #[test]
    fn qubit_count_change_falls_back_to_full() {
        let options = CompilerOptions::default().routing_paths(4);
        let mut diff = DifferentialCompiler::new(options);
        diff.recompile(&storm_circuit(4)).expect("seed");
        let (_, delta) = diff.recompile(&storm_circuit(5)).expect("grown");
        assert_eq!(delta.kind, DeltaKind::Full);
        assert_eq!(delta.full_reason.as_deref(), Some("qubit count changed"));
    }

    #[test]
    fn identical_recompile_is_differential_and_equal() {
        let options = CompilerOptions::default().routing_paths(4);
        let mut diff = DifferentialCompiler::new(options.clone()).checkpoint_every(2);
        let c = storm_circuit(5);
        let (first, _) = diff.recompile(&c).expect("seed");
        let (again, delta) = diff.recompile(&c).expect("identical");
        assert_eq!(delta.kind, DeltaKind::Differential);
        assert_eq!(delta.dirty_from, delta.gates_total);
        assert_programs_equal(&first, &again);
    }

    #[test]
    fn causal_bound_respects_fresh_qubit_gates() {
        // A new gate on a so-far-untouched qubit has no predecessors: it
        // could be selected first in a cold run, so no cut is sound.
        let mut old = Circuit::new(4);
        old.h(0).cnot(0, 1);
        let mut new = Circuit::new(4);
        new.h(0).cnot(0, 1).h(3);
        let dirty = first_divergence(&old, &new);
        assert_eq!(dirty, 2);
        assert_eq!(causal_bound(&new, dirty), 0);

        // A new gate whose operand was last written by gate 1 allows any
        // cut up to 1.
        let mut chained = Circuit::new(4);
        chained.h(0).cnot(0, 1).t(1);
        assert_eq!(causal_bound(&chained, 2), 1);
    }
}
