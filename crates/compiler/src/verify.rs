//! Schedule verification: checks that a compiled program is physically
//! executable.
//!
//! Verified invariants:
//!
//! 1. every operation satisfies its lattice-surgery placement constraint;
//! 2. no two time-overlapping operations share a grid cell;
//! 3. operations on the same program qubit never overlap in time;
//! 4. consecutive magic grants from one factory are spaced by at least the
//!    production latency;
//! 5. every cell used lies on the layout grid;
//! 6. every magic-state consumption is fed: an earlier delivery ends at its
//!    magic cell (or the consumption carries the factory grant itself) —
//!    the invariant a stale or mis-invalidated cached delivery path breaks.
//!
//! The compiler's own tests run this on every schedule they produce; it is
//! public so downstream users can validate programs before exporting them
//! to a control system.

use crate::pipeline::CompiledProgram;
use crate::routed::RoutedOp;
use ftqc_arch::{Coord, Ticks, TimingModel};
use ftqc_sim::ScheduledOp;
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// An operation violates its placement constraint.
    InvalidPlacement {
        /// Index in the schedule.
        index: usize,
        /// Constraint description.
        reason: String,
    },
    /// Two concurrent operations share a cell.
    ResourceConflict {
        /// Indices of the conflicting operations.
        first: usize,
        /// Index of the second operation.
        second: usize,
        /// The shared cell.
        cell: Coord,
    },
    /// Two operations on one qubit overlap in time.
    QubitOverlap {
        /// The program qubit.
        qubit: u32,
        /// Indices of the overlapping operations.
        first: usize,
        /// Index of the second operation.
        second: usize,
    },
    /// A factory granted states faster than it can produce them.
    FactoryOverrun {
        /// The factory index.
        factory: usize,
        /// Start times of the two grants (ticks).
        starts: (u64, u64),
    },
    /// An operation uses a cell outside the layout grid.
    OffGrid {
        /// Index in the schedule.
        index: usize,
        /// The offending cell.
        cell: Coord,
    },
    /// A magic-state consumption with no feeding delivery: no earlier
    /// `DeliverMagic` ends at its magic cell (and it carries no factory
    /// grant of its own).
    UnfedMagic {
        /// Index in the schedule.
        index: usize,
        /// The magic cell the consumption reads.
        cell: Coord,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::InvalidPlacement { index, reason } => {
                write!(f, "op {index} violates placement: {reason}")
            }
            VerifyError::ResourceConflict {
                first,
                second,
                cell,
            } => {
                write!(
                    f,
                    "ops {first} and {second} both occupy {cell} concurrently"
                )
            }
            VerifyError::QubitOverlap {
                qubit,
                first,
                second,
            } => {
                write!(f, "ops {first} and {second} overlap on qubit {qubit}")
            }
            VerifyError::FactoryOverrun { factory, starts } => write!(
                f,
                "factory {factory} granted states at ticks {} and {} (< production apart)",
                starts.0, starts.1
            ),
            VerifyError::OffGrid { index, cell } => {
                write!(f, "op {index} uses off-grid cell {cell}")
            }
            VerifyError::UnfedMagic { index, cell } => {
                write!(
                    f,
                    "op {index} consumes a magic state at {cell} with no delivery ending there"
                )
            }
        }
    }
}

impl Error for VerifyError {}

/// Verifies a compiled program against the given timing model.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify(program: &CompiledProgram, timing: &TimingModel) -> Result<(), VerifyError> {
    let items = program.schedule().items();
    verify_items(items, timing, |c| program.layout().grid().in_bounds(c))
}

/// Core verification over raw scheduled items (exposed for tests of custom
/// schedules).
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify_items(
    items: &[ScheduledOp<RoutedOp>],
    timing: &TimingModel,
    in_bounds: impl Fn(Coord) -> bool,
) -> Result<(), VerifyError> {
    // One pass handles invariants 1 & 5 and collects the interval lists
    // for 2 & 3. Intervals are bucketed by counting sort over the (dense,
    // bounded) cell and qubit key spaces rather than hashed or
    // comparison-sorted — the verifier gates every interactive
    // differential recompile, where both alternatives measurably
    // dominated it.
    let mut cell_intervals: Vec<(Coord, u64, u64, usize)> = Vec::new();
    let mut qubit_intervals: Vec<(usize, u64, u64, usize)> = Vec::new();
    let (mut max_row, mut max_col, mut max_qubit) = (0usize, 0usize, 0usize);
    for (i, item) in items.iter().enumerate() {
        if let Err(reason) = item.op.op.validate() {
            return Err(VerifyError::InvalidPlacement { index: i, reason });
        }
        let mut off_grid = None;
        item.op.op.for_each_cell(|c| {
            if off_grid.is_none() && !in_bounds(c) {
                off_grid = Some(c);
            }
        });
        if let Some(cell) = off_grid {
            return Err(VerifyError::OffGrid { index: i, cell });
        }
        if item.duration == Ticks::ZERO {
            continue;
        }
        let (start, end) = (item.start.raw(), item.end().raw());
        // In-bounds cells have non-negative coordinates (invariant 5 just
        // checked them), so they flatten onto row-major counting-sort keys
        // once the grid extent is known.
        item.op.op.for_each_cell(|c| {
            max_row = max_row.max(c.row as usize);
            max_col = max_col.max(c.col as usize);
            cell_intervals.push((c, start, end, i));
        });
        for &q in &item.op.patches {
            max_qubit = max_qubit.max(q as usize);
            qubit_intervals.push((q as usize, start, end, i));
        }
    }

    // 2: resource conflicts — per-cell buckets swept in start order.
    let width = max_col + 1;
    let keyed: Vec<(usize, u64, u64, usize)> = cell_intervals
        .iter()
        .map(|&(c, s, e, i)| (c.row as usize * width + c.col as usize, s, e, i))
        .collect();
    if let Some((key, first, second)) = bucket_overlap(&keyed, (max_row + 1) * width) {
        return Err(VerifyError::ResourceConflict {
            first,
            second,
            cell: Coord::new((key / width) as i32, (key % width) as i32),
        });
    }

    // 3: per-qubit ordering.
    if let Some((qubit, first, second)) = bucket_overlap(&qubit_intervals, max_qubit + 1) {
        return Err(VerifyError::QubitOverlap {
            qubit: qubit as u32,
            first,
            second,
        });
    }

    // 6: magic delivery discipline, in issue order. Each delivery makes one
    // state available at its terminal cell; each consumption without its
    // own factory grant takes one from its magic cell. Distinct magic cells
    // are few (one per factory outlet), so a linear scan beats hashing.
    let mut available: Vec<(Coord, u64)> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match &item.op.op {
            ftqc_arch::SurgeryOp::DeliverMagic { path } => {
                if let Some(&end) = path.last() {
                    match available.iter_mut().find(|(c, _)| *c == end) {
                        Some(slot) => slot.1 += 1,
                        None => available.push((end, 1)),
                    }
                }
            }
            ftqc_arch::SurgeryOp::ConsumeMagic { magic, .. } if item.op.factory.is_none() => {
                match available.iter_mut().find(|(c, _)| c == magic) {
                    Some(slot) if slot.1 > 0 => slot.1 -= 1,
                    _ => {
                        return Err(VerifyError::UnfedMagic {
                            index: i,
                            cell: *magic,
                        })
                    }
                }
            }
            _ => {}
        }
    }

    // 4: factory production spacing.
    let mut grants: Vec<(usize, u64)> = Vec::new();
    for item in items {
        if let Some(f) = item.op.factory {
            grants.push((f, item.start.raw()));
        }
    }
    grants.sort_unstable();
    for w in grants.windows(2) {
        if w[0].0 == w[1].0 && w[1].1 - w[0].1 < timing.magic_production.raw() {
            return Err(VerifyError::FactoryOverrun {
                factory: w[0].0,
                starts: (w[0].1, w[1].1),
            });
        }
    }

    Ok(())
}

/// Buckets `(key, start, end, op-index)` intervals by key with a counting
/// sort over `0..n_keys`, orders each bucket by start (near-sorted already
/// — schedules are emitted in time order — so the per-bucket sorts are
/// effectively linear), and returns the first time-overlapping pair found
/// as `(key, first-op, second-op)`.
fn bucket_overlap(
    intervals: &[(usize, u64, u64, usize)],
    n_keys: usize,
) -> Option<(usize, usize, usize)> {
    let mut heads = vec![0usize; n_keys + 1];
    for &(k, ..) in intervals {
        heads[k + 1] += 1;
    }
    for k in 0..n_keys {
        heads[k + 1] += heads[k];
    }
    let mut slots = vec![(0u64, 0u64, 0usize); intervals.len()];
    let mut next = heads.clone();
    for &(k, s, e, i) in intervals {
        slots[next[k]] = (s, e, i);
        next[k] += 1;
    }
    for k in 0..n_keys {
        let bucket = &mut slots[heads[k]..heads[k + 1]];
        bucket.sort_unstable();
        for w in bucket.windows(2) {
            if w[1].0 < w[0].1 {
                return Some((k, w[0].2, w[1].2));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, CompilerOptions};
    use ftqc_arch::SurgeryOp;
    use ftqc_circuit::Circuit;
    use ftqc_sim::ScheduledOp;

    fn scheduled(op: SurgeryOp, patches: Vec<u32>, start: f64, dur: f64) -> ScheduledOp<RoutedOp> {
        ScheduledOp {
            op: RoutedOp {
                op,
                patches,
                factory: None,
                gate: None,
            },
            start: Ticks::from_d(start),
            duration: Ticks::from_d(dur),
        }
    }

    #[test]
    fn compiled_programs_verify() {
        let mut c = Circuit::new(9);
        for q in 0..9 {
            c.h(q);
        }
        c.cnot(0, 4).t(4).cnot(4, 8).measure(8);
        let p = Compiler::new(CompilerOptions::default().routing_paths(4).factories(2))
            .compile(&c)
            .expect("compiles");
        verify(&p, &TimingModel::paper()).expect("compiled schedule verifies");
    }

    #[test]
    fn detects_resource_conflict() {
        let items = vec![
            scheduled(
                SurgeryOp::Move {
                    from: Coord::new(0, 0),
                    to: Coord::new(0, 1),
                },
                vec![0],
                0.0,
                1.0,
            ),
            scheduled(
                SurgeryOp::Move {
                    from: Coord::new(0, 1),
                    to: Coord::new(0, 2),
                },
                vec![1],
                0.5,
                1.0,
            ),
        ];
        let err = verify_items(&items, &TimingModel::paper(), |_| true).unwrap_err();
        assert!(matches!(err, VerifyError::ResourceConflict { .. }));
    }

    #[test]
    fn detects_qubit_overlap() {
        let items = vec![
            scheduled(
                SurgeryOp::MeasureZ {
                    cell: Coord::new(0, 0),
                },
                vec![7],
                0.0,
                1.0,
            ),
            scheduled(
                SurgeryOp::MeasureZ {
                    cell: Coord::new(5, 5),
                },
                vec![7],
                0.5,
                1.0,
            ),
        ];
        let err = verify_items(&items, &TimingModel::paper(), |_| true).unwrap_err();
        assert!(matches!(err, VerifyError::QubitOverlap { qubit: 7, .. }));
    }

    #[test]
    fn detects_invalid_placement() {
        let items = vec![scheduled(
            SurgeryOp::MergeZz {
                a: Coord::new(0, 0),
                b: Coord::new(0, 1), // horizontal: illegal for M_ZZ
            },
            vec![0],
            0.0,
            1.0,
        )];
        let err = verify_items(&items, &TimingModel::paper(), |_| true).unwrap_err();
        assert!(matches!(err, VerifyError::InvalidPlacement { .. }));
    }

    #[test]
    fn detects_factory_overrun() {
        let mk = |start: f64, col: i32| ScheduledOp {
            op: RoutedOp {
                op: SurgeryOp::DeliverMagic {
                    path: vec![Coord::new(0, col), Coord::new(1, col)],
                },
                patches: vec![],
                factory: Some(0),
                gate: None,
            },
            start: Ticks::from_d(start),
            duration: Ticks::from_d(1.0),
        };
        let items = vec![mk(0.0, 0), mk(5.0, 3)]; // 5d apart < 11d
        let err = verify_items(&items, &TimingModel::paper(), |_| true).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::FactoryOverrun { factory: 0, .. }
        ));
    }

    #[test]
    fn detects_off_grid() {
        let items = vec![scheduled(
            SurgeryOp::MeasureZ {
                cell: Coord::new(99, 99),
            },
            vec![0],
            0.0,
            1.0,
        )];
        let err =
            verify_items(&items, &TimingModel::paper(), |c| c.row < 10 && c.col < 10).unwrap_err();
        assert!(matches!(err, VerifyError::OffGrid { .. }));
    }

    #[test]
    fn error_display() {
        let e = VerifyError::OffGrid {
            index: 3,
            cell: Coord::new(9, 9),
        };
        assert!(e.to_string().contains("off-grid"));
    }
}
