//! An event-driven serving core: sharded epoll event loops, bounded fair
//! admission, and graceful backpressure.
//!
//! The thread-per-connection transport in `ftqc-server` tops out at its
//! connection cap — every concurrent peer costs a thread. This crate is
//! the scale path: a hand-rolled reactor over raw `epoll` (no tokio, no
//! mio, no libc crate; see [`sys`] for the `extern "C"` wrappers) that
//! multiplexes thousands of connections across a few event-loop shards
//! while the expensive work stays pooled behind a bounded queue.
//!
//! The moving parts:
//!
//! - **Sharded event loops** — `shards` threads, each with its own epoll
//!   instance. Every shard registers the listener with `EPOLLEXCLUSIVE`
//!   (one shard wakes per connection burst); accepted connections are
//!   pinned to a shard by fd hash, with cross-shard handoff through a
//!   mailbox plus an eventfd waker.
//! - **Per-connection state machines** — read → frame → dispatch →
//!   buffered write. Framing is incremental ([`frame::FrameScan`]): the
//!   instant a request head completes, admission control can refuse it
//!   with a 429 and a computed `Retry-After` *before the body is read*.
//! - **Bounded fair admission** — complete requests enter a
//!   [`queue::FairQueue`] laned by peer address and claimed round-robin,
//!   so one greedy client cannot starve the rest. Dispatcher threads pop
//!   requests, run the [`ReactorService`], and stream response chunks
//!   back to the owning shard; **application work never runs on an event
//!   loop**.
//! - **Deadlines everywhere** — slow-loris peers are reaped by a
//!   whole-request read deadline; requests that out-wait their admission
//!   deadline in the queue are answered with a refusal instead of being
//!   served stale.
//!
//! The service is byte-oriented: it receives a complete raw HTTP request
//! and writes back raw response bytes (possibly in chunks — streaming
//! responses fall out naturally). Parsing stays the application's job, so
//! this crate needs no HTTP types of its own.

pub mod frame;
pub mod queue;
#[cfg(target_os = "linux")]
pub mod sys;

pub use frame::{FrameError, FrameScan};
pub use queue::FairQueue;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

/// Sizing and safety knobs for a reactor run.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop shards (0 ⇒ min(4, available parallelism)).
    pub shards: usize,
    /// Dispatcher threads running the service (0 ⇒ available
    /// parallelism).
    pub dispatchers: usize,
    /// Admission-queue bound: requests beyond it are refused with
    /// [`Refusal::OverCapacity`] before their bodies are read.
    pub queue_cap: usize,
    /// Concurrent connections before new ones are refused outright.
    pub max_connections: usize,
    /// Whole-request read deadline (slow-loris reaper).
    pub read_timeout: Duration,
    /// Longest a request may wait in the admission queue before it is
    /// answered with [`Refusal::Expired`] instead of being served stale.
    pub queue_timeout: Duration,
    /// How long shutdown waits for in-flight responses to flush.
    pub drain_timeout: Duration,
    /// Upper bound on a request head.
    pub head_limit: usize,
    /// Upper bound on a request body.
    pub body_limit: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            shards: 0,
            dispatchers: 0,
            queue_cap: 256,
            max_connections: 4096,
            read_timeout: Duration::from_secs(10),
            queue_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(30),
            head_limit: 16 * 1024,
            body_limit: 64 * 1024 * 1024,
        }
    }
}

impl ReactorConfig {
    fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4)
    }

    fn resolved_dispatchers(&self) -> usize {
        if self.dispatchers > 0 {
            return self.dispatchers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Why the reactor refused a request without running the service. The
/// service renders each case into full response bytes, so refusal bodies
/// match the application's error shape exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refusal {
    /// The admission queue is full (→ 429 with `Retry-After`).
    OverCapacity {
        /// Queue depth at the moment of refusal.
        queue_depth: usize,
        /// Estimated seconds until the queue has room, for `Retry-After`.
        retry_after_secs: u64,
    },
    /// The process is at its connection cap (→ 503).
    ConnectionLimit {
        /// The configured connection cap.
        limit: usize,
    },
    /// The request head exceeded its byte limit (→ 413).
    HeadTooLarge {
        /// The configured head limit.
        limit: usize,
    },
    /// The declared body exceeds its byte limit (→ 413).
    BodyTooLarge {
        /// The declared body length.
        length: usize,
        /// The configured body limit.
        limit: usize,
    },
    /// The whole-request read deadline passed mid-request (→ 408).
    Timeout,
    /// The request out-waited its admission deadline in the queue
    /// (→ 503 with `Retry-After`).
    Expired {
        /// Estimated seconds until the queue drains, for `Retry-After`.
        retry_after_secs: u64,
    },
}

/// What the reactor needs from the application. Requests and responses
/// are raw bytes; [`ReactorService::handle`] runs on dispatcher threads,
/// never on an event loop.
pub trait ReactorService: Send + Sync + 'static {
    /// Handles one complete request (the raw bytes as read from the
    /// wire). Call `respond` any number of times with response chunks —
    /// each chunk is flushed to the peer as soon as the socket allows, so
    /// a long response can stream. Returning ends the response and closes
    /// the connection.
    fn handle(&self, peer: SocketAddr, request: Vec<u8>, respond: &mut dyn FnMut(&[u8]));

    /// Full response bytes for a request the reactor refused.
    fn refuse(&self, refusal: &Refusal) -> Vec<u8>;

    /// A connection was accepted (fires before the connection-cap
    /// check, so refused connections count too).
    fn on_connection(&self) {}

    /// A request was claimed from the admission queue after waiting
    /// `wait`; `depth` is the queue depth it left behind.
    fn on_admitted(&self, _wait: Duration, _depth: usize) {}

    /// A request (or connection) was refused.
    fn on_rejected(&self, _refusal: &Refusal) {}

    /// The admission queue depth changed.
    fn on_queue_depth(&self, _depth: usize) {}
}

/// What a finished reactor run did.
#[derive(Debug, Clone, Default)]
pub struct ReactorReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests admitted and handled by the service.
    pub requests: u64,
    /// Requests refused over capacity (429) or at the connection cap.
    pub rejected: u64,
    /// Connections reaped by the read deadline.
    pub timeouts: u64,
    /// Requests that out-waited their admission deadline.
    pub expired: u64,
}

/// Runs the reactor on `listener` until `should_stop` returns true
/// (polled continuously), then drains: accepting stops, queued requests
/// are still served, and in-flight responses get `drain_timeout` to
/// flush.
///
/// # Errors
///
/// Setup failures (epoll/eventfd creation, registration). Per-connection
/// errors are absorbed.
#[cfg(target_os = "linux")]
pub fn run<S: ReactorService, F: Fn() -> bool>(
    listener: TcpListener,
    service: Arc<S>,
    config: &ReactorConfig,
    should_stop: F,
) -> io::Result<ReactorReport> {
    engine::run(listener, service, config, should_stop)
}

/// Non-Linux stub: the reactor transport requires epoll.
///
/// # Errors
///
/// Always `Unsupported`.
#[cfg(not(target_os = "linux"))]
pub fn run<S: ReactorService, F: Fn() -> bool>(
    _listener: TcpListener,
    _service: Arc<S>,
    _config: &ReactorConfig,
    _should_stop: F,
) -> io::Result<ReactorReport> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the reactor transport requires Linux (epoll); use the threaded transport",
    ))
}

#[cfg(target_os = "linux")]
mod engine {
    use super::sys::{
        EpollEvent, Poller, Waker, EPOLLERR, EPOLLEXCLUSIVE, EPOLLHUP, EPOLLIN, EPOLLOUT,
        EPOLLRDHUP,
    };
    use super::{
        frame::{FrameError, FrameScan},
        queue::FairQueue,
        ReactorConfig, ReactorReport, ReactorService, Refusal,
    };
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    /// Listener readiness in every shard's poller.
    const TOKEN_LISTENER: u64 = u64::MAX;
    /// The shard's eventfd waker.
    const TOKEN_WAKER: u64 = u64::MAX - 1;
    /// How often an idle `epoll_wait` returns to poll deadlines/shutdown.
    const TICK_MS: i32 = 25;

    /// A complete request travelling from a shard to a dispatcher.
    struct Admission {
        shard: usize,
        conn: u64,
        peer: SocketAddr,
        request: Vec<u8>,
        enqueued: Instant,
    }

    /// Response progress travelling from a dispatcher back to a shard.
    enum Completion {
        Chunk(Vec<u8>),
        Done,
    }

    #[derive(Default)]
    struct Mailbox {
        /// Connections accepted by another shard but pinned here.
        adopted: Vec<(TcpStream, SocketAddr)>,
        completions: Vec<(u64, Completion)>,
    }

    /// A shard's cross-thread doorway: mailbox plus eventfd waker.
    struct ShardHandle {
        waker: Waker,
        mailbox: Mutex<Mailbox>,
    }

    impl ShardHandle {
        fn send(&self, conn: u64, completion: Completion) {
            self.mailbox
                .lock()
                .expect("shard mailbox lock")
                .completions
                .push((conn, completion));
            self.waker.wake();
        }

        fn adopt(&self, stream: TcpStream, peer: SocketAddr) {
            self.mailbox
                .lock()
                .expect("shard mailbox lock")
                .adopted
                .push((stream, peer));
            self.waker.wake();
        }
    }

    #[derive(Default)]
    struct Stats {
        connections: AtomicU64,
        requests: AtomicU64,
        rejected: AtomicU64,
        timeouts: AtomicU64,
        expired: AtomicU64,
    }

    struct Shared<S> {
        service: Arc<S>,
        config: ReactorConfig,
        dispatchers: usize,
        queue: FairQueue<Admission>,
        shards: Vec<ShardHandle>,
        stop: AtomicBool,
        live: AtomicUsize,
        stats: Stats,
        /// EWMA of service time in µs, for the `Retry-After` estimate.
        ema_micros: AtomicU64,
    }

    impl<S> Shared<S> {
        /// Seconds until the queue likely has room: depth × average
        /// service time over the dispatcher count, clamped to [1, 60].
        fn retry_after_secs(&self, depth: usize) -> u64 {
            let ema = self.ema_micros.load(Ordering::Relaxed).max(1);
            let micros = (depth as u64 + 1) * ema / self.dispatchers as u64;
            micros.div_ceil(1_000_000).clamp(1, 60)
        }

        fn observe_service_micros(&self, micros: u64) {
            // ema ← ema·7/8 + sample/8; a lost race just drops one sample.
            let ema = self.ema_micros.load(Ordering::Relaxed);
            let next = ema - ema / 8 + micros / 8;
            self.ema_micros.store(next.max(1), Ordering::Relaxed);
        }
    }

    #[derive(PartialEq, Eq, Clone, Copy)]
    enum Phase {
        /// Accumulating request bytes.
        Reading,
        /// Queued or running in a dispatcher; awaiting response bytes.
        Dispatched,
        /// Flushing buffered response bytes.
        Writing,
    }

    struct Conn {
        stream: TcpStream,
        peer: SocketAddr,
        phase: Phase,
        buf: Vec<u8>,
        scan: FrameScan,
        /// The head-complete admission check runs exactly once.
        admission_checked: bool,
        deadline: Instant,
        out: Vec<u8>,
        written: usize,
        /// The handler finished: close once `out` is flushed.
        out_done: bool,
        interest: u32,
    }

    pub(super) fn run<S: ReactorService, F: Fn() -> bool>(
        listener: TcpListener,
        service: Arc<S>,
        config: &ReactorConfig,
        should_stop: F,
    ) -> io::Result<ReactorReport> {
        listener.set_nonblocking(true)?;
        let shard_count = config.resolved_shards();
        let dispatchers = config.resolved_dispatchers();

        // Create every poller and waker up front so setup failures
        // surface as a clean bind-time error instead of a dead shard.
        let mut pollers = Vec::with_capacity(shard_count);
        let mut handles = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let poller = Poller::new()?;
            let waker = Waker::new()?;
            poller.add(
                listener.as_raw_fd(),
                TOKEN_LISTENER,
                EPOLLIN | EPOLLEXCLUSIVE,
            )?;
            poller.add(waker.fd(), TOKEN_WAKER, EPOLLIN)?;
            pollers.push(poller);
            handles.push(ShardHandle {
                waker,
                mailbox: Mutex::new(Mailbox::default()),
            });
        }

        let shared = Arc::new(Shared {
            service,
            config: config.clone(),
            dispatchers,
            queue: FairQueue::new(config.queue_cap),
            shards: handles,
            stop: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            stats: Stats::default(),
            ema_micros: AtomicU64::new(50_000),
        });

        std::thread::scope(|scope| {
            for (index, poller) in pollers.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let listener = &listener;
                scope.spawn(move || shard_loop(&shared, index, poller, listener));
            }
            for _ in 0..dispatchers {
                let shared = Arc::clone(&shared);
                scope.spawn(move || dispatcher_loop(&shared));
            }
            while !should_stop() {
                std::thread::sleep(Duration::from_millis(10));
            }
            shared.stop.store(true, Ordering::SeqCst);
            // Queued requests are still served; dispatchers exit once the
            // queue drains, shards once their responses flush.
            shared.queue.close();
            for shard in &shared.shards {
                shard.waker.wake();
            }
        });

        Ok(ReactorReport {
            connections: shared.stats.connections.load(Ordering::SeqCst),
            requests: shared.stats.requests.load(Ordering::SeqCst),
            rejected: shared.stats.rejected.load(Ordering::SeqCst),
            timeouts: shared.stats.timeouts.load(Ordering::SeqCst),
            expired: shared.stats.expired.load(Ordering::SeqCst),
        })
    }

    fn dispatcher_loop<S: ReactorService>(shared: &Shared<S>) {
        while let Some((job, depth)) = shared.queue.pop() {
            shared.service.on_queue_depth(depth);
            let shard = &shared.shards[job.shard];
            let wait = job.enqueued.elapsed();
            if wait > shared.config.queue_timeout {
                let refusal = Refusal::Expired {
                    retry_after_secs: shared.retry_after_secs(depth),
                };
                shard.send(job.conn, Completion::Chunk(shared.service.refuse(&refusal)));
                shard.send(job.conn, Completion::Done);
                shared.service.on_rejected(&refusal);
                shared.stats.expired.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            shared.service.on_admitted(wait, depth);
            let started = Instant::now();
            let mut respond = |chunk: &[u8]| {
                if !chunk.is_empty() {
                    shard.send(job.conn, Completion::Chunk(chunk.to_vec()));
                }
            };
            shared.service.handle(job.peer, job.request, &mut respond);
            shard.send(job.conn, Completion::Done);
            shared.observe_service_micros(started.elapsed().as_micros() as u64);
            shared.stats.requests.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn shard_loop<S: ReactorService>(
        shared: &Shared<S>,
        index: usize,
        poller: Poller,
        listener: &TcpListener,
    ) {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id: u64 = 0;
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        let mut draining = false;
        let mut drain_deadline = Instant::now();

        loop {
            if !draining && shared.stop.load(Ordering::SeqCst) {
                draining = true;
                drain_deadline = Instant::now() + shared.config.drain_timeout;
                let _ = poller.delete(listener.as_raw_fd());
                // Connections still mid-request have nothing to drain.
                let reading: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| c.phase == Phase::Reading)
                    .map(|(&id, _)| id)
                    .collect();
                for id in reading {
                    close_conn(shared, &poller, &mut conns, id);
                }
            }
            if draining && (conns.is_empty() || Instant::now() >= drain_deadline) {
                break;
            }

            let fired = match poller.wait(&mut events, TICK_MS) {
                Ok(n) => n,
                Err(_) => break,
            };
            for event in events.iter().take(fired) {
                let token = event.data;
                let ready = event.events;
                match token {
                    TOKEN_LISTENER => {
                        if !draining {
                            accept_burst(
                                shared,
                                index,
                                &poller,
                                &mut conns,
                                &mut next_id,
                                listener,
                            );
                        }
                    }
                    TOKEN_WAKER => shared.shards[index].waker.drain(),
                    id => drive_conn(shared, index, &poller, &mut conns, id, ready),
                }
            }

            // Adoptions and response chunks from other threads.
            let mailbox = {
                let mut locked = shared.shards[index].mailbox.lock().expect("shard mailbox");
                std::mem::take(&mut *locked)
            };
            for (stream, peer) in mailbox.adopted {
                if !draining {
                    register_conn(shared, &poller, &mut conns, &mut next_id, stream, peer);
                } else {
                    shared.live.fetch_sub(1, Ordering::SeqCst);
                }
            }
            for (id, completion) in mailbox.completions {
                apply_completion(shared, &poller, &mut conns, id, completion);
            }

            // Slow-loris reaper: whole-request read deadline.
            let now = Instant::now();
            let late: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.phase == Phase::Reading && now >= c.deadline)
                .map(|(&id, _)| id)
                .collect();
            for id in late {
                shared.stats.timeouts.fetch_add(1, Ordering::SeqCst);
                refuse_conn(shared, &poller, &mut conns, id, &Refusal::Timeout);
            }
        }

        for id in conns.keys().copied().collect::<Vec<_>>() {
            close_conn(shared, &poller, &mut conns, id);
        }
    }

    fn accept_burst<S: ReactorService>(
        shared: &Shared<S>,
        index: usize,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        next_id: &mut u64,
        listener: &TcpListener,
    ) {
        loop {
            let (stream, peer) = match listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient (e.g. EMFILE); retry next tick
            };
            shared.stats.connections.fetch_add(1, Ordering::SeqCst);
            shared.service.on_connection();
            if shared.live.load(Ordering::SeqCst) >= shared.config.max_connections {
                let refusal = Refusal::ConnectionLimit {
                    limit: shared.config.max_connections,
                };
                // Best-effort refusal on a fresh socket: one non-blocking
                // write, then drop — never stall the event loop.
                let mut stream = stream;
                let _ = stream.set_nonblocking(true);
                let _ = stream.write(&shared.service.refuse(&refusal));
                shared.service.on_rejected(&refusal);
                shared.stats.rejected.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            shared.live.fetch_add(1, Ordering::SeqCst);
            let owner = stream.as_raw_fd() as usize % shared.shards.len();
            if owner == index {
                register_conn(shared, poller, conns, next_id, stream, peer);
            } else {
                shared.shards[owner].adopt(stream, peer);
            }
        }
    }

    fn register_conn<S: ReactorService>(
        shared: &Shared<S>,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        next_id: &mut u64,
        stream: TcpStream,
        peer: SocketAddr,
    ) {
        // The fcntl path, not std's setter: accepted sockets must be
        // non-blocking before they enter the event loop.
        if super::sys::set_nonblocking(stream.as_raw_fd()).is_err() {
            shared.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _ = stream.set_nodelay(true);
        let id = *next_id;
        *next_id += 1;
        let interest = EPOLLIN | EPOLLRDHUP;
        if poller.add(stream.as_raw_fd(), id, interest).is_err() {
            shared.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        conns.insert(
            id,
            Conn {
                stream,
                peer,
                phase: Phase::Reading,
                buf: Vec::new(),
                scan: FrameScan::new(),
                admission_checked: false,
                deadline: Instant::now() + shared.config.read_timeout,
                out: Vec::new(),
                written: 0,
                out_done: false,
                interest,
            },
        );
    }

    fn close_conn<S>(shared: &Shared<S>, poller: &Poller, conns: &mut HashMap<u64, Conn>, id: u64) {
        if let Some(conn) = conns.remove(&id) {
            let _ = poller.delete(conn.stream.as_raw_fd());
            shared.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn set_interest(poller: &Poller, conn: &mut Conn, id: u64, events: u32) {
        if conn.interest != events {
            conn.interest = events;
            let _ = poller.modify(conn.stream.as_raw_fd(), id, events);
        }
    }

    /// Queues a refusal response and switches the connection to writing.
    fn refuse_conn<S: ReactorService>(
        shared: &Shared<S>,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        id: u64,
        refusal: &Refusal,
    ) {
        let Some(conn) = conns.get_mut(&id) else {
            return;
        };
        conn.out.extend_from_slice(&shared.service.refuse(refusal));
        conn.out_done = true;
        conn.phase = Phase::Writing;
        shared.service.on_rejected(refusal);
        flush_conn(shared, poller, conns, id);
    }

    fn drive_conn<S: ReactorService>(
        shared: &Shared<S>,
        index: usize,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        id: u64,
        ready: u32,
    ) {
        let Some(conn) = conns.get_mut(&id) else {
            return;
        };
        if ready & (EPOLLERR | EPOLLHUP) != 0 {
            close_conn(shared, poller, conns, id);
            return;
        }
        match conn.phase {
            Phase::Reading => {
                if ready & (EPOLLIN | EPOLLRDHUP) != 0 {
                    read_conn(shared, index, poller, conns, id);
                }
            }
            Phase::Dispatched => {}
            Phase::Writing => {
                if ready & EPOLLOUT != 0 {
                    flush_conn(shared, poller, conns, id);
                }
            }
        }
    }

    /// What one drain of a readable socket decided.
    enum ReadOutcome {
        /// Socket drained mid-request: keep waiting for bytes.
        Pending,
        /// Peer gone (clean close, truncation, or error) — nothing owed.
        Close,
        /// The request can never be served; answer with this refusal.
        Refuse(Refusal),
        /// A complete request is ready for admission.
        Dispatch { request: Vec<u8> },
    }

    /// Reads until the socket would block, advancing the frame scan.
    /// Split from [`read_conn`] so the `&mut Conn` borrow ends before the
    /// outcome mutates the connection table.
    fn pump_read<S: ReactorService>(shared: &Shared<S>, conn: &mut Conn) -> ReadOutcome {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                // Peer closed: an idle connection going away or a request
                // truncated mid-message — nothing to answer either way.
                Ok(0) => return ReadOutcome::Close,
                Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Close,
            }
            if let Err(error) = conn.scan.advance(
                &conn.buf,
                shared.config.head_limit,
                shared.config.body_limit,
            ) {
                return ReadOutcome::Refuse(match error {
                    FrameError::HeadTooLarge { limit } => Refusal::HeadTooLarge { limit },
                    FrameError::BodyTooLarge { length, limit } => {
                        Refusal::BodyTooLarge { length, limit }
                    }
                });
            }
            // Backpressure before the body: the moment the head is in,
            // refuse over-capacity requests without reading further.
            if conn.scan.head_complete() && !conn.admission_checked {
                conn.admission_checked = true;
                let depth = shared.queue.depth();
                if depth >= shared.queue.capacity() {
                    return ReadOutcome::Refuse(Refusal::OverCapacity {
                        queue_depth: depth,
                        retry_after_secs: shared.retry_after_secs(depth),
                    });
                }
            }
            if let Some(total) = conn.scan.frame_len() {
                if conn.buf.len() >= total {
                    let mut request = std::mem::take(&mut conn.buf);
                    request.truncate(total);
                    return ReadOutcome::Dispatch { request };
                }
            }
        }
    }

    fn read_conn<S: ReactorService>(
        shared: &Shared<S>,
        index: usize,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        id: u64,
    ) {
        let (outcome, peer) = {
            let conn = conns.get_mut(&id).expect("caller checked presence");
            (pump_read(shared, conn), conn.peer)
        };
        match outcome {
            ReadOutcome::Pending => {}
            ReadOutcome::Close => close_conn(shared, poller, conns, id),
            ReadOutcome::Refuse(refusal) => {
                if matches!(refusal, Refusal::OverCapacity { .. }) {
                    shared.stats.rejected.fetch_add(1, Ordering::SeqCst);
                }
                refuse_conn(shared, poller, conns, id, &refusal);
            }
            ReadOutcome::Dispatch { request } => {
                let admission = Admission {
                    shard: index,
                    conn: id,
                    peer,
                    request,
                    enqueued: Instant::now(),
                };
                match shared.queue.push(peer.ip(), admission) {
                    Ok(depth) => {
                        let conn = conns.get_mut(&id).expect("caller checked presence");
                        conn.phase = Phase::Dispatched;
                        set_interest(poller, conn, id, 0);
                        shared.service.on_queue_depth(depth);
                    }
                    Err(depth) => {
                        shared.stats.rejected.fetch_add(1, Ordering::SeqCst);
                        let refusal = Refusal::OverCapacity {
                            queue_depth: depth,
                            retry_after_secs: shared.retry_after_secs(depth),
                        };
                        refuse_conn(shared, poller, conns, id, &refusal);
                    }
                }
            }
        }
    }

    fn apply_completion<S: ReactorService>(
        shared: &Shared<S>,
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        id: u64,
        completion: Completion,
    ) {
        let Some(conn) = conns.get_mut(&id) else {
            return; // connection died while its request was in flight
        };
        match completion {
            Completion::Chunk(bytes) => conn.out.extend_from_slice(&bytes),
            Completion::Done => conn.out_done = true,
        }
        conn.phase = Phase::Writing;
        flush_conn(shared, poller, conns, id);
    }

    /// Writes as much buffered response as the socket takes; closes once
    /// the handler is done and the buffer is flushed.
    fn flush_conn<S>(shared: &Shared<S>, poller: &Poller, conns: &mut HashMap<u64, Conn>, id: u64) {
        let conn = conns.get_mut(&id).expect("caller checked presence");
        while conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => {
                    close_conn(shared, poller, conns, id);
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    set_interest(poller, conn, id, EPOLLOUT);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close_conn(shared, poller, conns, id);
                    return;
                }
            }
        }
        if conn.out_done {
            let _ = conn.stream.flush();
            close_conn(shared, poller, conns, id);
        } else {
            // Drained but the handler is still producing: wait quietly for
            // the next chunk instead of spinning on a writable socket.
            set_interest(poller, conn, id, 0);
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::thread::JoinHandle;
    use std::time::Instant;

    /// A service that answers with its request's body, after an optional
    /// artificial delay — enough HTTP for a loopback client to parse.
    struct EchoService {
        delay: Duration,
        handled: AtomicU64,
    }

    impl EchoService {
        fn new(delay: Duration) -> EchoService {
            EchoService {
                delay,
                handled: AtomicU64::new(0),
            }
        }
    }

    fn simple_response(status: u16, reason: &str, extra: &str, body: &str) -> Vec<u8> {
        format!(
            "HTTP/1.1 {status} {reason}\r\ncontent-length: {}\r\n{extra}connection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    impl ReactorService for EchoService {
        fn handle(&self, _peer: SocketAddr, request: Vec<u8>, respond: &mut dyn FnMut(&[u8])) {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.handled.fetch_add(1, Ordering::SeqCst);
            let body_at = request
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map_or(request.len(), |p| p + 4);
            let body = String::from_utf8_lossy(&request[body_at..]).to_string();
            respond(&simple_response(200, "OK", "", &body));
        }

        fn refuse(&self, refusal: &Refusal) -> Vec<u8> {
            match refusal {
                Refusal::OverCapacity {
                    retry_after_secs, ..
                } => simple_response(
                    429,
                    "Too Many Requests",
                    &format!("retry-after: {retry_after_secs}\r\n"),
                    "busy",
                ),
                Refusal::Timeout => simple_response(408, "Request Timeout", "", "late"),
                _ => simple_response(503, "Service Unavailable", "", "no"),
            }
        }
    }

    struct Running {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        thread: JoinHandle<io::Result<ReactorReport>>,
    }

    impl Running {
        fn start(service: Arc<EchoService>, config: ReactorConfig) -> Running {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let stop = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&stop);
            let thread = std::thread::spawn(move || {
                run(listener, service, &config, || flag.load(Ordering::SeqCst))
            });
            Running { addr, stop, thread }
        }

        fn finish(self) -> ReactorReport {
            self.stop.store(true, Ordering::SeqCst);
            self.thread.join().unwrap().unwrap()
        }
    }

    fn roundtrip(addr: SocketAddr, body: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let request = format!(
            "POST /echo HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_concurrent_connections_across_shards() {
        let service = Arc::new(EchoService::new(Duration::ZERO));
        let server = Running::start(
            Arc::clone(&service),
            ReactorConfig {
                shards: 3,
                dispatchers: 4,
                ..ReactorConfig::default()
            },
        );
        let addr = server.addr;
        let clients: Vec<_> = (0..32)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("payload-{i}");
                    let response = roundtrip(addr, &body);
                    assert!(response.starts_with("HTTP/1.1 200"), "got {response}");
                    assert!(response.ends_with(&body), "got {response}");
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let report = server.finish();
        assert_eq!(report.requests, 32);
        assert_eq!(report.connections, 32);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn refuses_over_queue_capacity_before_the_body() {
        // One slow dispatcher, queue of one: the first request runs, the
        // second queues, and a third peer is refused at head-complete
        // time even though its declared body never arrives.
        let service = Arc::new(EchoService::new(Duration::from_millis(800)));
        let server = Running::start(
            Arc::clone(&service),
            ReactorConfig {
                shards: 1,
                dispatchers: 1,
                queue_cap: 1,
                ..ReactorConfig::default()
            },
        );
        let addr = server.addr;
        // Stagger the two in-flight requests: the first must be claimed
        // by the dispatcher (emptying the queue) before the second
        // arrives to occupy the single queue slot — otherwise the 429
        // lands on the second request instead of the probe below.
        let busy: Vec<_> = (0..2)
            .map(|i| {
                let t = std::thread::spawn(move || {
                    let response = roundtrip(addr, &format!("slow-{i}"));
                    assert!(response.starts_with("HTTP/1.1 200"), "got {response}");
                });
                std::thread::sleep(Duration::from_millis(250));
                t
            })
            .collect();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Head only — the 10-byte body is never sent.
        stream
            .write_all(b"POST /echo HTTP/1.1\r\nhost: t\r\ncontent-length: 10\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "got {response}");
        assert!(response.contains("retry-after: "), "got {response}");
        drop(stream);

        for c in busy {
            c.join().unwrap();
        }
        let report = server.finish();
        assert_eq!(report.requests, 2);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn slow_loris_is_reaped_by_the_read_deadline() {
        let service = Arc::new(EchoService::new(Duration::ZERO));
        let server = Running::start(
            Arc::clone(&service),
            ReactorConfig {
                shards: 1,
                dispatchers: 1,
                read_timeout: Duration::from_millis(300),
                ..ReactorConfig::default()
            },
        );
        let addr = server.addr;
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Dribble a byte at a time; the whole-request deadline fires even
        // though no single gap looks idle forever.
        let started = Instant::now();
        let mut response = Vec::new();
        for byte in b"GET /echo HT" {
            if stream.write_all(&[*byte]).is_err() {
                break; // reaped mid-dribble
            }
            std::thread::sleep(Duration::from_millis(100));
            // Try a non-blocking-ish peek for the refusal.
            stream
                .set_read_timeout(Some(Duration::from_millis(10)))
                .unwrap();
            let mut chunk = [0u8; 1024];
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    response.extend_from_slice(&chunk[..n]);
                    if response.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
                Err(_) => {}
            }
            if started.elapsed() > Duration::from_secs(3) {
                panic!("server never reaped the slow-loris connection");
            }
        }
        let response = String::from_utf8_lossy(&response);
        assert!(
            response.starts_with("HTTP/1.1 408") || response.is_empty(),
            "got {response}"
        );
        // The server still serves healthy clients afterwards.
        let ok = roundtrip(addr, "after");
        assert!(ok.starts_with("HTTP/1.1 200"), "got {ok}");
        let report = server.finish();
        assert_eq!(report.timeouts, 1);
    }

    #[test]
    fn truncated_request_frees_its_slot() {
        let service = Arc::new(EchoService::new(Duration::ZERO));
        let server = Running::start(
            Arc::clone(&service),
            ReactorConfig {
                shards: 1,
                dispatchers: 1,
                ..ReactorConfig::default()
            },
        );
        let addr = server.addr;
        for _ in 0..3 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"POST /echo HTTP/1.1\r\ncontent-length: 50\r\n\r\npartial")
                .unwrap();
            drop(stream); // peer dies mid-body
        }
        std::thread::sleep(Duration::from_millis(200));
        let ok = roundtrip(addr, "healthy");
        assert!(ok.starts_with("HTTP/1.1 200"), "got {ok}");
        let report = server.finish();
        assert_eq!(report.requests, 1, "only the healthy request ran");
    }

    #[test]
    fn drain_finishes_in_flight_requests() {
        let service = Arc::new(EchoService::new(Duration::from_millis(300)));
        let server = Running::start(
            Arc::clone(&service),
            ReactorConfig {
                shards: 2,
                dispatchers: 2,
                ..ReactorConfig::default()
            },
        );
        let addr = server.addr;
        let client = std::thread::spawn(move || roundtrip(addr, "draining"));
        std::thread::sleep(Duration::from_millis(100));
        let report = server.finish(); // stop fires while the request runs
        let response = client.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "got {response}");
        assert!(response.ends_with("draining"), "got {response}");
        assert_eq!(report.requests, 1);
    }
}
