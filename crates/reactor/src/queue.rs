//! The bounded admission queue between the event loops and the dispatcher
//! threads, with per-client fairness.
//!
//! Work is laned by peer IP and claimed round-robin across lanes, so a
//! client that floods the server with requests only ever has one request
//! ahead of every other client's next request — a single greedy peer
//! cannot starve the rest. The bound is enforced at push: the event loop
//! checks [`FairQueue::depth`] the moment a request head completes and
//! turns the request away with 429 before its body is ever read.

use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

struct Lanes<T> {
    /// Pending items per peer, FIFO within a lane.
    lanes: HashMap<IpAddr, VecDeque<T>>,
    /// Claim order: lanes with pending work, round-robin.
    rotation: VecDeque<IpAddr>,
    len: usize,
    closed: bool,
}

/// A bounded MPMC queue fanned by peer address.
pub struct FairQueue<T> {
    cap: usize,
    /// Mirror of the locked length, readable without the lock (the event
    /// loops' admission check and the metrics gauge).
    depth: AtomicUsize,
    inner: Mutex<Lanes<T>>,
    ready: Condvar,
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `cap` items (clamped to at least 1).
    pub fn new(cap: usize) -> FairQueue<T> {
        FairQueue {
            cap: cap.max(1),
            depth: AtomicUsize::new(0),
            inner: Mutex::new(Lanes {
                lanes: HashMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The current queue depth (lock-free snapshot).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Enqueues `item` on `peer`'s lane. `Ok(depth)` with the depth after
    /// the push; `Err(depth)` when the queue is full or closed.
    pub fn push(&self, peer: IpAddr, item: T) -> Result<usize, usize> {
        let mut inner = self.inner.lock().expect("admission queue lock");
        if inner.closed || inner.len >= self.cap {
            return Err(inner.len);
        }
        let lane = inner.lanes.entry(peer).or_default();
        let was_empty = lane.is_empty();
        lane.push_back(item);
        if was_empty {
            inner.rotation.push_back(peer);
        }
        inner.len += 1;
        let depth = inner.len;
        self.depth.store(depth, Ordering::SeqCst);
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is claimable, returning `(item, depth-after)`.
    /// Claims rotate across peer lanes. `None` once the queue is closed
    /// *and* drained — dispatchers keep serving queued work through a
    /// graceful shutdown.
    pub fn pop(&self) -> Option<(T, usize)> {
        let mut inner = self.inner.lock().expect("admission queue lock");
        loop {
            if inner.len > 0 {
                let peer = inner
                    .rotation
                    .pop_front()
                    .expect("non-empty queue has a rotation entry");
                let lane = inner
                    .lanes
                    .get_mut(&peer)
                    .expect("rotation entries have lanes");
                let item = lane.pop_front().expect("rotated lanes are non-empty");
                if lane.is_empty() {
                    inner.lanes.remove(&peer);
                } else {
                    inner.rotation.push_back(peer);
                }
                inner.len -= 1;
                let depth = inner.len;
                self.depth.store(depth, Ordering::SeqCst);
                return Some((item, depth));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .expect("admission queue condition wait");
        }
    }

    /// Refuses new pushes and releases blocked `pop`s once drained.
    pub fn close(&self) {
        self.inner.lock().expect("admission queue lock").closed = true;
        self.ready.notify_all();
    }
}

impl<T> std::fmt::Debug for FairQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairQueue")
            .field("cap", &self.cap)
            .field("depth", &self.depth())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn fifo_within_a_single_peer() {
        let q = FairQueue::new(8);
        for i in 0..4 {
            q.push(ip(1), i).unwrap();
        }
        let order: Vec<i32> = (0..4).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_across_peers() {
        // Peer 1 floods; peer 2 sends one request after the flood. The
        // flood only costs peer 2 one slot, not the whole backlog.
        let q = FairQueue::new(16);
        for i in 0..5 {
            q.push(ip(1), format!("a{i}")).unwrap();
        }
        q.push(ip(2), "b0".to_string()).unwrap();
        let order: Vec<String> = (0..6).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(order, vec!["a0", "b0", "a1", "a2", "a3", "a4"]);
    }

    #[test]
    fn bound_is_enforced_with_depth_reported() {
        let q = FairQueue::new(2);
        assert_eq!(q.push(ip(1), 0), Ok(1));
        assert_eq!(q.push(ip(2), 1), Ok(2));
        assert_eq!(q.push(ip(3), 2), Err(2));
        assert_eq!(q.depth(), 2);
        let (_, depth) = q.pop().unwrap();
        assert_eq!(depth, 1);
        assert_eq!(q.push(ip(3), 2), Ok(2));
    }

    #[test]
    fn close_drains_then_releases() {
        let q = FairQueue::new(4);
        q.push(ip(1), 7).unwrap();
        q.close();
        assert_eq!(q.push(ip(1), 8), Err(1), "closed queues refuse pushes");
        // Queued work is still served through shutdown.
        assert_eq!(q.pop().map(|(v, _)| v), Some(7));
        assert_eq!(q.pop().map(|(v, _)| v), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = std::sync::Arc::new(FairQueue::<u32>::new(4));
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
