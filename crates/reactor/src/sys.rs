//! Thin `extern "C"` wrappers over the Linux readiness syscalls.
//!
//! The build environment has no registry access, so there is no libc or
//! mio crate here: std already links libc on every unix target, and
//! declaring the handful of symbols the reactor needs keeps the crate
//! dependency-free — the same trick the server crate uses for its SIGINT
//! handler. Everything unsafe lives behind the two small safe types below
//! ([`Poller`], [`Waker`]); errors come out of
//! `io::Error::last_os_error()`, so no errno plumbing is needed.

use std::io;
use std::os::raw::c_void;

/// One readiness record, ABI-compatible with the kernel's `epoll_event`
/// (packed on x86-64, naturally aligned elsewhere).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
/// Round-robins listener readiness across the shards' epoll instances
/// instead of waking every shard per connection (thundering herd).
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Marks `fd` non-blocking via `fcntl(F_SETFL, O_NONBLOCK)`.
///
/// # Errors
///
/// The underlying `fcntl` failure.
pub fn set_nonblocking(fd: i32) -> io::Result<()> {
    // Safety: fcntl on a caller-owned fd; no memory is passed.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// One epoll instance: a shard's readiness multiplexer.
#[derive(Debug)]
pub struct Poller {
    epfd: i32,
}

impl Poller {
    /// Creates the epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        // Safety: no pointers involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // Safety: `event` outlives the call; the kernel copies it.
        if unsafe { epoll_ctl(self.epfd, op, fd, &mut event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest set.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure.
    pub fn add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replaces `fd`'s interest set.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure.
    pub fn modify(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for readiness, filling `events` and
    /// returning how many fired. EINTR is absorbed (returns 0).
    ///
    /// # Errors
    ///
    /// Any other `epoll_wait` failure.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // Safety: the buffer is valid for `events.len()` records.
        let n = unsafe {
            epoll_wait(
                self.epfd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // Safety: closing our own fd exactly once.
        unsafe { close(self.epfd) };
    }
}

/// A cross-thread wakeup: an eventfd registered in a shard's poller so
/// dispatcher threads can interrupt its `epoll_wait` when response bytes
/// are ready.
#[derive(Debug)]
pub struct Waker {
    fd: i32,
}

impl Waker {
    /// Creates the eventfd (non-blocking, close-on-exec).
    ///
    /// # Errors
    ///
    /// The `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        // Safety: no pointers involved.
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register for EPOLLIN.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Signals the owning shard (async-signal-safe: one 8-byte write).
    pub fn wake(&self) {
        let one: u64 = 1;
        // Safety: writing 8 bytes from a stack value; a full counter
        // (EAGAIN) already means the shard has a pending wakeup.
        unsafe { write(self.fd, (&one as *const u64).cast::<c_void>(), 8) };
    }

    /// Clears the pending wakeup count.
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // Safety: reading 8 bytes into a stack value; EAGAIN just means
        // nothing was pending.
        unsafe { read(self.fd, (&mut count as *mut u64).cast::<c_void>(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // Safety: closing our own fd exactly once.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poller_registers_and_reports_readiness() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 7, EPOLLIN).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        waker.wake();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        waker.drain();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        poller.delete(waker.fd()).unwrap();
    }

    #[test]
    fn set_nonblocking_applies_to_a_socket() {
        use std::os::unix::io::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        set_nonblocking(listener.as_raw_fd()).unwrap();
        // An accept with no pending peer must now fail fast.
        let err = listener.accept().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
