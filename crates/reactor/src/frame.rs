//! Incremental HTTP/1.1 request framing for the event loop.
//!
//! Bytes arrive whenever a socket is readable, so the reactor cannot use a
//! blocking request parser. This scanner keeps just enough state to answer
//! two questions cheaply after every read — "is the head complete?" (the
//! moment admission control can turn the request away *before* its body is
//! read) and "how many bytes is the whole request?" — while full parsing
//! stays in the service behind the admission queue. Only the conditions
//! that must be decided before buffering the body are decided here: head
//! and body size limits. A head whose `Content-Length` is unparsable (or
//! that declares a non-identity `Transfer-Encoding`) is framed as
//! body-less and handed to the service, whose strict parser produces the
//! same 400/501 the threaded transport would.

/// Why a connection's bytes can never frame a complete request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The head ran past the limit without terminating.
    HeadTooLarge {
        /// The configured head byte limit.
        limit: usize,
    },
    /// The declared `Content-Length` exceeds the body limit.
    BodyTooLarge {
        /// The declared body length.
        length: usize,
        /// The configured body byte limit.
        limit: usize,
    },
}

/// Incremental scan state over one connection's accumulated read buffer.
#[derive(Debug, Default)]
pub struct FrameScan {
    /// Bytes already searched for the `\r\n\r\n` terminator, so repeated
    /// scans over a slowly-growing buffer stay linear overall.
    scanned: usize,
    /// Total frame length (head + body) once the head has been seen.
    frame_len: Option<usize>,
}

impl FrameScan {
    /// A fresh scanner for a new connection.
    pub fn new() -> FrameScan {
        FrameScan::default()
    }

    /// Whether the head terminator has been seen (the earliest point a
    /// request can be refused without reading its body).
    pub fn head_complete(&self) -> bool {
        self.frame_len.is_some()
    }

    /// The complete frame length in bytes, once known.
    pub fn frame_len(&self) -> Option<usize> {
        self.frame_len
    }

    /// Advances over `buf` (the connection's whole accumulated buffer).
    /// Call after every read; idempotent once the head is complete.
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the message can never complete within limits.
    pub fn advance(
        &mut self,
        buf: &[u8],
        head_limit: usize,
        body_limit: usize,
    ) -> Result<(), FrameError> {
        if self.frame_len.is_some() {
            return Ok(());
        }
        // Resume the terminator search where the last scan stopped,
        // re-checking the 3 bytes a split "\r\n\r\n" could straddle.
        let from = self.scanned.saturating_sub(3);
        let head_end = buf[from..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| from + p);
        self.scanned = buf.len();
        let Some(head_end) = head_end else {
            if buf.len() > head_limit {
                return Err(FrameError::HeadTooLarge { limit: head_limit });
            }
            return Ok(());
        };
        let body_len = declared_body_len(&buf[..head_end]).unwrap_or(0);
        if body_len > body_limit {
            return Err(FrameError::BodyTooLarge {
                length: body_len,
                limit: body_limit,
            });
        }
        self.frame_len = Some(head_end + 4 + body_len);
        Ok(())
    }
}

/// The body length the head declares, or `None` when it is absent,
/// unparsable, or overridden by a non-identity transfer coding (those
/// messages are framed body-less; the service's strict parser rejects
/// them with the proper status).
fn declared_body_len(head: &[u8]) -> Option<usize> {
    let mut length = None;
    for line in head.split(|&b| b == b'\n') {
        let line = strip_cr(line);
        if let Some(value) = header_value(line, b"transfer-encoding") {
            if !value.eq_ignore_ascii_case("identity") {
                return None;
            }
        }
        if let Some(value) = header_value(line, b"content-length") {
            length = Some(value.trim().parse::<usize>().ok()?);
        }
    }
    length
}

fn strip_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

/// The value of header `name` (ASCII case-insensitive) when `line` is
/// that header, as UTF-8.
fn header_value<'l>(line: &'l [u8], name: &[u8]) -> Option<&'l str> {
    if line.len() <= name.len() + 1 || line[name.len()] != b':' {
        return None;
    }
    if !line[..name.len()].eq_ignore_ascii_case(name) {
        return None;
    }
    std::str::from_utf8(&line[name.len() + 1..])
        .ok()
        .map(str::trim)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAD_LIMIT: usize = 1024;
    const BODY_LIMIT: usize = 4096;

    fn scan_all(wire: &[u8]) -> (FrameScan, Result<(), FrameError>) {
        let mut scan = FrameScan::new();
        let result = scan.advance(wire, HEAD_LIMIT, BODY_LIMIT);
        (scan, result)
    }

    #[test]
    fn frames_a_request_with_a_body() {
        let wire = b"POST /v1/compile HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        let (scan, result) = scan_all(wire);
        result.unwrap();
        assert!(scan.head_complete());
        assert_eq!(scan.frame_len(), Some(wire.len()));
    }

    #[test]
    fn frames_a_bodyless_request() {
        let wire = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        let (scan, result) = scan_all(wire);
        result.unwrap();
        assert_eq!(scan.frame_len(), Some(wire.len()));
    }

    #[test]
    fn byte_at_a_time_arrival_matches_one_shot() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nhost: a\r\n\r\nabc";
        let mut scan = FrameScan::new();
        let mut head_seen_at = None;
        for end in 1..=wire.len() {
            scan.advance(&wire[..end], HEAD_LIMIT, BODY_LIMIT).unwrap();
            if scan.head_complete() && head_seen_at.is_none() {
                head_seen_at = Some(end);
            }
        }
        // The head completes exactly at its terminator, before the body.
        assert_eq!(head_seen_at, Some(wire.len() - 3));
        assert_eq!(scan.frame_len(), Some(wire.len()));
    }

    #[test]
    fn oversized_head_is_refused_before_completion() {
        let wire = vec![b'a'; HEAD_LIMIT + 1];
        let (_, result) = scan_all(&wire);
        assert_eq!(result, Err(FrameError::HeadTooLarge { limit: HEAD_LIMIT }));
    }

    #[test]
    fn oversized_declared_body_is_refused_at_the_head() {
        let wire = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            BODY_LIMIT + 1
        );
        let (_, result) = scan_all(wire.as_bytes());
        assert_eq!(
            result,
            Err(FrameError::BodyTooLarge {
                length: BODY_LIMIT + 1,
                limit: BODY_LIMIT,
            })
        );
    }

    #[test]
    fn unparsable_length_and_chunked_frame_as_bodyless() {
        // The service's strict parser owns the 400/501; the reactor just
        // stops at the head.
        for head in [
            "POST /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            "POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            let (scan, result) = scan_all(head.as_bytes());
            result.unwrap();
            assert_eq!(scan.frame_len(), Some(head.len()), "{head:?}");
        }
    }

    #[test]
    fn identity_transfer_encoding_keeps_the_declared_length() {
        let wire =
            b"POST /x HTTP/1.1\r\ntransfer-encoding: identity\r\ncontent-length: 2\r\n\r\nok";
        let (scan, result) = scan_all(wire);
        result.unwrap();
        assert_eq!(scan.frame_len(), Some(wire.len()));
    }
}
