//! The logical gate set of the compiler front-end.
//!
//! The paper's compilation scheme "takes as input a quantum program expressed
//! in the Clifford+T gate set" (§V). The benchmark circuits of Table I also
//! use `Rz(θ)` and `SX`, so both are first-class here. `Rz` with a
//! non-Clifford angle is treated as a magic-state consumer, matching the
//! paper's accounting (each condensed-matter `Rz` consumes one distilled
//! state).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a program (circuit) qubit.
///
/// This is a plain index into the circuit's qubit register; the mapping stage
/// of the compiler assigns it to a logical surface-code patch on the grid.
pub type Qubit = u32;

/// A rotation angle in units of π (i.e. `Angle::new(0.25)` is π/4).
///
/// Storing the angle in units of π keeps the Clifford/non-Clifford predicate
/// exact for the angles that occur in Trotter circuits and QASM files written
/// as fractions of `pi`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Angle {
    turns_of_pi: f64,
}

impl Angle {
    /// Creates an angle of `turns_of_pi * π` radians.
    pub fn new(turns_of_pi: f64) -> Self {
        Self { turns_of_pi }
    }

    /// Creates an angle from radians.
    pub fn from_radians(rad: f64) -> Self {
        Self {
            turns_of_pi: rad / std::f64::consts::PI,
        }
    }

    /// The angle in radians.
    pub fn radians(self) -> f64 {
        self.turns_of_pi * std::f64::consts::PI
    }

    /// The angle in units of π.
    pub fn turns_of_pi(self) -> f64 {
        self.turns_of_pi
    }

    /// π/4 (the T-gate angle).
    pub fn t_angle() -> Self {
        Self::new(0.25)
    }

    /// Whether the rotation `Rz(self)` is a Clifford operation, i.e. the
    /// angle is a multiple of π/2 (up to a small numeric tolerance).
    pub fn is_clifford(self) -> bool {
        let halves = self.turns_of_pi * 2.0;
        (halves - halves.round()).abs() < 1e-12
    }

    /// Whether the rotation is the identity (angle ≡ 0 mod 2π).
    pub fn is_identity(self) -> bool {
        let turns = self.turns_of_pi / 2.0;
        (turns - turns.round()).abs() < 1e-12
    }

    /// The negated angle.
    pub fn negate(self) -> Self {
        Self::new(-self.turns_of_pi)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}π", self.turns_of_pi)
    }
}

/// A logical gate in the compiler's input IR.
///
/// Durations and placement constraints for the lattice-surgery implementation
/// of each gate live in `ftqc-arch` (`TimingModel`); this type is purely the
/// program-level view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard.
    H(Qubit),
    /// Phase gate S = √Z.
    S(Qubit),
    /// Inverse phase gate S† .
    Sdg(Qubit),
    /// √X (QASMBench's `sx`).
    Sx(Qubit),
    /// Inverse √X.
    Sxdg(Qubit),
    /// Pauli X.
    X(Qubit),
    /// Pauli Y.
    Y(Qubit),
    /// Pauli Z.
    Z(Qubit),
    /// T = Z^{1/4}: non-Clifford, consumes one magic state.
    T(Qubit),
    /// T†.
    Tdg(Qubit),
    /// Z-rotation by an arbitrary angle. Non-Clifford angles consume magic
    /// states (see `TStatePolicy` in `ftqc-compiler`).
    Rz(Qubit, Angle),
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: Qubit,
        /// Target qubit.
        target: Qubit,
    },
    /// Controlled-Z.
    Cz(Qubit, Qubit),
    /// SWAP (decomposable to 3 CNOTs; kept explicit for analysis).
    Swap(Qubit, Qubit),
    /// Z-basis measurement.
    Measure(Qubit),
}

/// Iterator over the (at most two) qubits a gate acts on.
#[derive(Debug, Clone)]
pub struct GateQubits {
    qs: [Qubit; 2],
    len: u8,
    pos: u8,
}

impl Iterator for GateQubits {
    type Item = Qubit;

    fn next(&mut self) -> Option<Qubit> {
        if self.pos < self.len {
            let q = self.qs[self.pos as usize];
            self.pos += 1;
            Some(q)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.len - self.pos) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for GateQubits {}

impl Gate {
    /// The qubits this gate acts on, in gate-definition order
    /// (control before target for [`Gate::Cnot`]).
    pub fn qubits(&self) -> GateQubits {
        let (qs, len) = match *self {
            Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::Sx(q)
            | Gate::Sxdg(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rz(q, _)
            | Gate::Measure(q) => ([q, 0], 1),
            Gate::Cnot { control, target } => ([control, target], 2),
            Gate::Cz(a, b) | Gate::Swap(a, b) => ([a, b], 2),
        };
        GateQubits { qs, len, pos: 0 }
    }

    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// Whether the gate is in the Clifford group.
    ///
    /// `Rz` is Clifford exactly when its angle is a multiple of π/2.
    pub fn is_clifford(&self) -> bool {
        match self {
            Gate::T(_) | Gate::Tdg(_) => false,
            Gate::Rz(_, a) => a.is_clifford(),
            Gate::Measure(_) => false,
            _ => true,
        }
    }

    /// Whether the gate consumes a magic state when implemented with lattice
    /// surgery (T, T†, or a non-Clifford `Rz`).
    pub fn is_magic(&self) -> bool {
        matches!(self, Gate::T(_) | Gate::Tdg(_))
            || matches!(self, Gate::Rz(_, a) if !a.is_clifford())
    }

    /// Whether the gate is a bare Pauli (tracked in the Pauli frame at zero
    /// time cost on the surface code).
    pub fn is_pauli(&self) -> bool {
        matches!(self, Gate::X(_) | Gate::Y(_) | Gate::Z(_))
    }

    /// Whether this is a two-qubit gate.
    pub fn is_two_qubit(&self) -> bool {
        self.arity() == 2
    }

    /// Whether this is a measurement.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Gate::Measure(_))
    }

    /// The lower-case mnemonic used in QASM output and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::Sx(_) => "sx",
            Gate::Sxdg(_) => "sxdg",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Rz(_, _) => "rz",
            Gate::Cnot { .. } => "cx",
            Gate::Cz(_, _) => "cz",
            Gate::Swap(_, _) => "swap",
            Gate::Measure(_) => "measure",
        }
    }

    /// The inverse gate.
    ///
    /// # Panics
    ///
    /// Panics for [`Gate::Measure`], which has no inverse.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::Sx(q) => Gate::Sxdg(q),
            Gate::Sxdg(q) => Gate::Sx(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Rz(q, a) => Gate::Rz(q, a.negate()),
            Gate::Measure(_) => panic!("measurement has no inverse"),
            g => g, // H, Paulis, CNOT, CZ, SWAP are self-inverse
        }
    }

    /// Remaps qubit indices through `f` (used when embedding circuits).
    pub fn map_qubits(&self, mut f: impl FnMut(Qubit) -> Qubit) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::Sx(q) => Gate::Sx(f(q)),
            Gate::Sxdg(q) => Gate::Sxdg(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::T(q) => Gate::T(f(q)),
            Gate::Tdg(q) => Gate::Tdg(f(q)),
            Gate::Rz(q, a) => Gate::Rz(f(q), a),
            Gate::Cnot { control, target } => Gate::Cnot {
                control: f(control),
                target: f(target),
            },
            Gate::Cz(a, b) => Gate::Cz(f(a), f(b)),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Measure(q) => Gate::Measure(f(q)),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rz(q, a) => write!(f, "rz({a}) q[{q}]"),
            Gate::Cnot { control, target } => write!(f, "cx q[{control}], q[{target}]"),
            Gate::Cz(a, b) => write!(f, "cz q[{a}], q[{b}]"),
            Gate::Swap(a, b) => write!(f, "swap q[{a}], q[{b}]"),
            g => {
                let q = g.qubits().next().expect("single-qubit gate");
                write!(f, "{} q[{q}]", g.name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angle_clifford_predicate() {
        assert!(Angle::new(0.5).is_clifford()); // S
        assert!(Angle::new(1.0).is_clifford()); // Z
        assert!(Angle::new(-0.5).is_clifford());
        assert!(Angle::new(2.0).is_clifford());
        assert!(!Angle::new(0.25).is_clifford()); // T
        assert!(!Angle::new(0.1).is_clifford());
    }

    #[test]
    fn angle_identity_predicate() {
        assert!(Angle::new(0.0).is_identity());
        assert!(Angle::new(2.0).is_identity());
        assert!(Angle::new(-4.0).is_identity());
        assert!(!Angle::new(1.0).is_identity());
    }

    #[test]
    fn angle_radians_roundtrip() {
        let a = Angle::from_radians(1.234);
        assert!((a.radians() - 1.234).abs() < 1e-12);
    }

    #[test]
    fn gate_qubits_order() {
        let g = Gate::Cnot {
            control: 3,
            target: 7,
        };
        let qs: Vec<_> = g.qubits().collect();
        assert_eq!(qs, vec![3, 7]);
        assert_eq!(g.arity(), 2);
        assert!(g.is_two_qubit());
    }

    #[test]
    fn single_qubit_gate_qubits() {
        let g = Gate::H(5);
        let qs: Vec<_> = g.qubits().collect();
        assert_eq!(qs, vec![5]);
        assert_eq!(g.qubits().len(), 1);
    }

    #[test]
    fn clifford_classification() {
        assert!(Gate::H(0).is_clifford());
        assert!(Gate::S(0).is_clifford());
        assert!(Gate::Sx(0).is_clifford());
        assert!(Gate::Cnot {
            control: 0,
            target: 1
        }
        .is_clifford());
        assert!(!Gate::T(0).is_clifford());
        assert!(!Gate::Tdg(0).is_clifford());
        assert!(!Gate::Rz(0, Angle::new(0.25)).is_clifford());
        assert!(Gate::Rz(0, Angle::new(0.5)).is_clifford());
    }

    #[test]
    fn magic_classification() {
        assert!(Gate::T(0).is_magic());
        assert!(Gate::Tdg(0).is_magic());
        assert!(Gate::Rz(0, Angle::new(0.13)).is_magic());
        assert!(!Gate::Rz(0, Angle::new(1.0)).is_magic());
        assert!(!Gate::H(0).is_magic());
        assert!(!Gate::Measure(0).is_magic());
    }

    #[test]
    fn pauli_classification() {
        assert!(Gate::X(0).is_pauli());
        assert!(Gate::Y(0).is_pauli());
        assert!(Gate::Z(0).is_pauli());
        assert!(!Gate::H(0).is_pauli());
    }

    #[test]
    fn map_qubits_shifts_indices() {
        let g = Gate::Cnot {
            control: 0,
            target: 1,
        };
        let shifted = g.map_qubits(|q| q + 10);
        assert_eq!(
            shifted,
            Gate::Cnot {
                control: 10,
                target: 11
            }
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::H(2).to_string(), "h q[2]");
        assert_eq!(
            Gate::Cnot {
                control: 0,
                target: 1
            }
            .to_string(),
            "cx q[0], q[1]"
        );
        assert_eq!(Gate::Rz(1, Angle::new(0.25)).to_string(), "rz(0.25π) q[1]");
    }
}
