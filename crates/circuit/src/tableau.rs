//! Clifford tableau: the images of `X_q` and `Z_q` under conjugation by an
//! accumulated Clifford circuit.
//!
//! The tableau is the workhorse of the Pauli-product-rotation transpiler
//! ([`crate::ppr`]): sweeping a Clifford+T circuit, Clifford gates update the
//! tableau while each non-Clifford `Rz`/`T` on qubit `q` is emitted as a
//! rotation about `C Z_q C†`, i.e. the tableau's current Z-image of `q`.
//! This is exactly Litinski's procedure for reducing a circuit to π/8
//! rotations followed by a final Clifford and measurements.

use crate::gate::Gate;
use crate::pauli::{Pauli, PauliString};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Images of the single-qubit Paulis under conjugation by an accumulated
/// Clifford `C`: row `x[q] = C X_q C†`, row `z[q] = C Z_q C†`.
///
/// # Example
///
/// ```
/// use ftqc_circuit::{CliffordTableau, Gate};
///
/// let mut t = CliffordTableau::identity(2);
/// t.apply(&Gate::H(0));
/// t.apply(&Gate::Cnot { control: 0, target: 1 });
/// // H then CNOT maps Z_0 -> X_0 X_1 (the GHZ stabilizer generator).
/// assert_eq!(t.image_z(0).to_string(), "+XX");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CliffordTableau {
    xs: Vec<PauliString>,
    zs: Vec<PauliString>,
}

impl CliffordTableau {
    /// The identity Clifford over `n` qubits.
    pub fn identity(n: usize) -> Self {
        let xs = (0..n)
            .map(|q| PauliString::single(n, q as u32, Pauli::X))
            .collect();
        let zs = (0..n)
            .map(|q| PauliString::single(n, q as u32, Pauli::Z))
            .collect();
        Self { xs, zs }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.xs.len()
    }

    /// The image `C X_q C†`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn image_x(&self, q: u32) -> &PauliString {
        &self.xs[q as usize]
    }

    /// The image `C Z_q C†`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn image_z(&self, q: u32) -> &PauliString {
        &self.zs[q as usize]
    }

    /// The image of an arbitrary Pauli string under conjugation by the
    /// accumulated Clifford.
    pub fn image(&self, p: &PauliString) -> PauliString {
        let n = self.num_qubits();
        let mut out = PauliString::identity(n);
        out.set_phase(p.phase());
        for (q, pauli) in p.support() {
            match pauli {
                Pauli::X => out.mul_assign(&self.xs[q as usize]),
                Pauli::Z => out.mul_assign(&self.zs[q as usize]),
                Pauli::Y => {
                    // Y = i X Z
                    out.mul_assign(&self.xs[q as usize]);
                    out.mul_assign(&self.zs[q as usize]);
                    out.set_phase(out.phase().mul(crate::pauli::Phase::I));
                }
                Pauli::I => unreachable!("support() never yields identity"),
            }
        }
        out
    }

    /// Composes another Clifford gate onto the accumulated circuit
    /// (`C ← g ∘ C`), updating every image row.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not Clifford.
    pub fn apply(&mut self, gate: &Gate) {
        assert!(
            gate.is_clifford(),
            "only Clifford gates can be applied to a tableau (got {gate})"
        );
        for row in self.xs.iter_mut().chain(self.zs.iter_mut()) {
            row.conjugate_by(gate);
        }
    }

    /// Composes a Clifford gate on the *input* side of the map.
    ///
    /// If the tableau currently represents `Φ(P) = D P D†`, after this call
    /// it represents `Φ'(P) = Φ(g† P g) = (D g†) P (D g†)†`.
    ///
    /// This is the update used by the PPR transpiler: sweeping a circuit in
    /// time order and calling `apply_pre` for each Clifford `g` keeps the
    /// tableau equal to `P ↦ C† P C`, where `C` is the product of Cliffords
    /// seen so far — exactly the conjugation needed to push Cliffords past
    /// later rotations (`R_P · C = C · R_{C† P C}`).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not Clifford.
    pub fn apply_pre(&mut self, gate: &Gate) {
        assert!(
            gate.is_clifford(),
            "only Clifford gates can be applied to a tableau (got {gate})"
        );
        let n = self.num_qubits();
        let inv = gate.inverse();
        let mut updates: Vec<(bool, usize, PauliString)> = Vec::with_capacity(4);
        for q in gate.qubits() {
            let mut lx = PauliString::single(n, q, Pauli::X);
            lx.conjugate_by(&inv); // g† X_q g
            updates.push((true, q as usize, self.image(&lx)));
            let mut lz = PauliString::single(n, q, Pauli::Z);
            lz.conjugate_by(&inv); // g† Z_q g
            updates.push((false, q as usize, self.image(&lz)));
        }
        for (is_x, q, row) in updates {
            if is_x {
                self.xs[q] = row;
            } else {
                self.zs[q] = row;
            }
        }
    }

    /// Whether the tableau is the identity map (all rows and phases trivial).
    pub fn is_identity(&self) -> bool {
        let n = self.num_qubits();
        self.xs
            .iter()
            .enumerate()
            .all(|(q, r)| *r == PauliString::single(n, q as u32, Pauli::X))
            && self
                .zs
                .iter()
                .enumerate()
                .all(|(q, r)| *r == PauliString::single(n, q as u32, Pauli::Z))
    }

    /// Validates the symplectic invariants: `x[q]` anticommutes with `z[q]`,
    /// and commutes with every other row; all phases are real.
    ///
    /// Returns a description of the first violated invariant, or `Ok(())`.
    /// Used in tests and by `debug_assert!`s in the transpiler.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_qubits();
        for q in 0..n {
            if !self.xs[q].phase().is_real() || !self.zs[q].phase().is_real() {
                return Err(format!("row {q} has a non-real phase"));
            }
            if self.xs[q].commutes_with(&self.zs[q]) {
                return Err(format!("x[{q}] must anticommute with z[{q}]"));
            }
            for r in 0..n {
                if r != q && !self.xs[q].commutes_with(&self.zs[r]) {
                    return Err(format!("x[{q}] must commute with z[{r}]"));
                }
                if r != q {
                    if !self.xs[q].commutes_with(&self.xs[r]) {
                        return Err(format!("x[{q}] must commute with x[{r}]"));
                    }
                    if !self.zs[q].commutes_with(&self.zs[r]) {
                        return Err(format!("z[{q}] must commute with z[{r}]"));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for CliffordTableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in 0..self.num_qubits() {
            writeln!(f, "X_{q} -> {}", self.xs[q])?;
            writeln!(f, "Z_{q} -> {}", self.zs[q])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Angle;

    #[test]
    fn identity_tableau() {
        let t = CliffordTableau::identity(3);
        assert!(t.is_identity());
        assert_eq!(t.image_x(1).to_string(), "+IXI");
        assert_eq!(t.image_z(2).to_string(), "+IIZ");
        t.check_invariants().expect("identity is symplectic");
    }

    #[test]
    fn h_then_cnot_builds_ghz_stabilizers() {
        let mut t = CliffordTableau::identity(3);
        t.apply(&Gate::H(0));
        t.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        t.apply(&Gate::Cnot {
            control: 1,
            target: 2,
        });
        assert_eq!(t.image_z(0).to_string(), "+XXX");
        assert_eq!(t.image_x(0).to_string(), "+ZII");
        t.check_invariants().expect("tableau stays symplectic");
    }

    #[test]
    fn s_squared_is_z() {
        let mut t = CliffordTableau::identity(1);
        t.apply(&Gate::S(0));
        t.apply(&Gate::S(0));
        // S² = Z: conjugation X -> -X, Z -> Z.
        assert_eq!(t.image_x(0).to_string(), "-X");
        assert_eq!(t.image_z(0).to_string(), "+Z");
    }

    #[test]
    fn hzh_is_x() {
        let mut t = CliffordTableau::identity(1);
        t.apply(&Gate::H(0));
        t.apply(&Gate::Z(0));
        t.apply(&Gate::H(0));
        // HZH = X: conjugation X -> X, Z -> -Z.
        assert_eq!(t.image_x(0).to_string(), "+X");
        assert_eq!(t.image_z(0).to_string(), "-Z");
    }

    #[test]
    fn swap_equals_three_cnots() {
        let mut a = CliffordTableau::identity(2);
        a.apply(&Gate::Swap(0, 1));
        let mut b = CliffordTableau::identity(2);
        b.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        b.apply(&Gate::Cnot {
            control: 1,
            target: 0,
        });
        b.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn image_of_composite_string() {
        let mut t = CliffordTableau::identity(2);
        t.apply(&Gate::H(0));
        // X⊗Z -> Z⊗Z under H on qubit 0.
        let p = PauliString::parse("XZ").unwrap();
        assert_eq!(t.image(&p).to_string(), "+ZZ");
        // Y image: H Y H = -Y.
        let y = PauliString::parse("YI").unwrap();
        assert_eq!(t.image(&y).to_string(), "-YI");
    }

    #[test]
    fn clifford_rz_accepted_nonclifford_rejected() {
        let mut t = CliffordTableau::identity(1);
        t.apply(&Gate::Rz(0, Angle::new(0.5)));
        assert_eq!(t.image_x(0).to_string(), "+Y");
    }

    #[test]
    #[should_panic(expected = "only Clifford")]
    fn t_gate_rejected() {
        let mut t = CliffordTableau::identity(1);
        t.apply(&Gate::T(0));
    }

    #[test]
    fn apply_pre_tracks_inverse_conjugation() {
        // After apply_pre(g), image_z(q) must be g† Z_q g.
        let mut t = CliffordTableau::identity(1);
        t.apply_pre(&Gate::Sx(0));
        // Sx† Z Sx = +Y (conjugation by Sxdg maps Z -> Y).
        assert_eq!(t.image_z(0).to_string(), "+Y");
        // Contrast with apply (C P C†): Sx Z Sx† = -Y.
        let mut u = CliffordTableau::identity(1);
        u.apply(&Gate::Sx(0));
        assert_eq!(u.image_z(0).to_string(), "-Y");
    }

    #[test]
    fn apply_pre_sequence_matches_explicit_conjugation() {
        // For a gate sequence g1, g2 (time order), the pre-tableau must give
        // C† P C with C = g2∘g1, i.e. g1† g2† P g2 g1.
        let g1 = Gate::S(0);
        let g2 = Gate::Cnot {
            control: 0,
            target: 1,
        };
        let mut t = CliffordTableau::identity(2);
        t.apply_pre(&g1);
        t.apply_pre(&g2);
        for (make, label) in [(Pauli::X, "X"), (Pauli::Z, "Z"), (Pauli::Y, "Y")] {
            for q in 0..2u32 {
                let mut expected = PauliString::single(2, q, make);
                // g2† P g2 then g1† (…) g1, via conjugate_by with inverses.
                expected.conjugate_by(&g2.inverse());
                expected.conjugate_by(&g1.inverse());
                let got = t.image(&PauliString::single(2, q, make));
                assert_eq!(got, expected, "{label}_{q}");
            }
        }
        t.check_invariants().expect("pre-tableau stays symplectic");
    }

    #[test]
    fn apply_pre_preserves_invariants_random_walk() {
        let mut t = CliffordTableau::identity(3);
        let mut state = 0xdeadbeefcafef00du64;
        for _ in 0..120 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pick = (state >> 33) % 5;
            let q = ((state >> 20) % 3) as u32;
            let r = ((state >> 10) % 3) as u32;
            let gate = match pick {
                0 => Gate::H(q),
                1 => Gate::S(q),
                2 => Gate::Sxdg(q),
                _ if q != r => Gate::Cnot {
                    control: q,
                    target: r,
                },
                _ => Gate::Sdg(q),
            };
            t.apply_pre(&gate);
            t.check_invariants()
                .unwrap_or_else(|e| panic!("invariant violated after {gate}: {e}"));
        }
    }

    #[test]
    fn invariants_hold_after_random_cliffords() {
        // Deterministic pseudo-random walk over Clifford gates.
        let mut t = CliffordTableau::identity(4);
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pick = (state >> 33) % 6;
            let q = ((state >> 20) % 4) as u32;
            let r = ((state >> 10) % 4) as u32;
            let gate = match pick {
                0 => Gate::H(q),
                1 => Gate::S(q),
                2 => Gate::Sx(q),
                3 => Gate::Sdg(q),
                4 if q != r => Gate::Cnot {
                    control: q,
                    target: r,
                },
                _ if q != r => Gate::Cz(q, r),
                _ => Gate::H(q),
            };
            t.apply(&gate);
            t.check_invariants()
                .unwrap_or_else(|e| panic!("invariant violated after {gate}: {e}"));
        }
    }
}
