//! Pauli strings in binary-symplectic form, with exact phase tracking.
//!
//! A Pauli string over `n` qubits is stored as per-qubit `(x, z)` bit pairs
//! plus a global phase `i^k` (`k` mod 4). Conjugation by Clifford gates keeps
//! strings Hermitian (`k ∈ {0, 2}`); intermediate products may pick up `±i`.
//!
//! This is the substrate for the [`CliffordTableau`](crate::CliffordTableau)
//! and the Pauli-product-rotation transpiler used by the Litinski baseline.

use crate::gate::{Gate, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// Binary-symplectic `(x, z)` encoding.
    pub fn bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Decodes from `(x, z)` bits.
    pub fn from_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Whether two single-qubit Paulis commute.
    pub fn commutes(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// Global phase of a Pauli string: `i^k` with `k` mod 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Phase(u8);

impl Phase {
    /// `+1`.
    pub const PLUS: Phase = Phase(0);
    /// `+i`.
    pub const I: Phase = Phase(1);
    /// `-1`.
    pub const MINUS: Phase = Phase(2);
    /// `-i`.
    pub const MINUS_I: Phase = Phase(3);

    /// Creates `i^k`.
    pub fn from_i_exponent(k: u8) -> Self {
        Phase(k % 4)
    }

    /// The exponent `k` of `i^k`, in `0..4`.
    pub fn i_exponent(self) -> u8 {
        self.0
    }

    /// Whether the phase is real (`±1`).
    pub fn is_real(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Whether the phase is exactly `-1`.
    pub fn is_minus(self) -> bool {
        self.0 == 2
    }

    /// Product of two phases.
    ///
    /// An inherent method (not the `Mul` operator) because `Phase` is used
    /// in tight per-qubit loops where explicit calls read better.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Phase) -> Phase {
        Phase((self.0 + other.0) % 4)
    }

    /// Negated phase.
    pub fn negate(self) -> Phase {
        self.mul(Phase::MINUS)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.0 {
            0 => "+",
            1 => "+i",
            2 => "-",
            _ => "-i",
        };
        write!(f, "{s}")
    }
}

/// A phased Pauli string over `n` qubits.
///
/// # Example
///
/// ```
/// use ftqc_circuit::{Pauli, PauliString};
///
/// let mut p = PauliString::identity(3);
/// p.set(0, Pauli::X);
/// p.set(2, Pauli::Z);
/// assert_eq!(p.weight(), 2);
/// assert_eq!(p.to_string(), "+XIZ");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PauliString {
    xs: Vec<bool>,
    zs: Vec<bool>,
    phase: Phase,
}

impl PauliString {
    /// The identity string over `n` qubits with phase `+1`.
    pub fn identity(n: usize) -> Self {
        Self {
            xs: vec![false; n],
            zs: vec![false; n],
            phase: Phase::PLUS,
        }
    }

    /// A single-qubit Pauli embedded in an `n`-qubit string.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn single(n: usize, q: Qubit, p: Pauli) -> Self {
        let mut s = Self::identity(n);
        s.set(q, p);
        s
    }

    /// Parses a string like `"XIZ"` or `"-XYZ"` / `"+iZZ"`.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description when a character is not in
    /// `IXYZ` or the phase prefix is malformed.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (phase, body) = if let Some(rest) = s.strip_prefix("+i") {
            (Phase::I, rest)
        } else if let Some(rest) = s.strip_prefix("-i") {
            (Phase::MINUS_I, rest)
        } else if let Some(rest) = s.strip_prefix('+') {
            (Phase::PLUS, rest)
        } else if let Some(rest) = s.strip_prefix('-') {
            (Phase::MINUS, rest)
        } else {
            (Phase::PLUS, s)
        };
        let mut out = Self::identity(body.len());
        for (i, ch) in body.chars().enumerate() {
            let p = match ch {
                'I' | 'i' => Pauli::I,
                'X' | 'x' => Pauli::X,
                'Y' | 'y' => Pauli::Y,
                'Z' | 'z' => Pauli::Z,
                other => return Err(format!("invalid pauli character '{other}'")),
            };
            out.set(i as Qubit, p);
        }
        out.phase = phase;
        Ok(out)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.xs.len()
    }

    /// The global phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Overwrites the global phase.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// The Pauli at qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn get(&self, q: Qubit) -> Pauli {
        Pauli::from_bits(self.xs[q as usize], self.zs[q as usize])
    }

    /// Sets the Pauli at qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set(&mut self, q: Qubit, p: Pauli) {
        let (x, z) = p.bits();
        self.xs[q as usize] = x;
        self.zs[q as usize] = z;
    }

    /// Number of non-identity positions.
    pub fn weight(&self) -> usize {
        self.xs
            .iter()
            .zip(&self.zs)
            .filter(|(&x, &z)| x || z)
            .count()
    }

    /// Whether the string is the identity (phase ignored).
    pub fn is_identity(&self) -> bool {
        self.weight() == 0
    }

    /// Iterator over `(qubit, Pauli)` pairs for non-identity positions.
    pub fn support(&self) -> impl Iterator<Item = (Qubit, Pauli)> + '_ {
        self.xs
            .iter()
            .zip(&self.zs)
            .enumerate()
            .filter(|(_, (&x, &z))| x || z)
            .map(|(q, (&x, &z))| (q as Qubit, Pauli::from_bits(x, z)))
    }

    /// Whether this string commutes with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the strings have different lengths.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.num_qubits(), other.num_qubits());
        let mut anti = false;
        for i in 0..self.xs.len() {
            anti ^= (self.xs[i] && other.zs[i]) ^ (self.zs[i] && other.xs[i]);
        }
        !anti
    }

    /// In-place product `self ← self · other`, with exact phase tracking
    /// (e.g. `X · Y = iZ`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mul_assign(&mut self, other: &PauliString) {
        assert_eq!(self.num_qubits(), other.num_qubits());
        let mut k = self.phase.i_exponent() as u32 + other.phase.i_exponent() as u32;
        for i in 0..self.xs.len() {
            k += pauli_product_i_exponent(self.xs[i], self.zs[i], other.xs[i], other.zs[i]) as u32;
            self.xs[i] ^= other.xs[i];
            self.zs[i] ^= other.zs[i];
        }
        self.phase = Phase::from_i_exponent((k % 4) as u8);
    }

    /// Conjugates the string in place by a Clifford gate: `P ← g P g†`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not Clifford (T, T†, non-Clifford Rz, measure) or
    /// references a qubit out of range.
    pub fn conjugate_by(&mut self, gate: &Gate) {
        match *gate {
            Gate::H(q) => {
                let q = q as usize;
                if self.xs[q] && self.zs[q] {
                    self.phase = self.phase.negate();
                }
                self.xs.swap_with_slice_at(q, &mut self.zs);
            }
            Gate::S(q) => {
                let q = q as usize;
                if self.xs[q] && self.zs[q] {
                    self.phase = self.phase.negate();
                }
                self.zs[q] ^= self.xs[q];
            }
            Gate::Sdg(q) => {
                let q = q as usize;
                if self.xs[q] && !self.zs[q] {
                    self.phase = self.phase.negate();
                }
                self.zs[q] ^= self.xs[q];
            }
            Gate::Sx(q) => {
                let q = q as usize;
                if self.zs[q] && !self.xs[q] {
                    self.phase = self.phase.negate();
                }
                self.xs[q] ^= self.zs[q];
            }
            Gate::Sxdg(q) => {
                let q = q as usize;
                if self.zs[q] && self.xs[q] {
                    self.phase = self.phase.negate();
                }
                self.xs[q] ^= self.zs[q];
            }
            Gate::X(q) => {
                if self.zs[q as usize] {
                    self.phase = self.phase.negate();
                }
            }
            Gate::Y(q) => {
                if self.zs[q as usize] ^ self.xs[q as usize] {
                    self.phase = self.phase.negate();
                }
            }
            Gate::Z(q) => {
                if self.xs[q as usize] {
                    self.phase = self.phase.negate();
                }
            }
            Gate::Rz(q, a) => {
                assert!(a.is_clifford(), "cannot conjugate by non-Clifford Rz");
                // Reduce to a power of S: angle = k * π/2 mod 2π.
                let halves = (a.turns_of_pi() * 2.0).round() as i64;
                match halves.rem_euclid(4) {
                    0 => {}
                    1 => self.conjugate_by(&Gate::S(q)),
                    2 => self.conjugate_by(&Gate::Z(q)),
                    _ => self.conjugate_by(&Gate::Sdg(q)),
                }
            }
            Gate::Cnot { control, target } => {
                let (c, t) = (control as usize, target as usize);
                // Aaronson–Gottesman CNOT phase rule.
                if self.xs[c] && self.zs[t] && (self.xs[t] == self.zs[c]) {
                    self.phase = self.phase.negate();
                }
                self.xs[t] ^= self.xs[c];
                self.zs[c] ^= self.zs[t];
            }
            Gate::Cz(a, b) => {
                // CZ = (I⊗H) CNOT (I⊗H)
                self.conjugate_by(&Gate::H(b));
                self.conjugate_by(&Gate::Cnot {
                    control: a,
                    target: b,
                });
                self.conjugate_by(&Gate::H(b));
            }
            Gate::Swap(a, b) => {
                self.xs.swap(a as usize, b as usize);
                self.zs.swap(a as usize, b as usize);
            }
            Gate::T(_) | Gate::Tdg(_) | Gate::Measure(_) => {
                panic!("cannot conjugate a pauli string by non-Clifford gate {gate}")
            }
        }
    }
}

/// Helper trait: swap single elements between two slices.
trait SwapAt {
    fn swap_with_slice_at(&mut self, i: usize, other: &mut Self);
}

impl SwapAt for Vec<bool> {
    fn swap_with_slice_at(&mut self, i: usize, other: &mut Self) {
        std::mem::swap(&mut self[i], &mut other[i]);
    }
}

/// `i`-exponent contributed by the single-qubit product `P1 · P2` where
/// `P1=(x1,z1)`, `P2=(x2,z2)`: e.g. `X·Y = iZ` contributes 1, `Y·X = -iZ`
/// contributes 3.
fn pauli_product_i_exponent(x1: bool, z1: bool, x2: bool, z2: bool) -> u8 {
    let p1 = Pauli::from_bits(x1, z1);
    let p2 = Pauli::from_bits(x2, z2);
    use Pauli::*;
    match (p1, p2) {
        (I, _) | (_, I) => 0,
        (a, b) if a == b => 0,
        (X, Y) | (Y, Z) | (Z, X) => 1, // cyclic: +i
        _ => 3,                        // anti-cyclic: -i
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.phase)?;
        for i in 0..self.xs.len() {
            write!(f, "{}", Pauli::from_bits(self.xs[i], self.zs[i]))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        PauliString::parse(s).expect("valid pauli literal")
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for lit in ["+XIZ", "-YYI", "+iZZZ", "-iXXX", "+III"] {
            assert_eq!(ps(lit).to_string(), lit);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PauliString::parse("XQZ").is_err());
    }

    #[test]
    fn weight_and_support() {
        let p = ps("XIZY");
        assert_eq!(p.weight(), 3);
        let sup: Vec<_> = p.support().collect();
        assert_eq!(sup, vec![(0, Pauli::X), (2, Pauli::Z), (3, Pauli::Y)]);
    }

    #[test]
    fn commutation_rules() {
        assert!(ps("XX").commutes_with(&ps("ZZ")));
        assert!(!ps("XI").commutes_with(&ps("ZI")));
        assert!(ps("XI").commutes_with(&ps("IZ")));
        assert!(ps("YY").commutes_with(&ps("YY")));
        // Anticommuting at an even number of positions (0 and 2) => commute.
        assert!(ps("XYZ").commutes_with(&ps("ZYX")));
        assert!(!ps("XYZ").commutes_with(&ps("ZYZ")));
    }

    #[test]
    fn product_phases() {
        // X * Y = iZ
        let mut p = ps("X");
        p.mul_assign(&ps("Y"));
        assert_eq!(p.to_string(), "+iZ");
        // Y * X = -iZ
        let mut p = ps("Y");
        p.mul_assign(&ps("X"));
        assert_eq!(p.to_string(), "-iZ");
        // Z * Z = I
        let mut p = ps("Z");
        p.mul_assign(&ps("Z"));
        assert!(p.is_identity());
        assert_eq!(p.phase(), Phase::PLUS);
    }

    #[test]
    fn product_multi_qubit() {
        // (X⊗Z) * (Y⊗Z) = (iZ)⊗I = i Z⊗I
        let mut p = ps("XZ");
        p.mul_assign(&ps("YZ"));
        assert_eq!(p.to_string(), "+iZI");
    }

    #[test]
    fn h_conjugation() {
        let mut p = ps("X");
        p.conjugate_by(&Gate::H(0));
        assert_eq!(p.to_string(), "+Z");
        let mut p = ps("Z");
        p.conjugate_by(&Gate::H(0));
        assert_eq!(p.to_string(), "+X");
        let mut p = ps("Y");
        p.conjugate_by(&Gate::H(0));
        assert_eq!(p.to_string(), "-Y");
    }

    #[test]
    fn s_conjugation() {
        let mut p = ps("X");
        p.conjugate_by(&Gate::S(0));
        assert_eq!(p.to_string(), "+Y");
        let mut p = ps("Y");
        p.conjugate_by(&Gate::S(0));
        assert_eq!(p.to_string(), "-X");
        let mut p = ps("Z");
        p.conjugate_by(&Gate::S(0));
        assert_eq!(p.to_string(), "+Z");
    }

    #[test]
    fn sdg_inverts_s() {
        for lit in ["X", "Y", "Z"] {
            let mut p = ps(lit);
            p.conjugate_by(&Gate::S(0));
            p.conjugate_by(&Gate::Sdg(0));
            assert_eq!(p, ps(lit), "S then Sdg must be identity on {lit}");
        }
    }

    #[test]
    fn sx_conjugation() {
        let mut p = ps("Z");
        p.conjugate_by(&Gate::Sx(0));
        assert_eq!(p.to_string(), "-Y");
        let mut p = ps("Y");
        p.conjugate_by(&Gate::Sx(0));
        assert_eq!(p.to_string(), "+Z");
        let mut p = ps("X");
        p.conjugate_by(&Gate::Sx(0));
        assert_eq!(p.to_string(), "+X");
    }

    #[test]
    fn sxdg_inverts_sx() {
        for lit in ["X", "Y", "Z"] {
            let mut p = ps(lit);
            p.conjugate_by(&Gate::Sx(0));
            p.conjugate_by(&Gate::Sxdg(0));
            assert_eq!(p, ps(lit));
        }
    }

    #[test]
    fn pauli_gate_conjugation_signs() {
        let mut p = ps("Z");
        p.conjugate_by(&Gate::X(0));
        assert_eq!(p.to_string(), "-Z");
        let mut p = ps("X");
        p.conjugate_by(&Gate::Z(0));
        assert_eq!(p.to_string(), "-X");
        let mut p = ps("Y");
        p.conjugate_by(&Gate::Y(0));
        assert_eq!(p.to_string(), "+Y");
    }

    #[test]
    fn cnot_conjugation_table() {
        let cx = Gate::Cnot {
            control: 0,
            target: 1,
        };
        let cases = [
            ("XI", "+XX"),
            ("IX", "+IX"),
            ("ZI", "+ZI"),
            ("IZ", "+ZZ"),
            ("YI", "+YX"),
            ("IY", "+ZY"),
            ("XX", "+XI"),
            ("ZZ", "+IZ"),
            ("YY", "-XZ"),
        ];
        for (input, expected) in cases {
            let mut p = ps(input);
            p.conjugate_by(&cx);
            assert_eq!(p.to_string(), expected, "CNOT on {input}");
        }
    }

    #[test]
    fn cz_conjugation_table() {
        let cz = Gate::Cz(0, 1);
        let cases = [("XI", "+XZ"), ("IX", "+ZX"), ("ZI", "+ZI"), ("IZ", "+IZ")];
        for (input, expected) in cases {
            let mut p = ps(input);
            p.conjugate_by(&cz);
            assert_eq!(p.to_string(), expected, "CZ on {input}");
        }
    }

    #[test]
    fn swap_conjugation() {
        let mut p = ps("XZ");
        p.conjugate_by(&Gate::Swap(0, 1));
        assert_eq!(p.to_string(), "+ZX");
    }

    #[test]
    fn clifford_rz_reduction() {
        use crate::gate::Angle;
        // Rz(π/2) ~ S
        let mut p = ps("X");
        p.conjugate_by(&Gate::Rz(0, Angle::new(0.5)));
        assert_eq!(p.to_string(), "+Y");
        // Rz(π) ~ Z
        let mut p = ps("X");
        p.conjugate_by(&Gate::Rz(0, Angle::new(1.0)));
        assert_eq!(p.to_string(), "-X");
        // Rz(-π/2) ~ Sdg
        let mut p = ps("X");
        p.conjugate_by(&Gate::Rz(0, Angle::new(-0.5)));
        assert_eq!(p.to_string(), "-Y");
        // Rz(2π) ~ I
        let mut p = ps("X");
        p.conjugate_by(&Gate::Rz(0, Angle::new(2.0)));
        assert_eq!(p.to_string(), "+X");
    }

    #[test]
    #[should_panic(expected = "non-Clifford")]
    fn t_conjugation_panics() {
        let mut p = ps("X");
        p.conjugate_by(&Gate::T(0));
    }

    #[test]
    fn conjugation_preserves_commutation() {
        // Conjugation is an automorphism: commutation must be invariant.
        let gates = [
            Gate::H(0),
            Gate::S(1),
            Gate::Sx(0),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::Cz(1, 0),
        ];
        let strings = ["XI", "IX", "ZI", "IZ", "YY", "XZ", "ZY"];
        for g in &gates {
            for a in strings {
                for b in strings {
                    let (mut ca, mut cb) = (ps(a), ps(b));
                    let before = ca.commutes_with(&cb);
                    ca.conjugate_by(g);
                    cb.conjugate_by(g);
                    assert_eq!(before, ca.commutes_with(&cb), "gate {g} on ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn phase_arithmetic() {
        assert_eq!(Phase::I.mul(Phase::I), Phase::MINUS);
        assert_eq!(Phase::MINUS.mul(Phase::MINUS), Phase::PLUS);
        assert_eq!(Phase::I.mul(Phase::MINUS_I), Phase::PLUS);
        assert!(Phase::PLUS.is_real());
        assert!(!Phase::I.is_real());
        assert!(Phase::MINUS.is_minus());
        assert_eq!(Phase::from_i_exponent(7), Phase::MINUS_I);
    }
}
