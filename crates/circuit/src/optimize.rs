//! Peephole circuit optimisation: cancellation and rotation merging.
//!
//! The paper's pipeline compiles the input circuit as-is; a production
//! front end first removes the redundancy that Trotterised and synthesised
//! circuits accumulate. This pass applies three local rewrites until a
//! fixed point:
//!
//! 1. **Inverse-pair cancellation** — adjacent `g·g⁻¹` on the same operand
//!    set (`H H`, `X X`, `S S†`, `T T†`, identical `CNOT CNOT`, …) vanish.
//!    "Adjacent" means no intervening gate touches the shared qubits, which
//!    the per-qubit last-gate index tracks exactly.
//! 2. **Z-rotation merging** — consecutive Z-diagonal gates on one qubit
//!    (`Z`, `S`, `S†`, `T`, `T†`, `Rz(θ)`) fuse into a single rotation;
//!    exact multiples of π/4 re-canonicalise to named gates via
//!    [`crate::synthesis::synthesize_rz`], anything `≡ 0 (mod 2π)` vanishes.
//! 3. **Identity elimination** — `Rz(0)` and empty merges are dropped.
//!
//! Every rewrite preserves the unitary exactly (up to global phase); the
//! property suite checks optimised circuits against the dense state-vector
//! oracle on random inputs.

use crate::circuit::Circuit;
use crate::gate::{Angle, Gate, Qubit};
use crate::synthesis::{synthesize_rz, SynthesisModel};

/// Statistics of one [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Gates in the input.
    pub gates_in: usize,
    /// Gates in the output.
    pub gates_out: usize,
    /// Inverse pairs cancelled.
    pub pairs_cancelled: usize,
    /// Z-rotations merged into a neighbour.
    pub rotations_merged: usize,
    /// Fixed-point iterations used.
    pub passes: usize,
}

impl OptimizeStats {
    /// Gates removed.
    pub fn removed(&self) -> usize {
        self.gates_in.saturating_sub(self.gates_out)
    }
}

/// The Z-diagonal angle of a gate, if it is a Z-rotation up to global
/// phase.
fn z_angle(g: &Gate) -> Option<(Qubit, Angle)> {
    match *g {
        Gate::Z(q) => Some((q, Angle::new(1.0))),
        Gate::S(q) => Some((q, Angle::new(0.5))),
        Gate::Sdg(q) => Some((q, Angle::new(-0.5))),
        Gate::T(q) => Some((q, Angle::new(0.25))),
        Gate::Tdg(q) => Some((q, Angle::new(-0.25))),
        Gate::Rz(q, a) => Some((q, a)),
        _ => None,
    }
}

/// Canonical gate sequence for a merged Z-rotation (empty when the angle is
/// an identity).
fn canonical_z(q: Qubit, a: Angle) -> Vec<Gate> {
    if a.is_identity() {
        return Vec::new();
    }
    match synthesize_rz(q, a, SynthesisModel::default()).gates {
        Some(word) => word,
        None => vec![Gate::Rz(q, a)],
    }
}

/// One sweep of cancellation + merging. Returns the rewritten gate list and
/// the number of rewrites applied.
fn sweep(gates: &[Gate], stats: &mut OptimizeStats) -> (Vec<Gate>, usize) {
    // out[i] = None marks a removed gate; last[q] = index into `out` of the
    // most recent surviving gate touching q.
    let mut out: Vec<Option<Gate>> = Vec::with_capacity(gates.len());
    let mut last: std::collections::HashMap<Qubit, usize> = std::collections::HashMap::new();
    let mut rewrites = 0usize;

    'next_gate: for g in gates {
        if g.is_measurement() {
            // Measurements are barriers on their qubit.
            let q = g.qubits().next().expect("measure is single-qubit");
            out.push(Some(*g));
            last.insert(q, out.len() - 1);
            continue;
        }

        let operands: Vec<Qubit> = g.qubits().collect();
        // The candidate predecessor: the same surviving index for *all*
        // operands (otherwise something intervened on one of them).
        let prev_idx = operands
            .iter()
            .map(|q| last.get(q).copied())
            .reduce(|a, b| if a == b { a } else { None })
            .flatten();

        if let Some(i) = prev_idx {
            if let Some(prev) = out[i] {
                // Rule 1: inverse pair on the identical operand set.
                let same_operands =
                    prev.qubits().collect::<Vec<_>>() == operands && prev.arity() == g.arity();
                if same_operands && !prev.is_measurement() && prev.inverse() == *g {
                    out[i] = None;
                    for q in &operands {
                        last.remove(q);
                    }
                    // Re-expose the previous survivor on these qubits.
                    for (j, slot) in out.iter().enumerate().take(i).rev() {
                        if let Some(e) = slot {
                            for q in e.qubits() {
                                if operands.contains(&q) {
                                    last.entry(q).or_insert(j);
                                }
                            }
                        }
                        if operands.iter().all(|q| last.contains_key(q)) {
                            break;
                        }
                    }
                    stats.pairs_cancelled += 1;
                    rewrites += 1;
                    continue 'next_gate;
                }
                // Rule 2: Z-rotation merging.
                if let (Some((q1, a1)), Some((q2, a2))) = (z_angle(&prev), z_angle(g)) {
                    if q1 == q2 {
                        let merged = Angle::new(a1.turns_of_pi() + a2.turns_of_pi());
                        let word = canonical_z(q1, merged);
                        // Replace `prev` with the head of the word (or
                        // remove); any word tail is appended.
                        let mut word_iter = word.into_iter();
                        match word_iter.next() {
                            Some(head) => {
                                out[i] = Some(head);
                                for tail in word_iter {
                                    out.push(Some(tail));
                                    last.insert(q1, out.len() - 1);
                                }
                            }
                            None => {
                                out[i] = None;
                                last.remove(&q1);
                                for (j, slot) in out.iter().enumerate().take(i).rev() {
                                    if let Some(e) = slot {
                                        if e.qubits().any(|q| q == q1) {
                                            last.insert(q1, j);
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                        stats.rotations_merged += 1;
                        rewrites += 1;
                        continue 'next_gate;
                    }
                }
            }
        }

        // Rule 3: drop bare identity rotations.
        if let Gate::Rz(_, a) = g {
            if a.is_identity() {
                rewrites += 1;
                continue;
            }
        }

        out.push(Some(*g));
        let idx = out.len() - 1;
        for q in operands {
            last.insert(q, idx);
        }
    }

    (out.into_iter().flatten().collect(), rewrites)
}

/// Optimises `circuit` to a fixed point and reports what changed.
///
/// # Example
///
/// ```
/// use ftqc_circuit::{optimize, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(0).t(1).t(1).cnot(0, 1).cnot(0, 1);
/// let (opt, stats) = optimize(&c);
/// // H·H and CNOT·CNOT vanish; T·T fuses to S.
/// assert_eq!(opt.len(), 1);
/// assert_eq!(stats.removed(), 5);
/// ```
pub fn optimize(circuit: &Circuit) -> (Circuit, OptimizeStats) {
    let mut stats = OptimizeStats {
        gates_in: circuit.len(),
        ..Default::default()
    };
    let mut gates: Vec<Gate> = circuit.iter().copied().collect();
    // Each sweep strictly shrinks or rewrites; bound the fixed point
    // defensively anyway.
    for _ in 0..circuit.len().max(4) {
        stats.passes += 1;
        let (next, rewrites) = sweep(&gates, &mut stats);
        gates = next;
        if rewrites == 0 {
            break;
        }
    }
    stats.gates_out = gates.len();
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name());
    out.append(gates);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::circuits_equivalent;

    fn assert_preserves(c: &Circuit) -> Circuit {
        let (opt, stats) = optimize(c);
        assert!(
            circuits_equivalent(c, &opt, 1e-9),
            "optimisation changed semantics"
        );
        assert!(stats.gates_out <= stats.gates_in);
        assert_eq!(stats.gates_out, opt.len());
        opt
    }

    #[test]
    fn adjacent_hh_cancels() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let opt = assert_preserves(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn cnot_pair_cancels() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(0, 1);
        let opt = assert_preserves(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn reversed_cnot_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(1, 0);
        let opt = assert_preserves(&c);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn interleaved_pair_still_cancels_when_disjoint() {
        // H(1) between the two H(0) does not block the cancellation.
        let mut c = Circuit::new(2);
        c.h(0).h(1).h(0);
        let opt = assert_preserves(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.gates()[0], Gate::H(1));
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let opt = assert_preserves(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn tt_merges_to_s() {
        let mut c = Circuit::new(1);
        c.t(0).t(0);
        let opt = assert_preserves(&c);
        assert_eq!(opt.gates(), &[Gate::S(0)]);
    }

    #[test]
    fn s_sdg_vanishes() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0);
        let opt = assert_preserves(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn rotation_chain_fuses_completely() {
        // T·T·S·Z = Rz(2π) = identity.
        let mut c = Circuit::new(1);
        c.t(0).t(0).s(0).z(0);
        let opt = assert_preserves(&c);
        assert!(opt.is_empty(), "got {:?}", opt.gates());
    }

    #[test]
    fn generic_angles_accumulate() {
        let mut c = Circuit::new(1);
        c.rz_pi(0, 0.1).rz_pi(0, 0.17);
        let opt = assert_preserves(&c);
        assert_eq!(opt.len(), 1);
        let Gate::Rz(_, a) = opt.gates()[0] else {
            panic!("expected a fused rotation");
        };
        assert!((a.turns_of_pi() - 0.27).abs() < 1e-12);
    }

    #[test]
    fn identity_rotation_dropped() {
        let mut c = Circuit::new(1);
        c.rz_pi(0, 0.0).h(0).rz_pi(0, 2.0);
        let opt = assert_preserves(&c);
        assert_eq!(opt.len(), 1);
    }

    #[test]
    fn cascading_cancellation_reaches_fixed_point() {
        // T Tdg exposes the H pair: everything vanishes.
        let mut c = Circuit::new(1);
        c.h(0).t(0).tdg(0).h(0);
        let opt = assert_preserves(&c);
        assert!(opt.is_empty(), "got {:?}", opt.gates());
    }

    #[test]
    fn measurement_is_a_barrier() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0).h(0);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn trotter_style_circuit_shrinks() {
        // Adjacent Trotter steps produce back-to-back CNOT pairs.
        let mut c = Circuit::new(4);
        for _ in 0..2 {
            c.cnot(0, 1).rz_pi(1, 0.1).cnot(0, 1);
            c.cnot(2, 3).rz_pi(3, 0.1).cnot(2, 3);
        }
        let (opt, stats) = optimize(&c);
        assert!(circuits_equivalent(&c, &opt, 1e-9));
        assert!(stats.removed() >= 2, "middle CNOT pairs should cancel");
    }

    #[test]
    fn stats_add_up() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).t(1).t(1);
        let (_, stats) = optimize(&c);
        assert_eq!(stats.gates_in, 4);
        assert_eq!(stats.gates_out, 1);
        assert_eq!(stats.removed(), 3);
        assert!(stats.passes >= 1);
        assert!(stats.pairs_cancelled >= 1);
        assert!(stats.rotations_merged >= 1);
    }
}
