//! T-count models for synthesising arbitrary `Rz(θ)` rotations.
//!
//! The paper's accounting charges **one magic state per non-Clifford
//! rotation** (each condensed-matter `Rz` consumes one distilled T state,
//! §VI). On real early-FT hardware an arbitrary-angle `Rz` must first be
//! *synthesised* into a Clifford+T word, and the length of that word sets
//! the true magic-state bill. This module provides the standard count
//! models from the synthesis literature so the compiler's `TStatePolicy`
//! can be driven by a target precision instead of a flat constant:
//!
//! * [`SynthesisModel::PerRotation`] — the paper's accounting (k states per
//!   rotation, default 1).
//! * [`SynthesisModel::RossSelinger`] — ancilla-free optimal-grid synthesis,
//!   `T-count ≈ 3·log₂(1/ε) + O(log log 1/ε)` (Ross & Selinger 2016).
//! * [`SynthesisModel::RepeatUntilSuccess`] — RUS circuits with an expected
//!   `T-count ≈ 1.15·log₂(1/ε)` (Bocharov, Roetteler & Svore 2015).
//!
//! Angles that are exact multiples of π/4 bypass the models: multiples of
//! π/2 are Clifford (zero T), odd multiples of π/4 cost exactly one T and
//! this module emits the exact gate word for them.
//!
//! **Substitution note** (see DESIGN.md): full Ross–Selinger synthesis
//! requires exact arithmetic over ℤ\[ω\] and a Diophantine solver; since the
//! compiler consumes only the *T-count* of a rotation (never the word
//! itself — rotations execute as repeated magic-state consumptions), we
//! implement the published count formulas exactly and emit explicit words
//! only in the exact π/4 cases, which is all the schedule replayer needs.

use crate::gate::{Angle, Gate, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How to convert a non-Clifford rotation into a magic-state budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SynthesisModel {
    /// A flat number of magic states per non-Clifford rotation. The paper
    /// evaluates with `PerRotation(1)`.
    PerRotation(u32),
    /// Ross–Selinger ancilla-free synthesis at precision `eps`:
    /// `T-count = ceil(3·log₂(1/ε)) + delta` with the small additive
    /// constant `delta = 4` reported for typical instances.
    RossSelinger {
        /// Target operator-norm precision ε (0 < ε < 1).
        eps: f64,
    },
    /// Repeat-until-success synthesis at precision `eps`: expected
    /// `T-count = ceil(1.15·log₂(1/ε))`.
    RepeatUntilSuccess {
        /// Target precision ε (0 < ε < 1).
        eps: f64,
    },
}

impl Default for SynthesisModel {
    fn default() -> Self {
        SynthesisModel::PerRotation(1)
    }
}

impl fmt::Display for SynthesisModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisModel::PerRotation(k) => write!(f, "per-rotation({k})"),
            SynthesisModel::RossSelinger { eps } => write!(f, "ross-selinger(ε={eps:.0e})"),
            SynthesisModel::RepeatUntilSuccess { eps } => write!(f, "rus(ε={eps:.0e})"),
        }
    }
}

/// Additive constant in the Ross–Selinger count (the `O(log log 1/ε)` term
/// is ≤ 4 across the precision range relevant to early FTQC).
const ROSS_SELINGER_DELTA: u32 = 4;

impl SynthesisModel {
    /// The magic-state cost of one generic (non-π/4-multiple) rotation.
    ///
    /// # Panics
    ///
    /// Panics if a precision-parameterised model was built with `eps`
    /// outside `(0, 1)`.
    pub fn generic_t_count(self) -> u32 {
        match self {
            SynthesisModel::PerRotation(k) => k,
            SynthesisModel::RossSelinger { eps } => {
                assert!(
                    eps > 0.0 && eps < 1.0,
                    "precision must be in (0,1), got {eps}"
                );
                (3.0 * (1.0 / eps).log2()).ceil() as u32 + ROSS_SELINGER_DELTA
            }
            SynthesisModel::RepeatUntilSuccess { eps } => {
                assert!(
                    eps > 0.0 && eps < 1.0,
                    "precision must be in (0,1), got {eps}"
                );
                (1.15 * (1.0 / eps).log2()).ceil() as u32
            }
        }
    }

    /// The magic-state cost of `Rz(angle)` under this model.
    ///
    /// Exact cases short-circuit the model: Clifford angles cost 0 and odd
    /// multiples of π/4 cost exactly 1 regardless of the model.
    pub fn t_count(self, angle: Angle) -> u32 {
        if angle.is_clifford() {
            0
        } else if is_odd_quarter(angle) {
            1
        } else {
            self.generic_t_count()
        }
    }

    /// Total magic-state bill of a circuit under this model: every `T`/`T†`
    /// costs 1; every `Rz` costs [`SynthesisModel::t_count`].
    pub fn circuit_t_count<'a>(self, gates: impl IntoIterator<Item = &'a Gate>) -> u64 {
        gates
            .into_iter()
            .map(|g| match g {
                Gate::T(_) | Gate::Tdg(_) => 1,
                Gate::Rz(_, a) => u64::from(self.t_count(*a)),
                _ => 0,
            })
            .sum()
    }
}

/// Whether `angle` is an odd multiple of π/4 (a T-power that is not
/// Clifford), up to the same tolerance the Clifford predicate uses.
fn is_odd_quarter(angle: Angle) -> bool {
    let quarters = angle.turns_of_pi() * 4.0;
    (quarters - quarters.round()).abs() < 1e-12 && !angle.is_clifford()
}

/// The result of synthesising one rotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesizedRotation {
    /// Magic states consumed.
    pub t_count: u32,
    /// Explicit Clifford+T word, available when the angle is an exact
    /// multiple of π/4 (`None` for generic angles, whose word would require
    /// number-theoretic synthesis the compiler never consumes).
    pub gates: Option<Vec<Gate>>,
}

/// Synthesises `Rz(angle)` on `q` under `model`.
///
/// Exact multiples of π/4 return an explicit word built from
/// `{Z, S, S†, T, T†}`; other angles return the model's T-count with no
/// word.
///
/// # Example
///
/// ```
/// use ftqc_circuit::{synthesize_rz, Angle, SynthesisModel};
///
/// // 5π/4 = Z·T: one magic state, explicit word.
/// let r = synthesize_rz(0, Angle::new(1.25), SynthesisModel::default());
/// assert_eq!(r.t_count, 1);
/// assert!(r.gates.is_some());
///
/// // A generic angle costs ~3·log2(1/ε) under Ross–Selinger.
/// let r = synthesize_rz(0, Angle::new(0.1), SynthesisModel::RossSelinger { eps: 1e-10 });
/// assert_eq!(r.t_count, 3 * 34 + 2); // ceil(3·log2(1e10)) + 4
/// assert!(r.gates.is_none());
/// ```
pub fn synthesize_rz(q: Qubit, angle: Angle, model: SynthesisModel) -> SynthesizedRotation {
    // Exact π/4 lattice: reduce to k·π/4 with k ∈ 0..8.
    let quarters = angle.turns_of_pi() * 4.0;
    if (quarters - quarters.round()).abs() < 1e-12 {
        let k = (quarters.round() as i64).rem_euclid(8) as u32;
        let gates = quarter_word(q, k);
        let t_count = gates
            .iter()
            .filter(|g| matches!(g, Gate::T(_) | Gate::Tdg(_)))
            .count() as u32;
        return SynthesizedRotation {
            t_count,
            gates: Some(gates),
        };
    }
    SynthesizedRotation {
        t_count: model.generic_t_count(),
        gates: None,
    }
}

/// The canonical word for `Rz(k·π/4)`, `k ∈ 0..8`, using at most one T.
fn quarter_word(q: Qubit, k: u32) -> Vec<Gate> {
    match k {
        0 => vec![],
        1 => vec![Gate::T(q)],
        2 => vec![Gate::S(q)],
        3 => vec![Gate::S(q), Gate::T(q)],
        4 => vec![Gate::Z(q)],
        5 => vec![Gate::Z(q), Gate::T(q)],
        6 => vec![Gate::Sdg(q)],
        7 => vec![Gate::Tdg(q)],
        _ => unreachable!("k reduced mod 8"),
    }
}

/// Rewrites a circuit by expanding every exact-π/4 `Rz` into its
/// Clifford+T word, leaving generic-angle rotations in place.
///
/// This normal form lets the Clifford-fragment verifiers (tableau,
/// stabilizer) consume circuits whose rotations were written as `rz(pi/2)`
/// etc. in QASM sources.
pub fn expand_exact_rotations(circuit: &crate::circuit::Circuit) -> crate::circuit::Circuit {
    let mut out = crate::circuit::Circuit::with_name(circuit.num_qubits(), circuit.name());
    for g in circuit.iter() {
        match *g {
            Gate::Rz(q, a) => match synthesize_rz(q, a, SynthesisModel::default()).gates {
                Some(word) => {
                    out.append(word);
                }
                None => {
                    out.push(*g);
                }
            },
            g => {
                out.push(g);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::statevector::circuits_equivalent;

    #[test]
    fn clifford_angles_cost_zero() {
        for m in [
            SynthesisModel::PerRotation(1),
            SynthesisModel::RossSelinger { eps: 1e-10 },
            SynthesisModel::RepeatUntilSuccess { eps: 1e-10 },
        ] {
            assert_eq!(m.t_count(Angle::new(0.0)), 0);
            assert_eq!(m.t_count(Angle::new(0.5)), 0);
            assert_eq!(m.t_count(Angle::new(1.0)), 0);
            assert_eq!(m.t_count(Angle::new(-1.5)), 0);
        }
    }

    #[test]
    fn quarter_angles_cost_one_everywhere() {
        for m in [
            SynthesisModel::PerRotation(7),
            SynthesisModel::RossSelinger { eps: 1e-15 },
        ] {
            assert_eq!(m.t_count(Angle::new(0.25)), 1);
            assert_eq!(m.t_count(Angle::new(-0.25)), 1);
            assert_eq!(m.t_count(Angle::new(0.75)), 1);
        }
    }

    #[test]
    fn per_rotation_flat_cost() {
        let m = SynthesisModel::PerRotation(3);
        assert_eq!(m.t_count(Angle::new(0.1)), 3);
        assert_eq!(m.generic_t_count(), 3);
    }

    #[test]
    fn ross_selinger_count_scales_with_precision() {
        let loose = SynthesisModel::RossSelinger { eps: 1e-3 };
        let tight = SynthesisModel::RossSelinger { eps: 1e-12 };
        // ceil(3·log2(1e3)) + 4 = 30 + 4; ceil(3·log2(1e12)) + 4 = 120 + 4.
        assert_eq!(loose.generic_t_count(), 34);
        assert_eq!(tight.generic_t_count(), 124);
        assert!(tight.generic_t_count() > loose.generic_t_count());
    }

    #[test]
    fn rus_cheaper_than_ross_selinger() {
        let eps = 1e-10;
        let rs = SynthesisModel::RossSelinger { eps }.generic_t_count();
        let rus = SynthesisModel::RepeatUntilSuccess { eps }.generic_t_count();
        assert!(rus < rs, "RUS ({rus}) should beat RS ({rs})");
        // ceil(1.15·log2(1e10)) = ceil(38.2) = 39.
        assert_eq!(rus, 39);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn invalid_eps_rejected() {
        SynthesisModel::RossSelinger { eps: 0.0 }.generic_t_count();
    }

    #[test]
    fn circuit_t_count_totals() {
        let mut c = Circuit::new(2);
        c.t(0).tdg(1).rz_pi(0, 0.25).rz_pi(1, 0.5).rz_pi(0, 0.1);
        // T + Tdg + quarter-Rz cost 1 each; Clifford Rz costs 0; generic
        // Rz costs the model's generic count.
        let flat = SynthesisModel::PerRotation(1);
        assert_eq!(flat.circuit_t_count(c.iter()), 4);
        let rs = SynthesisModel::RossSelinger { eps: 1e-3 };
        assert_eq!(rs.circuit_t_count(c.iter()), 3 + 34);
    }

    #[test]
    fn quarter_words_are_semantically_exact() {
        // Every k·π/4 word must implement Rz(k·π/4) up to global phase.
        for k in 0..8 {
            let angle = Angle::new(k as f64 * 0.25);
            let r = synthesize_rz(0, angle, SynthesisModel::default());
            let word = r.gates.expect("exact angle gives a word");
            let mut direct = Circuit::new(1);
            direct.rz(0, angle);
            let mut synth = Circuit::new(1);
            synth.append(word);
            assert!(
                circuits_equivalent(&direct, &synth, 1e-10),
                "word for k={k} is wrong"
            );
        }
    }

    #[test]
    fn negative_and_wrapped_angles_reduce() {
        // -π/4 ≡ 7π/4: the Tdg word.
        let r = synthesize_rz(0, Angle::new(-0.25), SynthesisModel::default());
        assert_eq!(r.gates, Some(vec![Gate::Tdg(0)]));
        // 9π/4 ≡ π/4.
        let r = synthesize_rz(0, Angle::new(2.25), SynthesisModel::default());
        assert_eq!(r.gates, Some(vec![Gate::T(0)]));
    }

    #[test]
    fn generic_angle_has_no_word() {
        let r = synthesize_rz(0, Angle::new(0.123), SynthesisModel::default());
        assert!(r.gates.is_none());
        assert_eq!(r.t_count, 1);
    }

    #[test]
    fn expand_exact_rotations_preserves_semantics() {
        let mut c = Circuit::new(2);
        c.h(0).rz_pi(0, 0.75).cnot(0, 1).rz_pi(1, 1.0).rz_pi(0, 0.3);
        let e = expand_exact_rotations(&c);
        assert!(circuits_equivalent(&c, &e, 1e-10));
        // The π-multiple rotations became words; the generic one survived.
        let rz_left = e.iter().filter(|g| matches!(g, Gate::Rz(_, _))).count();
        assert_eq!(rz_left, 1);
    }

    #[test]
    fn model_display() {
        assert_eq!(
            SynthesisModel::PerRotation(2).to_string(),
            "per-rotation(2)"
        );
        assert!(SynthesisModel::RossSelinger { eps: 1e-10 }
            .to_string()
            .contains("ross-selinger"));
        assert!(SynthesisModel::RepeatUntilSuccess { eps: 1e-4 }
            .to_string()
            .contains("rus"));
    }
}
