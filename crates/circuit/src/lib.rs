//! Quantum circuit intermediate representation for the `ftqc` compiler.
//!
//! This crate provides the front-end substrate of the workspace:
//!
//! * [`Gate`] / [`Circuit`] — a Clifford+T circuit IR with the gate set used
//!   by the paper's benchmarks (`H`, `S`, `S†`, `SX`, Paulis, `T`, `T†`,
//!   `Rz(θ)`, `CNOT`, `CZ`, `SWAP`, measurement).
//! * [`DagCircuit`] — the dependency DAG consumed by the greedy scheduler and
//!   the gate-dependent look-ahead heuristic (paper §V.A).
//! * [`PauliString`] / [`CliffordTableau`] — binary-symplectic Pauli algebra
//!   used to commute Clifford gates past rotations.
//! * [`ppr`] — transpilation of a circuit into a sequence of Pauli-product
//!   rotations (Litinski's *Game of Surface Codes* form), used by the
//!   baseline models in `ftqc-baselines`.
//! * [`qasm`] — a reader/writer for the OpenQASM 2 subset used by
//!   QASMBench-style benchmark files.
//!
//! # Example
//!
//! ```
//! use ftqc_circuit::{Circuit, Gate, Qubit};
//!
//! let mut c = Circuit::new(2);
//! c.h(0);
//! c.cnot(0, 1);
//! c.t(1);
//! assert_eq!(c.len(), 3);
//! assert_eq!(c.counts().t_like(), 1);
//! let dag = c.dag();
//! assert_eq!(dag.front_layer().count(), 1);
//! ```

pub mod circuit;
pub mod dag;
pub mod gate;
pub mod optimize;
pub mod pauli;
pub mod ppr;
pub mod qasm;
pub mod stabilizer;
pub mod statevector;
pub mod synthesis;
pub mod tableau;

pub use circuit::{Circuit, EditError, GateCounts};
pub use dag::{DagCircuit, DagNode, FrontTracker, NodeId};
pub use gate::{Angle, Gate, Qubit};
pub use optimize::{optimize, OptimizeStats};
pub use pauli::{Pauli, PauliString, Phase};
pub use ppr::{PauliRotation, PprProgram, RotationKind};
pub use qasm::{parse_qasm, write_qasm, QasmError};
pub use stabilizer::{Outcome, StabilizerState};
pub use statevector::{circuits_equivalent, StateVector, C64};
pub use synthesis::{synthesize_rz, SynthesisModel, SynthesizedRotation};
pub use tableau::CliffordTableau;
