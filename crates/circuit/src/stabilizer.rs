//! A stabilizer-state simulator (Aaronson–Gottesman CHP style).
//!
//! Used to *verify* the compiler front-end: Clifford circuits can be
//! simulated exactly, so circuit identities (e.g. the CZ/SWAP lowering used
//! by the compiler, or the Clifford absorption performed by the PPR
//! transpiler) are checked against ground truth rather than by inspection.
//!
//! The state tracks `n` stabilizer generators and `n` destabilizers as
//! [`PauliString`]s; gates conjugate all rows, and Z-measurements follow
//! the standard deterministic/random split (random outcomes are resolved
//! with a caller-provided choice so tests stay deterministic).

use crate::gate::Gate;
use crate::pauli::{Pauli, PauliString, Phase};
use serde::{Deserialize, Serialize};

/// Outcome of a Z-basis measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The measurement was determined by the state.
    Deterministic(bool),
    /// The outcome was random; the stored bit is the one chosen.
    Random(bool),
}

impl Outcome {
    /// The measured bit.
    pub fn bit(self) -> bool {
        match self {
            Outcome::Deterministic(b) | Outcome::Random(b) => b,
        }
    }

    /// Whether the outcome was deterministic.
    pub fn is_deterministic(self) -> bool {
        matches!(self, Outcome::Deterministic(_))
    }
}

/// A stabilizer state on `n` qubits, initially `|0…0⟩`.
///
/// # Example
///
/// ```
/// use ftqc_circuit::stabilizer::StabilizerState;
/// use ftqc_circuit::Gate;
///
/// let mut s = StabilizerState::new(2);
/// s.apply(&Gate::H(0));
/// s.apply(&Gate::Cnot { control: 0, target: 1 });
/// // Bell state: the two Z-measurements agree.
/// let a = s.measure_z(0, false).bit();
/// let b = s.measure_z(1, false).bit();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilizerState {
    /// Stabilizer generators: rows stabilising the state.
    stabs: Vec<PauliString>,
    /// Destabilizers: anticommute with the matching stabilizer, commute
    /// with the rest.
    destabs: Vec<PauliString>,
}

impl StabilizerState {
    /// The all-zeros state `|0…0⟩` (stabilized by `Z_q`).
    pub fn new(n: usize) -> Self {
        Self {
            stabs: (0..n)
                .map(|q| PauliString::single(n, q as u32, Pauli::Z))
                .collect(),
            destabs: (0..n)
                .map(|q| PauliString::single(n, q as u32, Pauli::X))
                .collect(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.stabs.len()
    }

    /// The stabilizer generators.
    pub fn stabilizers(&self) -> &[PauliString] {
        &self.stabs
    }

    /// Applies a Clifford gate.
    ///
    /// # Panics
    ///
    /// Panics on non-Clifford gates or measurements (use
    /// [`StabilizerState::measure_z`]).
    pub fn apply(&mut self, gate: &Gate) {
        assert!(
            gate.is_clifford(),
            "stabilizer simulation supports Clifford gates only (got {gate})"
        );
        for row in self.stabs.iter_mut().chain(self.destabs.iter_mut()) {
            row.conjugate_by(gate);
        }
    }

    /// Applies every gate of a circuit (must be Clifford-only, measurements
    /// excluded).
    pub fn apply_circuit<'a>(&mut self, gates: impl IntoIterator<Item = &'a Gate>) {
        for g in gates {
            self.apply(g);
        }
    }

    /// Measures qubit `q` in the Z basis. If the outcome is random, the
    /// caller-provided `random_bit` is taken.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure_z(&mut self, q: u32, random_bit: bool) -> Outcome {
        let n = self.num_qubits();
        let z_obs = PauliString::single(n, q, Pauli::Z);
        // Find a stabilizer generator anticommuting with Z_q.
        let p = (0..n).find(|&i| !self.stabs[i].commutes_with(&z_obs));
        match p {
            Some(p) => {
                // Random outcome: replace rows to stabilise (-1)^bit Z_q.
                let anticommuting: Vec<usize> = (0..n)
                    .filter(|&i| i != p && !self.stabs[i].commutes_with(&z_obs))
                    .collect();
                for i in anticommuting {
                    let row = self.stabs[p].clone();
                    self.stabs[i].mul_assign(&row);
                }
                let destab_fix: Vec<usize> = (0..n)
                    .filter(|&i| !self.destabs[i].commutes_with(&z_obs))
                    .collect();
                for i in destab_fix {
                    if i != p {
                        let row = self.stabs[p].clone();
                        self.destabs[i].mul_assign(&row);
                    }
                }
                self.destabs[p] = self.stabs[p].clone();
                let mut new_stab = z_obs;
                if random_bit {
                    new_stab.set_phase(Phase::MINUS);
                }
                self.stabs[p] = new_stab;
                Outcome::Random(random_bit)
            }
            None => {
                // Deterministic: express Z_q over the stabilizer group by
                // accumulating the generators whose destabilizer partner
                // anticommutes with Z_q.
                let mut acc = PauliString::identity(n);
                for i in 0..n {
                    if !self.destabs[i].commutes_with(&z_obs) {
                        let row = self.stabs[i].clone();
                        acc.mul_assign(&row);
                    }
                }
                debug_assert!(acc.commutes_with(&z_obs));
                Outcome::Deterministic(acc.phase().is_minus())
            }
        }
    }

    /// Whether `p` (phase `±1`) stabilises the current state, i.e. is a
    /// product of the current generators with matching sign.
    pub fn is_stabilized_by(&self, p: &PauliString) -> bool {
        let n = self.num_qubits();
        let mut acc = PauliString::identity(n);
        for i in 0..n {
            if !self.destabs[i].commutes_with(p) {
                let row = self.stabs[i].clone();
                acc.mul_assign(&row);
            }
        }
        acc == *p
    }

    /// Validates internal invariants (commutation structure of stabilizer
    /// and destabilizer rows). Test helper.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_qubits();
        for i in 0..n {
            if self.stabs[i].commutes_with(&self.destabs[i]) {
                return Err(format!("stab[{i}] must anticommute with destab[{i}]"));
            }
            if !self.stabs[i].phase().is_real() {
                return Err(format!("stab[{i}] has imaginary phase"));
            }
            for j in 0..n {
                if i != j {
                    if !self.stabs[i].commutes_with(&self.stabs[j]) {
                        return Err(format!("stab[{i}] must commute with stab[{j}]"));
                    }
                    if !self.stabs[i].commutes_with(&self.destabs[j]) {
                        return Err(format!("stab[{i}] must commute with destab[{j}]"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> StabilizerState {
        let mut s = StabilizerState::new(2);
        s.apply(&Gate::H(0));
        s.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        s
    }

    #[test]
    fn initial_state_measures_zero() {
        let mut s = StabilizerState::new(3);
        for q in 0..3 {
            let o = s.measure_z(q, true);
            assert_eq!(o, Outcome::Deterministic(false));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut s = StabilizerState::new(2);
        s.apply(&Gate::X(1));
        assert_eq!(s.measure_z(0, false), Outcome::Deterministic(false));
        assert_eq!(s.measure_z(1, false), Outcome::Deterministic(true));
    }

    #[test]
    fn plus_state_is_random_then_pinned() {
        let mut s = StabilizerState::new(1);
        s.apply(&Gate::H(0));
        let o = s.measure_z(0, true);
        assert_eq!(o, Outcome::Random(true));
        // Re-measurement is now deterministic with the same value.
        assert_eq!(s.measure_z(0, false), Outcome::Deterministic(true));
    }

    #[test]
    fn bell_state_correlations() {
        for bit in [false, true] {
            let mut s = bell();
            let a = s.measure_z(0, bit);
            let b = s.measure_z(1, !bit); // random_bit ignored: now deterministic
            assert_eq!(a.bit(), b.bit());
            assert!(!a.is_deterministic());
            assert!(b.is_deterministic());
        }
    }

    #[test]
    fn ghz_stabilizers() {
        let mut s = StabilizerState::new(3);
        s.apply(&Gate::H(0));
        s.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        s.apply(&Gate::Cnot {
            control: 1,
            target: 2,
        });
        assert!(s.is_stabilized_by(&PauliString::parse("XXX").unwrap()));
        assert!(s.is_stabilized_by(&PauliString::parse("ZZI").unwrap()));
        assert!(s.is_stabilized_by(&PauliString::parse("IZZ").unwrap()));
        assert!(!s.is_stabilized_by(&PauliString::parse("ZII").unwrap()));
        assert!(!s.is_stabilized_by(&PauliString::parse("-XXX").unwrap()));
        s.check_invariants().expect("GHZ state is well-formed");
    }

    #[test]
    fn cz_lowering_identity() {
        // CZ == H(t) CX H(t): both paths produce the same state.
        let prep = [Gate::H(0), Gate::H(1), Gate::S(1)];
        let mut a = StabilizerState::new(2);
        a.apply_circuit(prep.iter());
        a.apply(&Gate::Cz(0, 1));

        let mut b = StabilizerState::new(2);
        b.apply_circuit(prep.iter());
        b.apply(&Gate::H(1));
        b.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        b.apply(&Gate::H(1));
        assert_eq!(a, b);
    }

    #[test]
    fn swap_lowering_identity() {
        let prep = [Gate::H(0), Gate::Sx(1)];
        let mut a = StabilizerState::new(2);
        a.apply_circuit(prep.iter());
        a.apply(&Gate::Swap(0, 1));

        let mut b = StabilizerState::new(2);
        b.apply_circuit(prep.iter());
        b.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        b.apply(&Gate::Cnot {
            control: 1,
            target: 0,
        });
        b.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn invariants_hold_through_random_walk() {
        let mut s = StabilizerState::new(4);
        let mut state = 0x853c49e6748fea9bu64;
        for step in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let q = ((state >> 33) % 4) as u32;
            let r = ((state >> 20) % 4) as u32;
            match (state >> 10) % 6 {
                0 => s.apply(&Gate::H(q)),
                1 => s.apply(&Gate::S(q)),
                2 => s.apply(&Gate::Sx(q)),
                3 if q != r => s.apply(&Gate::Cnot {
                    control: q,
                    target: r,
                }),
                4 => {
                    s.measure_z(q, state & 1 == 1);
                }
                _ => s.apply(&Gate::Z(q)),
            }
            s.check_invariants()
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "Clifford gates only")]
    fn t_gate_rejected() {
        StabilizerState::new(1).apply(&Gate::T(0));
    }
}
